//! The paper's motivating use case: answering **subjective queries** from
//! structured data, plus the §9 future-work extension linking subjective
//! properties to objective ones.
//!
//! ```sh
//! cargo run --release --example subjective_search
//! ```
//!
//! Mines a multi-domain corpus into a [`surveyor::SubjectiveKb`], then
//! answers queries like `big cities` and `dangerous sports`, persists the
//! knowledge base to JSON, and discovers the population threshold at which
//! the average Web author starts calling a city "big".

use surveyor::prelude::*;
use surveyor::{adjudicate_with_link, link_objective, CorpusSource, SubjectiveKb};

fn main() {
    // A ready-made multi-domain world (Table 2's 25 combinations).
    let world = surveyor_corpus::presets::table2_world(2015);
    let kb = world.kb().clone();
    let generator = CorpusGenerator::new(world, CorpusConfig::default());

    println!("mining the snapshot (25 property-type combinations)...");
    let surveyor = Surveyor::new(kb.clone(), SurveyorConfig::default());
    let output = surveyor.run(&CorpusSource::new(&generator));
    let store = SubjectiveKb::from_output(&output, &kb);
    println!(
        "subjective knowledge base: {} associations across {} combinations\n",
        store.len(),
        store.blocks().len(),
    );

    // 1. The search-engine scenario: subjective queries over structured data.
    for (type_name, property) in [
        ("city", Property::adjective("big")),
        ("sport", Property::adjective("dangerous")),
        ("animal", Property::adjective("cute")),
    ] {
        println!("query: \"{property} {type_name}\" (top hits)");
        for hit in store.query(type_name, &property).into_iter().take(6) {
            println!(
                "  {:<16} Pr = {:.3}  (evidence +{}/-{})",
                hit.entity_name, hit.probability, hit.positive_statements, hit.negative_statements
            );
        }
        println!();
    }

    // 2. Persist and restore — the store is the deliverable a search
    //    engine would serve from.
    let json = store.to_json();
    let restored = SubjectiveKb::from_json(&json).expect("round trip");
    println!(
        "persisted {} bytes of JSON; restored store answers {} `big city` hits\n",
        json.len(),
        restored.query("city", &Property::adjective("big")).len(),
    );

    // 3. §9 future work: connect `big` to the objective population count.
    let city_type = kb.type_by_name("city").expect("city type");
    let big = Property::adjective("big");
    match link_objective(&output, &kb, city_type, &big, "population", 8) {
        Some(link) => {
            println!(
                "objective link: `big city` aligns with population {} {:.0} \
                 (agreement {:.0}% over {} decided cities)",
                match link.direction {
                    surveyor::LinkDirection::Above => ">=",
                    surveyor::LinkDirection::Below => "<",
                },
                link.threshold,
                link.agreement * 100.0,
                link.samples,
            );
            let adjudicated = adjudicate_with_link(&output, &kb, city_type, &big, &link);
            println!(
                "the link adjudicates {} cities the model left undecided",
                adjudicated.len()
            );
        }
        None => println!("no objective link found for `big city`"),
    }
}
