//! The paper's §7 evaluation protocol in miniature: judge 500 test cases
//! with simulated AMT worker panels and compare Surveyor against majority
//! vote, scaled majority vote, and the WebChild-style baseline (Table 3).
//!
//! ```sh
//! cargo run --release --example crowd_eval
//! ```

use surveyor::prelude::*;
use surveyor_eval::comparison::{run_comparison, WebChildConfig};

fn main() {
    let world = surveyor_corpus::presets::table2_world(2015);
    println!(
        "evaluation world: {} combinations over {} entities (20 curated per type judged)\n",
        world.domains().len(),
        world.kb().len(),
    );

    let report = run_comparison(
        &world,
        CorpusConfig::default(),
        SurveyorConfig::default(), // rho = 100, the paper's threshold
        WebChildConfig::default(),
        500,
        Some(20),
    );

    println!(
        "judged {} cases ({} ties removed); mean worker agreement {:.1}/20, {} unanimous panels\n",
        report.cases, report.ties_removed, report.mean_agreement, report.unanimous_cases
    );

    println!(
        "{:<22} {:>9} {:>10} {:>7}   (paper Table 3)",
        "Approach", "Coverage", "Precision", "F1"
    );
    let paper = [
        ("Majority Vote", (0.483, 0.29, 0.36)),
        ("Scaled Majority Vote", (0.486, 0.37, 0.42)),
        ("WebChild", (0.477, 0.54, 0.51)),
        ("Surveyor", (0.966, 0.77, 0.84)),
    ];
    for row in &report.table3 {
        let reference = paper
            .iter()
            .find(|(n, _)| *n == row.method)
            .map(|(_, v)| *v)
            .unwrap_or((0.0, 0.0, 0.0));
        println!(
            "{:<22} {:>9.3} {:>10.3} {:>7.3}   ({:.3} / {:.2} / {:.2})",
            row.method,
            row.metrics.coverage,
            row.metrics.precision,
            row.metrics.f1,
            reference.0,
            reference.1,
            reference.2,
        );
    }

    println!("\nSurveyor precision by minimum worker agreement (Figure 12):");
    for point in &report.figure12 {
        let sv = point
            .rows
            .iter()
            .find(|r| r.method == "Surveyor")
            .expect("surveyor row");
        println!(
            "  agreement >= {:>2}: precision {:.3} over {:>3} cases",
            point.threshold, sv.metrics.precision, point.cases
        );
    }
}
