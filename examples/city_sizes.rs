//! The paper's §2 empirical study (Figure 3): which Californian cities are
//! `big`?
//!
//! ```sh
//! cargo run --release --example city_sizes
//! ```
//!
//! Demonstrates the two biases that break majority voting — polarity bias
//! (nobody writes "X is not a big city") and occurrence bias (big cities
//! get written about more) — and how the probabilistic model turns them
//! into signal, deciding even cities that are never mentioned.

use surveyor::kb::seed::ATTR_POPULATION;
use surveyor::prelude::*;
use surveyor_eval::empirical::run_empirical;

fn main() {
    let world = surveyor_corpus::presets::big_cities_world(2015);
    let study = run_empirical(
        &world,
        ATTR_POPULATION,
        CorpusConfig::default(),
        SurveyorConfig {
            rho: 50,
            ..SurveyorConfig::default()
        },
    );

    println!("461 Californian cities, property `big`\n");
    println!("largest and smallest cities:");
    let show =
        |p: &surveyor_eval::EmpiricalPoint| {
            println!(
            "  {:<22} pop {:>9}  evidence +{:<3}/-{:<2}  majority: {:<8?} model: {:?} (Pr {:.2})",
            p.entity, p.attribute as u64, p.positive, p.negative, p.majority, p.model, p.probability
        );
        };
    for p in study.points.iter().rev().take(6) {
        show(p);
    }
    println!("  ...");
    for p in study.points.iter().take(6).rev() {
        show(p);
    }

    let unmentioned = study
        .points
        .iter()
        .filter(|p| p.positive + p.negative == 0)
        .count();
    println!("\ncities with no statements at all: {unmentioned} (still decided by the model)");
    println!(
        "majority vote: coverage {:.2}, accuracy vs planted opinion {:.2}, Spearman {:.2}",
        study.majority_coverage,
        study.majority_accuracy,
        study.majority_spearman.unwrap_or(0.0)
    );
    println!(
        "model:         coverage {:.2}, accuracy vs planted opinion {:.2}, Spearman {:.2}",
        study.model_coverage,
        study.model_accuracy,
        study.model_spearman.unwrap_or(0.0)
    );

    // Paper's future-work teaser (§9): the population threshold at which
    // the average author calls a city big, read off the model's decisions.
    let mut boundary: Option<(f64, f64)> = None;
    for pair in study.points.windows(2) {
        if pair[0].model == Decision::Negative && pair[1].model == Decision::Positive {
            boundary = Some((pair[0].attribute, pair[1].attribute));
        }
    }
    if let Some((lo, hi)) = boundary {
        println!("\nthe model's big-city boundary falls between populations {lo:.0} and {hi:.0}");
    }
}
