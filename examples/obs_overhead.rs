//! In-process overhead check: observed vs plain Surveyor::run.
use std::sync::Arc;
use std::time::Instant;
use surveyor::obs::MetricsRegistry;
use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_corpus::presets;

fn main() {
    let world = presets::table2_world(2015);
    let kb = world.kb().clone();
    let config = SurveyorConfig {
        rho: 100,
        ..SurveyorConfig::default()
    };
    let mut plain_best = f64::INFINITY;
    let mut obs_best = f64::INFINITY;
    for _ in 0..15 {
        let generator = CorpusGenerator::new(world.clone(), CorpusConfig::default());
        let s = Surveyor::new(kb.clone(), config.clone());
        let t = Instant::now();
        let out = s.run(&CorpusSource::new(&generator));
        plain_best = plain_best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(out);

        let reg = Arc::new(MetricsRegistry::new());
        let generator =
            CorpusGenerator::new(world.clone(), CorpusConfig::default()).with_observer(reg.clone());
        let s = Surveyor::new(kb.clone(), config.clone()).with_observer(reg.clone());
        let t = Instant::now();
        let out = s.run(&CorpusSource::new(&generator));
        obs_best = obs_best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(out);
        std::hint::black_box(reg.report());
    }
    println!(
        "plain {plain_best:.4}s observed {obs_best:.4}s overhead {:.2}%",
        100.0 * (obs_best / plain_best - 1.0)
    );
}
