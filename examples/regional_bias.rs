//! Region-specific opinion mining (paper §2): "Chinese users might have
//! different ideas than American users about what constitutes a big
//! city. Surveyor can produce region-specific results if the input is
//! restricted to Web sites with specific domain extensions."
//!
//! ```sh
//! cargo run --release --example regional_bias
//! ```
//!
//! Two author regions share one knowledge base but disagree on a third of
//! all entity-property pairs; running the pipeline on each region's slice
//! of the corpus recovers each region's own dominant opinions.

use surveyor::prelude::*;
use surveyor::CorpusSource;

fn main() {
    let generator = surveyor_corpus::presets::regional_generator(7);
    let world = generator.world().clone();
    let kb = world.kb().clone();

    let surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho: 40,
            ..SurveyorConfig::default()
        },
    );
    println!("running Surveyor separately on the `west` and `east` author regions...\n");
    let west =
        surveyor.run(&CorpusSource::try_for_region(&generator, "west").expect("region exists"));
    let east =
        surveyor.run(&CorpusSource::try_for_region(&generator, "east").expect("region exists"));

    let mut agreements = 0usize;
    let mut divergences = Vec::new();
    for (di, domain) in world.domains().iter().enumerate() {
        let entities = kb.entities_of_type(domain.type_id);
        for (ei, &entity) in entities.iter().enumerate().take(20) {
            let (Some(w), Some(e)) = (
                west.opinion(entity, &domain.property),
                east.opinion(entity, &domain.property),
            ) else {
                continue;
            };
            if w.decision == e.decision {
                agreements += 1;
            } else if divergences.len() < 15 {
                divergences.push((
                    kb.entity(entity).name().to_owned(),
                    domain.property.to_string(),
                    w.decision,
                    e.decision,
                    generator.region_opinion(0, di, ei),
                    generator.region_opinion(1, di, ei),
                ));
            }
        }
    }

    println!("pairs where the regions' mined opinions agree: {agreements}");
    println!("\nsample divergences (west vs east, with each region's planted truth):");
    println!(
        "  {:<16} {:<14} {:<10} {:<10} {:<12} {:<12}",
        "entity", "property", "west says", "east says", "west truth", "east truth"
    );
    for (entity, property, w, e, wt, et) in divergences {
        println!(
            "  {:<16} {:<14} {:<10} {:<10} {:<12} {:<12}",
            entity,
            property,
            format!("{w:?}"),
            format!("{e:?}"),
            if wt { "applies" } else { "does not" },
            if et { "applies" } else { "does not" },
        );
    }
    println!(
        "\n(the east region flips a third of the west's dominant opinions by construction;\n\
         restricting the corpus per region recovers each population's own view)"
    );
}
