//! Quickstart: mine subjective properties end to end on a small world.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a knowledge base of animals, plants a ground-truth world in
//! which some animals are cute, generates a synthetic Web corpus of
//! actual English sentences, and runs the full Surveyor pipeline —
//! dependency parsing, evidence extraction, per-combination EM, and the
//! dominant-opinion decisions of Algorithm 1.

use std::sync::Arc;
use surveyor::prelude::*;
use surveyor::CorpusSource;

fn main() {
    // 1. A knowledge base: entities with their most notable type.
    let mut builder = KnowledgeBaseBuilder::new();
    let animal = builder.add_type("animal", &["animal"], &["zoo", "pet"]);
    for name in [
        "Kitten", "Puppy", "Pony", "Koala", "Tiger", "Spider", "Scorpion", "Rat", "Moose", "Frog",
        "Camel", "Goose", "Beaver", "Octopus", "Lion", "Crow",
    ] {
        builder.add_entity(name, animal).finish();
    }
    let kb = Arc::new(builder.build());

    // 2. A ground-truth world: who is actually cute, and how authors
    //    behave (agreement pA*, polarity bias np+S* >> np-S*).
    let world = WorldBuilder::new(kb.clone(), 42)
        .domain(
            "animal",
            Property::adjective("cute"),
            DomainParams {
                p_agree: 0.9,
                rate_pos: 20.0,
                rate_neg: 2.5,
                opinions: OpinionRule::DesignatedNames {
                    positive: ["Kitten", "Puppy", "Pony", "Koala", "Beaver"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    background_share: 0.1,
                },
                plural_subjects: true,
                ..DomainParams::default()
            },
        )
        .build();

    // 3. A synthetic Web snapshot: sharded documents of real sentences.
    let generator = CorpusGenerator::new(world.clone(), CorpusConfig::default());
    println!("--- sample of the generated corpus ---");
    for doc in generator.shard_text(0).iter().take(5) {
        println!("  doc {}: {}", doc.id, doc.text);
    }

    // 4. Algorithm 1: extract evidence, learn the per-combination model,
    //    decide every entity.
    let surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho: 20,
            ..SurveyorConfig::default()
        },
    );
    let output = surveyor.run(&CorpusSource::new(&generator));

    println!("\n--- evidence ---");
    println!(
        "{} statements over {} entity-property pairs; {} combination(s) above threshold",
        output.evidence.total_statements(),
        output.evidence.pair_count(),
        output.modeled_combinations(),
    );
    let fit = &output.results[0].fit;
    println!(
        "fitted model: pA = {:.2}, np+S = {:.1}, np-S = {:.1}  (truth: 0.90, 20.0, 2.5)",
        fit.params.p_agree, fit.params.rate_pos, fit.params.rate_neg
    );

    println!("\n--- dominant opinions ---");
    let cute = Property::adjective("cute");
    let domain = &world.domains()[0];
    for (i, &entity) in kb.entities_of_type(animal).iter().enumerate() {
        let decision = output.opinion(entity, &cute).expect("modeled");
        let counts = output.evidence.counts(entity, &cute);
        println!(
            "  {:<8} {} cute  (Pr = {:.3}, evidence +{}/-{}, planted: {})",
            kb.entity(entity).name(),
            match decision.decision {
                Decision::Positive => "IS    ",
                Decision::Negative => "is NOT",
                Decision::Unsolved => "  ?   ",
            },
            decision.probability.unwrap_or(0.5),
            counts.positive,
            counts.negative,
            if domain.opinions[i] {
                "cute"
            } else {
                "not cute"
            },
        );
    }
}
