//! Data-driven extraction fixtures: a battery of sentences with expected
//! (entity, property, polarity) extractions under the shipped V4
//! configuration. One fixture per linguistic phenomenon; the table format
//! keeps additions cheap as the parser grows.

use surveyor::extract::{extract_sentence, ExtractionConfig, Polarity};
use surveyor::nlp::{annotate, Lexicon};
use surveyor::prelude::*;

/// Semicolon-separated expectations: `+name:prop` = expected positive,
/// `-name:prop` = expected negative (names may contain spaces); an empty
/// expectation string means the sentence must yield nothing.
const FIXTURES: &[(&str, &str)] = &[
    // --- adjectival complement (Fig. 4b) ---
    ("Chicago is big.", "+Chicago:big"),
    ("Chicago is very big.", "+Chicago:very big"),
    ("Chicago is really very big.", "+Chicago:really very big"),
    ("Snakes are dangerous.", "+Snake:dangerous"),
    ("I think that Chicago is big.", "+Chicago:big"),
    ("I think Chicago is big.", "+Chicago:big"),
    ("Everyone says Chicago is big.", "+Chicago:big"),
    // --- adjectival modifier via predicate nominal (Fig. 4a + coref) ---
    ("Snakes are dangerous animals.", "+Snake:dangerous"),
    ("Chicago is a big city.", "+Chicago:big"),
    ("Chicago is a very big city.", "+Chicago:very big"),
    ("Greece is a southern country.", "+Greece:southern"),
    ("Kittens are cute animals.", "+Kitten:cute"),
    // --- attributive object position ---
    ("I love the cute Kitten.", "+Kitten:cute"),
    ("We saw the big Chicago.", "+Chicago:big"),
    // --- conjunction (Fig. 4c) ---
    (
        "Soccer is fast and exciting.",
        "+Soccer:fast; +Soccer:exciting",
    ),
    (
        "Soccer is a fast and exciting sport.",
        "+Soccer:fast; +Soccer:exciting",
    ),
    (
        "Soccer is a fast, cheap and exciting sport.",
        "+Soccer:fast; +Soccer:cheap; +Soccer:exciting",
    ),
    // --- negation (Fig. 5) ---
    ("Chicago is not big.", "-Chicago:big"),
    ("Chicago isn't big.", "-Chicago:big"),
    ("Chicago is never big.", "-Chicago:big"),
    ("Chicago is not a big city.", "-Chicago:big"),
    ("I don't think that Chicago is big.", "-Chicago:big"),
    ("I do not believe Chicago is big.", "-Chicago:big"),
    ("I don't think Snakes are dangerous.", "-Snake:dangerous"),
    // --- double negation cancels ---
    (
        "I don't think that Snakes are never dangerous.",
        "+Snake:dangerous",
    ),
    ("I do not believe Chicago is never big.", "+Chicago:big"),
    // --- relative clauses ---
    ("Chicago is a city that is big.", "+Chicago:big"),
    ("Chicago is a city that is very big.", "+Chicago:very big"),
    ("Chicago is a city that is not big.", "-Chicago:big"),
    // --- intrinsicness filters reject (checks on) ---
    ("New York is bad for parking.", ""),
    ("Chicago is good for tourists.", ""),
    ("southern France is warm in the summer.", ""),
    ("northern Greece is cold in the winter.", ""),
    // --- extended verb class is V1/V2-only, so V4 rejects ---
    ("I find Kittens cute.", ""),
    ("Chicago seems big.", ""),
    ("Chicago is considered big.", ""),
    // --- plural and lemmatized mentions ---
    ("Grizzly bears are dangerous.", "+Grizzly bear:dangerous"),
    (
        "Grizzly bears are dangerous animals.",
        "+Grizzly bear:dangerous",
    ),
    // --- multiword and alias mentions ---
    ("San Francisco is a big city.", "+San Francisco:big"),
    ("SF is big.", "+San Francisco:big"),
    // --- sentences that must yield nothing ---
    ("The weather is nice.", ""),
    ("I visited Chicago during the summer.", ""),
    ("People love Soccer.", ""),
    ("Chicago is in the north.", ""),
    ("The weather in Chicago is bad.", ""),
    // punctuation / fragments stay safe
    ("Chicago, big and loud.", ""),
    ("big", ""),
    ("Is Chicago big?", "+Chicago:big"),
];

fn kb() -> KnowledgeBase {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    let city = b.add_type("city", &["city"], &[]);
    let country = b.add_type("country", &["country"], &[]);
    let sport = b.add_type("sport", &["sport"], &[]);
    b.add_entity("Snake", animal).finish();
    b.add_entity("Kitten", animal).finish();
    b.add_entity("Grizzly bear", animal).finish();
    b.add_entity("Chicago", city).finish();
    b.add_entity("New York", city).finish();
    b.add_entity("San Francisco", city).alias("SF").finish();
    b.add_entity("Greece", country).finish();
    b.add_entity("France", country).finish();
    b.add_entity("Soccer", sport).finish();
    b.build()
}

fn parse_expectation(spec: &str) -> Vec<(String, String, Polarity)> {
    spec.split(';')
        .map(str::trim)
        .filter(|item| !item.is_empty())
        .map(|item| {
            let (sign, rest) = item.split_at(1);
            let (entity, property) = rest.split_once(':').expect("entity:property");
            let polarity = match sign {
                "+" => Polarity::Positive,
                "-" => Polarity::Negative,
                other => panic!("bad polarity sign {other}"),
            };
            (entity.to_owned(), property.to_owned(), polarity)
        })
        .collect()
}

#[test]
fn fixture_battery_v4() {
    let kb = kb();
    let lexicon = Lexicon::new();
    let config = ExtractionConfig::paper_final();
    let mut failures = Vec::new();
    for (sentence, expectation) in FIXTURES {
        let doc = annotate(0, sentence, &kb, &lexicon);
        let mut got: Vec<(String, String, Polarity)> = doc
            .sentences
            .iter()
            .flat_map(|s| extract_sentence(s, &kb, &config))
            .map(|st| {
                (
                    kb.entity(st.entity).name().to_owned(),
                    st.property.resolve().to_string(),
                    st.polarity,
                )
            })
            .collect();
        let mut expected = parse_expectation(expectation);
        got.sort();
        expected.sort();
        if got != expected {
            failures.push(format!(
                "  {sentence:?}\n    expected: {expected:?}\n    got:      {got:?}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} fixture(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn fixture_sentences_all_parse_to_valid_trees() {
    let kb = kb();
    let lexicon = Lexicon::new();
    for (sentence, _) in FIXTURES {
        let doc = annotate(0, sentence, &kb, &lexicon);
        for s in &doc.sentences {
            s.tree
                .validate()
                .unwrap_or_else(|e| panic!("invalid tree for {sentence:?}: {e}"));
        }
    }
}

#[test]
fn v2_extracts_the_extended_class_fixtures() {
    use surveyor::extract::PatternVersion;
    let kb = kb();
    let lexicon = Lexicon::new();
    let config = PatternVersion::V2.config();
    for (sentence, entity, property) in [
        ("I find Kittens cute.", "Kitten", "cute"),
        ("Chicago seems big.", "Chicago", "big"),
        ("Chicago is considered big.", "Chicago", "big"),
    ] {
        let doc = annotate(0, sentence, &kb, &lexicon);
        let got: Vec<_> = doc
            .sentences
            .iter()
            .flat_map(|s| extract_sentence(s, &kb, &config))
            .collect();
        assert!(
            got.iter().any(|st| kb.entity(st.entity).name() == entity
                && st.property.resolve().to_string() == property
                && st.polarity == Polarity::Positive),
            "V2 missed {sentence:?}: {got:?}"
        );
    }
}
