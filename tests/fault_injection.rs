//! Chaos integration tests: the full pipeline under an explicit fault
//! plan (panics, transient failures, a permanent failure) and under the
//! seeded plan behind `SURVEYOR_CHAOS_SEED`.
//!
//! The explicit-plan test is the PR's acceptance scenario: under
//! `Degrade` the run completes, quarantines exactly the panicking and
//! permanent shards, recovers the transient ones via retry, and the run
//! report records matching coverage/retry/quarantine fields; the same
//! plan under `FailFast` errors naming the lowest failed shard.

use std::sync::Arc;
use surveyor::obs::MetricsRegistry;
use surveyor::prelude::*;
use surveyor::{Fault, RunError};
use surveyor_corpus::CorpusGenerator;

const SHARDS: usize = 8;

fn animal_world(seed: u64) -> (Arc<KnowledgeBase>, surveyor_corpus::World) {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    for name in [
        "Kitten", "Puppy", "Pony", "Koala", "Tiger", "Spider", "Scorpion", "Rat", "Crow", "Moose",
        "Frog", "Camel", "Goose", "Beaver", "Octopus", "Lion",
    ] {
        b.add_entity(name, animal).finish();
    }
    let kb = Arc::new(b.build());
    let world = WorldBuilder::new(kb.clone(), seed)
        .domain(
            "animal",
            Property::adjective("cute"),
            DomainParams {
                p_agree: 0.92,
                rate_pos: 25.0,
                rate_neg: 4.0,
                opinions: OpinionRule::RandomShare(0.5),
                plural_subjects: true,
                ..DomainParams::default()
            },
        )
        .build();
    (kb, world)
}

fn generator(world: surveyor_corpus::World) -> CorpusGenerator {
    CorpusGenerator::new(
        world,
        CorpusConfig {
            num_shards: SHARDS,
            ..CorpusConfig::default()
        },
    )
}

/// One panicking shard, two transient shards (recoverable within the
/// budget), one permanently failing shard.
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .with(1, Fault::Panic)
        .with(3, Fault::Transient { failures: 1 })
        .with(5, Fault::Transient { failures: 2 })
        .with(6, Fault::Permanent)
}

#[test]
fn degrade_survives_the_chaos_plan_and_reports_it() {
    let (kb, world) = animal_world(11);
    let generator = generator(world);
    let registry = Arc::new(MetricsRegistry::new());
    let surveyor = Surveyor::new(
        kb,
        SurveyorConfig {
            rho: 20,
            threads: 4,
            ..SurveyorConfig::default()
        },
    )
    .with_observer(registry.clone());

    let injector = FaultInjector::new(CorpusSource::new(&generator), chaos_plan());
    let retry = RetryPolicy::immediate();
    let run = surveyor
        .try_run(
            &injector,
            &retry,
            &FailurePolicy::Degrade {
                min_shard_coverage: 0.7,
            },
        )
        .expect("degrade completes: 6 of 8 shards survive");

    // Exactly the panicking and permanent shards are lost; the transient
    // ones recover via retry.
    assert_eq!(run.coverage.shard_count, SHARDS);
    assert_eq!(run.coverage.quarantined_shards(), vec![1, 6]);
    assert_eq!(run.coverage.succeeded, SHARDS - 2);
    assert_eq!(run.coverage.retries, 3); // 1 + 2 transient failures
    assert!(run.output.evidence.total_statements() > 0);

    // The run report carries the same accounting.
    let report = registry.report();
    assert_eq!(report.coverage, Some(run.coverage.fraction()));
    assert_eq!(report.retries, 3);
    assert_eq!(report.quarantined_shards, vec![1, 6]);
    let rendered = report.render();
    assert!(rendered.contains("fault tolerance:"), "{rendered}");
}

#[test]
fn failfast_names_the_lowest_failed_shard() {
    let (kb, world) = animal_world(11);
    let generator = generator(world);
    let surveyor = Surveyor::new(
        kb,
        SurveyorConfig {
            rho: 20,
            threads: 4,
            ..SurveyorConfig::default()
        },
    );

    let injector = FaultInjector::new(CorpusSource::new(&generator), chaos_plan());
    let err = surveyor
        .try_run(
            &injector,
            &RetryPolicy::immediate(),
            &FailurePolicy::FailFast,
        )
        .expect_err("the panicking shard kills a fail-fast run");
    match err {
        RunError::ShardFailed { shard, .. } => {
            // Shard 1 (the panic) is the lowest shard that exhausts its
            // budget; the transient shards recover and shard 6 is higher.
            assert_eq!(shard, 1);
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn degrade_with_a_high_floor_rejects_the_chaos_plan() {
    let (kb, world) = animal_world(11);
    let generator = generator(world);
    let surveyor = Surveyor::new(
        kb,
        SurveyorConfig {
            rho: 20,
            threads: 2,
            ..SurveyorConfig::default()
        },
    );
    let injector = FaultInjector::new(CorpusSource::new(&generator), chaos_plan());
    let err = surveyor
        .try_run(
            &injector,
            &RetryPolicy::immediate(),
            &FailurePolicy::Degrade {
                min_shard_coverage: 0.9,
            },
        )
        .expect_err("6/8 coverage is below a 0.9 floor");
    match err {
        RunError::CoverageBelowFloor {
            succeeded,
            shard_count,
            quarantined,
            ..
        } => {
            assert_eq!((succeeded, shard_count), (SHARDS - 2, SHARDS));
            assert_eq!(quarantined, vec![1, 6]);
        }
        other => panic!("unexpected error: {other}"),
    }
}

/// The verify script's chaos gate: `SURVEYOR_CHAOS_SEED` selects a seeded
/// plan, and the run's accounting must match the plan's own predictions.
/// Without the variable the test still exercises a fixed seed.
#[test]
fn seeded_chaos_run_matches_plan_predictions() {
    let seed = std::env::var("SURVEYOR_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2015u64);
    let plan = FaultPlan::from_seed(seed, SHARDS);
    // Panicking shards quarantine fine, but each one prints the default
    // panic-hook backtrace; keep the gate's output clean by masking them
    // into permanent failures (same quarantine behavior, no unwinding).
    let mut masked = FaultPlan::none();
    for &(shard, fault) in plan.assignments() {
        masked = masked.with(
            shard,
            match fault {
                Fault::Panic => Fault::Permanent,
                other => other,
            },
        );
    }

    let (kb, world) = animal_world(seed);
    let generator = generator(world);
    let surveyor = Surveyor::new(
        kb,
        SurveyorConfig {
            rho: 20,
            threads: 4,
            ..SurveyorConfig::default()
        },
    );
    let injector = FaultInjector::new(CorpusSource::new(&generator), masked);
    let retry = RetryPolicy::immediate();
    let run = surveyor
        .try_run(&injector, &retry, &FailurePolicy::degrade_unchecked())
        .expect("degrade without a floor always completes");

    assert_eq!(
        run.coverage.quarantined_shards(),
        injector.plan().expected_quarantine(retry.max_attempts),
        "seed {seed}"
    );
    assert_eq!(
        run.coverage.retries,
        injector.plan().expected_retries(retry.max_attempts),
        "seed {seed}"
    );
    assert_eq!(
        run.coverage.succeeded + run.coverage.quarantined.len(),
        SHARDS
    );
}
