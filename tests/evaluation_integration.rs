//! Integration tests for the evaluation harness: comparison report
//! structure, crowd statistics, and snapshot statistics consistency.

use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_eval::comparison::{run_comparison, WebChildConfig};
use surveyor_eval::snapshot_stats::snapshot_stats;
use surveyor_eval::EvalSuite;

fn fast_corpus() -> CorpusConfig {
    CorpusConfig {
        num_shards: 4,
        ..CorpusConfig::default()
    }
}

fn fast_surveyor() -> SurveyorConfig {
    SurveyorConfig {
        rho: 100,
        threads: 2,
        ..SurveyorConfig::default()
    }
}

#[test]
fn comparison_report_structure_and_orderings() {
    let world = surveyor_corpus::presets::table2_world(77);
    let report = run_comparison(
        &world,
        fast_corpus(),
        fast_surveyor(),
        WebChildConfig::default(),
        123,
        Some(20),
    );
    // 500 test cases minus ties (paper protocol).
    assert_eq!(report.cases + report.ties_removed, 500);
    assert!(report.ties_removed < 60);
    assert_eq!(report.table3.len(), 4);

    let get = |name: &str| {
        report
            .table3
            .iter()
            .find(|r| r.method == name)
            .unwrap_or_else(|| panic!("missing method {name}"))
            .metrics
    };
    let mv = get("Majority Vote");
    let smv = get("Scaled Majority Vote");
    let sv = get("Surveyor");
    // The paper's headline orderings.
    assert!(sv.coverage > 0.9, "surveyor coverage {}", sv.coverage);
    assert!(sv.precision > mv.precision + 0.15);
    assert!(sv.f1 > smv.f1 + 0.1);
    assert!(smv.precision >= mv.precision - 0.02, "scaling should help");
    // Baselines hover near half coverage.
    assert!(mv.coverage > 0.3 && mv.coverage < 0.75);
}

#[test]
fn figure12_surveyor_precision_rises_with_agreement() {
    let world = surveyor_corpus::presets::table2_world(77);
    let report = run_comparison(
        &world,
        fast_corpus(),
        fast_surveyor(),
        WebChildConfig::default(),
        123,
        Some(20),
    );
    let sv_at = |threshold: usize| {
        report
            .figure12
            .iter()
            .find(|p| p.threshold == threshold)
            .unwrap()
            .rows
            .iter()
            .find(|r| r.method == "Surveyor")
            .unwrap()
            .metrics
            .precision
    };
    // Precision at near-unanimous agreement beats precision over all
    // cases (the paper's 77% → 87% effect, in direction).
    assert!(
        sv_at(19) >= sv_at(11) - 0.01,
        "high-agreement {} vs all {}",
        sv_at(19),
        sv_at(11)
    );
    // Figure 11's monotone case counts.
    let mut prev = usize::MAX;
    for p in &report.figure12 {
        assert!(p.cases <= prev);
        prev = p.cases;
    }
}

#[test]
fn crowd_statistics_match_protocol() {
    let world = surveyor_corpus::presets::table2_world(77);
    let suite = EvalSuite::from_world_limited(&world, 123, Some(20));
    let mean = suite.mean_agreement();
    assert!((15.5..=19.0).contains(&mean), "mean agreement {mean}");
    assert!(
        suite.unanimous_cases() > 80,
        "unanimous {}",
        suite.unanimous_cases()
    );
    assert_eq!(suite.panel_size, 20);
    // Figure 10 renders all 20 animals (minus possible ties).
    let votes = suite.votes_for("animal", &Property::adjective("cute"));
    assert!(votes.len() >= 18);
    // Designated cute animals poll high; designated non-cute poll low.
    let vote = |name: &str| votes.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    if let (Some(kitten), Some(spider)) = (vote("Kitten"), vote("Spider")) {
        // Kitten is planted cute, spider not; panels vary per seed, so
        // only the majority direction is asserted.
        assert!(kitten > 10, "kitten votes {kitten}");
        assert!(spider < 10, "spider votes {spider}");
    }
}

#[test]
fn snapshot_statistics_are_internally_consistent() {
    let world = surveyor_corpus::presets::long_tail_world(15, 60, 5, 3);
    let generator = CorpusGenerator::new(world.clone(), fast_corpus());
    let source = CorpusSource::new(&generator);
    let evidence =
        surveyor::extract::run_sharded(&source, world.kb(), &ExtractionConfig::paper_final(), 2);
    let stats = snapshot_stats(&evidence, world.kb(), 20);
    assert_eq!(stats.statements_total, evidence.total_statements());
    assert!(stats.combinations_above_rho <= stats.combinations_total);
    assert!(stats.pairs_with_evidence >= stats.combinations_total);
    // Skew: the median entity is mentioned far less than the p95 entity.
    let p50 = stats.per_entity.iter().find(|(q, _)| *q == 50).unwrap().1;
    let p95 = stats.per_entity.iter().find(|(q, _)| *q == 95).unwrap().1;
    assert!(p95 >= p50, "p95 {p95} vs p50 {p50}");
}

#[test]
fn comparison_is_deterministic() {
    let world = surveyor_corpus::presets::table2_world(9);
    let run = || {
        run_comparison(
            &world,
            fast_corpus(),
            fast_surveyor(),
            WebChildConfig::default(),
            42,
            Some(20),
        )
    };
    assert_eq!(run(), run());
}
