//! Cross-thread-count determinism: the scaling rework hands worker
//! results back by value and merges them in shard order, so the evidence
//! table, the provenance samples, and the decided triples must be
//! byte-identical for 1/2/4/8 worker threads — on a clean run and under
//! a chaos plan that quarantines a shard. The same contract covers the
//! parallel corpus-materialization and evidence-grouping paths against
//! their serial counterparts.

use std::sync::Arc;
use surveyor::prelude::*;
use surveyor::Fault;
use surveyor_corpus::CorpusGenerator;

const SHARDS: usize = 8;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Two domains over two types, with adverb-graded properties, so the
/// interner sees a property mix wider than a single adjective.
fn world(seed: u64) -> (Arc<KnowledgeBase>, surveyor_corpus::World) {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    let city = b.add_type("city", &["city"], &[]);
    for name in [
        "Kitten", "Puppy", "Pony", "Koala", "Tiger", "Spider", "Scorpion", "Rat", "Crow", "Moose",
    ] {
        b.add_entity(name, animal).finish();
    }
    for name in [
        "Arlen",
        "Bedrock",
        "Quahog",
        "Springfield",
        "Shelbyville",
        "Langley",
        "Sunnydale",
        "Gotham",
        "Metropolis",
        "Riverdale",
    ] {
        b.add_entity(name, city).finish();
    }
    let kb = Arc::new(b.build());
    let params = DomainParams {
        p_agree: 0.9,
        rate_pos: 18.0,
        rate_neg: 5.0,
        opinions: OpinionRule::RandomShare(0.5),
        plural_subjects: true,
        ..DomainParams::default()
    };
    let world = WorldBuilder::new(kb.clone(), seed)
        .domain("animal", Property::adjective("cute"), params.clone())
        .domain("city", Property::adjective("big"), params)
        .build();
    (kb, world)
}

fn generator(seed: u64) -> (Arc<KnowledgeBase>, CorpusGenerator) {
    let (kb, world) = world(seed);
    let generator = CorpusGenerator::new(
        world,
        CorpusConfig {
            num_shards: SHARDS,
            ..CorpusConfig::default()
        },
    );
    (kb, generator)
}

fn surveyor(kb: Arc<KnowledgeBase>, threads: usize) -> Surveyor {
    Surveyor::new(
        kb,
        SurveyorConfig {
            rho: 20,
            threads,
            ..SurveyorConfig::default()
        },
    )
}

/// The three serialized views whose bytes must not depend on threading.
fn fingerprint(output: &SurveyorOutput) -> (String, String, String) {
    let evidence = output.evidence.to_json();
    let provenance = serde_json::to_string(&output.provenance).expect("provenance serializes");
    let decisions = serde_json::to_string(&output.triples()).expect("triples serialize");
    (evidence, provenance, decisions)
}

#[test]
fn clean_runs_are_byte_identical_across_thread_counts() {
    let (kb, generator) = generator(17);
    let mut reference: Option<(String, String, String)> = None;
    for threads in THREAD_COUNTS {
        let run = surveyor(kb.clone(), threads).run(&CorpusSource::new(&generator));
        assert!(run.evidence.total_statements() > 0);
        assert!(run.decided_pairs() > 0);
        let fp = fingerprint(&run);
        match &reference {
            None => reference = Some(fp),
            Some(reference) => {
                assert_eq!(reference.0, fp.0, "evidence differs at {threads} threads");
                assert_eq!(reference.1, fp.1, "provenance differs at {threads} threads");
                assert_eq!(reference.2, fp.2, "decisions differ at {threads} threads");
            }
        }
    }
}

#[test]
fn chaos_runs_are_byte_identical_across_thread_counts() {
    // A transient shard (recovers via retry) and a permanent one (always
    // quarantined): the surviving shard set — and therefore every
    // serialized byte — is fixed regardless of which worker hits what.
    let plan = FaultPlan::none()
        .with(2, Fault::Transient { failures: 1 })
        .with(5, Fault::Permanent);
    let (kb, generator) = generator(17);
    let mut reference: Option<(String, String, String)> = None;
    for threads in THREAD_COUNTS {
        let injector = FaultInjector::new(CorpusSource::new(&generator), plan.clone());
        let run = surveyor(kb.clone(), threads)
            .try_run(
                &injector,
                &RetryPolicy::immediate(),
                &FailurePolicy::Degrade {
                    min_shard_coverage: 0.5,
                },
            )
            .expect("7 of 8 shards survive the plan");
        assert_eq!(run.coverage.quarantined_shards(), vec![5]);
        assert_eq!(run.coverage.succeeded, SHARDS - 1);
        let fp = fingerprint(&run.output);
        match &reference {
            None => reference = Some(fp),
            Some(reference) => {
                assert_eq!(reference.0, fp.0, "evidence differs at {threads} threads");
                assert_eq!(reference.1, fp.1, "provenance differs at {threads} threads");
                assert_eq!(reference.2, fp.2, "decisions differ at {threads} threads");
            }
        }
    }
}

#[test]
fn parallel_generation_is_byte_identical_to_serial() {
    // Corpus materialization fans shards over a claim cursor; each shard
    // is an independent function of the seed, so the merged result must
    // match the one-shard-at-a-time serial path byte for byte at any
    // worker count — for both raw text and annotated documents.
    let (_kb, generator) = generator(17);
    let serial_text: Vec<_> = (0..generator.shard_count())
        .map(|s| generator.shard_text(s))
        .collect();
    let serial_ann: Vec<_> = {
        let lexicon = generator.lexicon();
        (0..generator.shard_count())
            .map(|s| generator.shard_annotated(s, &lexicon, None))
            .collect()
    };
    let serial_text_json = serde_json::to_string(&serial_text).expect("documents serialize");
    let serial_ann_json = serde_json::to_string(&serial_ann).expect("annotations serialize");
    let lexicon = generator.lexicon();
    for threads in THREAD_COUNTS {
        let text = generator.all_shards_text(threads);
        assert_eq!(
            serial_text_json,
            serde_json::to_string(&text).expect("documents serialize"),
            "raw documents differ at {threads} workers"
        );
        let ann = generator.all_shards_annotated(threads, &lexicon, None);
        assert_eq!(
            serial_ann_json,
            serde_json::to_string(&ann).expect("annotations serialize"),
            "annotated documents differ at {threads} workers"
        );
    }
}

#[test]
fn parallel_grouping_is_identical_to_serial() {
    // Grouping shards the evidence table over range claims and merges the
    // partial maps in range order; the grouped evidence (including the
    // property-resolved group ordering) must match the serial build.
    let (kb, generator) = generator(17);
    let run = surveyor(kb.clone(), 4).run(&CorpusSource::new(&generator));
    let serial = surveyor_extract::GroupedEvidence::from_table(&run.evidence, &kb);
    assert!(!serial.is_empty());
    for threads in THREAD_COUNTS {
        let parallel =
            surveyor_extract::GroupedEvidence::from_table_parallel(&run.evidence, &kb, threads);
        assert_eq!(
            serial, parallel,
            "grouped evidence differs at {threads} workers"
        );
    }
}

#[test]
fn clean_and_chaos_free_paths_agree() {
    // A fault-free injector must reproduce the plain run exactly: the
    // fault layer may not perturb extraction output.
    let (kb, generator) = generator(17);
    let plain = surveyor(kb.clone(), 4).run(&CorpusSource::new(&generator));
    let injector = FaultInjector::new(CorpusSource::new(&generator), FaultPlan::none());
    let hardened = surveyor(kb, 4)
        .try_run(
            &injector,
            &RetryPolicy::no_retries(),
            &FailurePolicy::FailFast,
        )
        .expect("no faults injected");
    assert_eq!(fingerprint(&plain), fingerprint(&hardened.output));
}
