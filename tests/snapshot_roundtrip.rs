//! Snapshot round-trip fixture: mine → save → load must reproduce the
//! whole mined world byte for byte. The saved bytes are a pure function
//! of the mined output, so re-encoding the loaded world reproduces them
//! exactly; the loaded world's store JSON, evidence, and triples match
//! the mined originals; and none of this depends on how many worker
//! threads did the mining — or on a chaos plan quarantining a shard.

use std::sync::Arc;
use surveyor::prelude::*;
use surveyor::{load_snapshot, save_snapshot, Fault, SubjectiveKb};
use surveyor_corpus::CorpusGenerator;

const SHARDS: usize = 8;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Two domains over two types, with adverb-graded properties, so the
/// snapshot's property table holds more than bare adjectives.
fn world(seed: u64) -> (Arc<KnowledgeBase>, surveyor_corpus::World) {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    let city = b.add_type("city", &["city"], &[]);
    for name in [
        "Kitten", "Puppy", "Pony", "Koala", "Tiger", "Spider", "Scorpion", "Rat", "Crow", "Moose",
    ] {
        b.add_entity(name, animal).finish();
    }
    for name in [
        "Arlen",
        "Bedrock",
        "Quahog",
        "Springfield",
        "Shelbyville",
        "Langley",
        "Sunnydale",
        "Gotham",
        "Metropolis",
        "Riverdale",
    ] {
        b.add_entity(name, city).finish();
    }
    let kb = Arc::new(b.build());
    let params = DomainParams {
        p_agree: 0.9,
        rate_pos: 18.0,
        rate_neg: 5.0,
        opinions: OpinionRule::RandomShare(0.5),
        plural_subjects: true,
        ..DomainParams::default()
    };
    let world = WorldBuilder::new(kb.clone(), seed)
        .domain("animal", Property::adjective("cute"), params.clone())
        .domain("city", Property::adjective("big"), params)
        .build();
    (kb, world)
}

fn generator(seed: u64) -> (Arc<KnowledgeBase>, CorpusGenerator) {
    let (kb, world) = world(seed);
    let generator = CorpusGenerator::new(
        world,
        CorpusConfig {
            num_shards: SHARDS,
            ..CorpusConfig::default()
        },
    );
    (kb, generator)
}

fn surveyor(kb: Arc<KnowledgeBase>, threads: usize) -> Surveyor {
    Surveyor::new(
        kb,
        SurveyorConfig {
            rho: 20,
            threads,
            ..SurveyorConfig::default()
        },
    )
}

/// The serialized views that must survive the binary round trip.
fn fingerprint(output: &SurveyorOutput, kb: &Arc<KnowledgeBase>) -> (String, String, String) {
    let store = SubjectiveKb::from_output(output, kb).to_json();
    let evidence = output.evidence.to_json();
    let decisions = serde_json::to_string(&output.triples()).expect("triples serialize");
    (store, evidence, decisions)
}

/// Asserts the full save → load → re-save contract on one mined output.
fn assert_round_trip(output: &SurveyorOutput, kb: &Arc<KnowledgeBase>, context: &str) {
    let bytes = save_snapshot(output);
    assert_eq!(&bytes[..8], b"SURVWIRE", "{context}: magic");
    let loaded = load_snapshot(&bytes).expect("own snapshot decodes");
    assert_eq!(
        fingerprint(output, kb),
        fingerprint(&loaded, loaded.kb()),
        "{context}: loaded world diverges from the mined one"
    );
    assert_eq!(
        output.decided_pairs(),
        loaded.decided_pairs(),
        "{context}: decided-pair count"
    );
    // Encoding is canonical: the loaded world re-encodes to the exact
    // same bytes.
    assert_eq!(
        bytes,
        save_snapshot(&loaded),
        "{context}: re-encode is not byte-identical"
    );
}

#[test]
fn snapshots_round_trip_byte_identically_across_thread_counts() {
    let (kb, generator) = generator(17);
    let mut reference: Option<Vec<u8>> = None;
    for threads in THREAD_COUNTS {
        let output = surveyor(kb.clone(), threads).run(&CorpusSource::new(&generator));
        assert!(output.decided_pairs() > 0);
        assert_round_trip(&output, &kb, &format!("{threads} threads"));
        // Thread count may not leak into the snapshot bytes either: the
        // same world snapshots to the same file however it was mined.
        let bytes = save_snapshot(&output);
        match &reference {
            None => reference = Some(bytes),
            Some(reference) => {
                assert_eq!(reference, &bytes, "snapshot differs at {threads} threads");
            }
        }
    }
}

#[test]
fn snapshots_round_trip_under_chaos() {
    // A transient shard (recovers via retry) and a permanent one (always
    // quarantined): the snapshot must capture exactly the degraded world
    // the run produced, and still round-trip byte-identically.
    let plan = FaultPlan::none()
        .with(2, Fault::Transient { failures: 1 })
        .with(5, Fault::Permanent);
    let (kb, generator) = generator(17);
    let injector = FaultInjector::new(CorpusSource::new(&generator), plan);
    let run = surveyor(kb.clone(), 4)
        .try_run(
            &injector,
            &RetryPolicy::immediate(),
            &FailurePolicy::Degrade {
                min_shard_coverage: 0.5,
            },
        )
        .expect("7 of 8 shards survive the plan");
    assert_eq!(run.coverage.quarantined_shards(), vec![5]);
    assert_round_trip(&run.output, &kb, "chaos run");

    // The degraded snapshot differs from the clean one — the quarantined
    // shard's statements are genuinely absent.
    let clean = surveyor(kb.clone(), 4).run(&CorpusSource::new(&generator));
    assert_ne!(
        save_snapshot(&run.output),
        save_snapshot(&clean),
        "chaos snapshot should not equal the clean snapshot"
    );
}

#[test]
fn loaded_worlds_answer_queries_like_mined_ones() {
    let (kb, generator) = generator(17);
    let output = surveyor(kb.clone(), 4).run(&CorpusSource::new(&generator));
    let loaded = load_snapshot(&save_snapshot(&output)).expect("own snapshot decodes");
    let mined_store = SubjectiveKb::from_output(&output, &kb);
    let loaded_store = SubjectiveKb::from_output(&loaded, loaded.kb());
    for (type_name, property) in [("animal", "cute"), ("city", "big")] {
        let property = Property::adjective(property);
        let mined: Vec<&str> = mined_store
            .query(type_name, &property)
            .iter()
            .map(|h| h.entity_name.as_str())
            .collect();
        let loaded: Vec<&str> = loaded_store
            .query(type_name, &property)
            .iter()
            .map(|h| h.entity_name.as_str())
            .collect();
        assert_eq!(mined, loaded, "query results differ for {type_name}");
        assert!(!mined.is_empty(), "no hits for {type_name}");
    }
}

#[test]
fn corrupting_any_single_byte_is_an_error_or_the_same_world() {
    // Flip one byte at a stride through the snapshot: every flip must
    // either fail with a typed error (CRC catches payload damage, the
    // validators catch the rest) — or, for the rare flip the CRC layer
    // cannot see (inside an unknown-section-skip scenario this format
    // never produces), still decode. It must never panic.
    let (kb, generator) = generator(17);
    let output = surveyor(kb.clone(), 2).run(&CorpusSource::new(&generator));
    let bytes = save_snapshot(&output);
    for pos in (0..bytes.len()).step_by(211) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x55;
        let _ = load_snapshot(&bad);
    }
    // And the unmodified bytes still decode after all that cloning.
    assert!(load_snapshot(&bytes).is_ok());
}
