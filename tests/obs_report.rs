//! Observability integration: an observed end-to-end run must emit a
//! versioned report with all five pipeline phases, extraction counters,
//! and EM telemetry — without changing the pipeline's output.

use std::sync::Arc;
use surveyor::obs::{MetricsRegistry, RunReport, REPORT_VERSION};
use surveyor::prelude::*;
use surveyor::CorpusSource;

fn observed_run() -> (Arc<MetricsRegistry>, SurveyorOutput, SurveyorOutput) {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    for name in [
        "Kitten", "Puppy", "Pony", "Koala", "Tiger", "Spider", "Scorpion", "Rat", "Crow", "Moose",
    ] {
        b.add_entity(name, animal).finish();
    }
    let kb = Arc::new(b.build());
    let params = DomainParams {
        p_agree: 0.9,
        rate_pos: 20.0,
        rate_neg: 3.0,
        opinions: OpinionRule::RandomShare(0.5),
        plural_subjects: true,
        ..DomainParams::default()
    };
    let world = WorldBuilder::new(kb.clone(), 17)
        .domain("animal", Property::adjective("cute"), params.clone())
        .domain("animal", Property::adjective("dangerous"), params)
        .build();
    let config = SurveyorConfig {
        rho: 10,
        threads: 2,
        ..SurveyorConfig::default()
    };

    let registry = Arc::new(MetricsRegistry::new());
    let generator = CorpusGenerator::new(world.clone(), CorpusConfig::default())
        .with_observer(registry.clone());
    let observed = Surveyor::new(kb.clone(), config.clone())
        .with_observer(registry.clone())
        .run(&CorpusSource::new(&generator));

    let plain_generator = CorpusGenerator::new(world, CorpusConfig::default());
    let plain = Surveyor::new(kb, config).run(&CorpusSource::new(&plain_generator));
    (registry, observed, plain)
}

#[test]
fn report_covers_all_phases_and_round_trips() {
    let (registry, observed, plain) = observed_run();

    // Observation must not perturb the pipeline.
    assert_eq!(observed.triples(), plain.triples());
    assert!(!observed.triples().is_empty());

    let report = registry.report();
    assert_eq!(report.version, REPORT_VERSION);

    // All five pipeline phases present with nonzero wall time, plus the
    // overlapping corpus-generation phase.
    for phase in ["extract", "group", "model", "decide", "index"] {
        let p = report
            .phase(phase)
            .unwrap_or_else(|| panic!("missing phase {phase}"));
        assert!(p.seconds > 0.0, "phase {phase} has zero duration");
        assert!(p.items > 0, "phase {phase} processed no items");
        assert!(p.per_second > 0.0, "phase {phase} has zero throughput");
    }
    assert!(report.phase("corpus").is_some());

    // Extraction and corpus counters flow through.
    for counter in [
        "extract.documents",
        "extract.sentences",
        "extract.statements",
        "corpus.documents",
        "corpus.sentences",
    ] {
        assert!(
            report.counters.get(counter).copied().unwrap_or(0) > 0,
            "counter {counter} is zero"
        );
    }
    let docs = report.counters["extract.documents"];
    assert_eq!(report.phase("extract").unwrap().items, docs);

    // EM telemetry: one group per modeled combination, deterministically
    // ordered, with consistent traces and a convergence-reason counter
    // total matching the group count.
    assert_eq!(report.em_groups.len(), observed.modeled_combinations());
    let mut keys: Vec<(String, String)> = report
        .em_groups
        .iter()
        .map(|g| (g.type_name.clone(), g.property.clone()))
        .collect();
    let sorted = {
        let mut s = keys.clone();
        s.sort();
        s
    };
    assert_eq!(keys, sorted, "EM groups are not sorted");
    keys.dedup();
    assert_eq!(keys.len(), report.em_groups.len(), "duplicate EM groups");
    for g in &report.em_groups {
        assert!(g.iterations >= 1);
        // The degenerate-stop iteration records no Q' value.
        let expected_trace = g.iterations as usize - usize::from(g.converged == "degenerate");
        assert_eq!(g.q_trace.len(), expected_trace);
        assert!(g.log_likelihood.is_finite());
        assert!(
            ["tolerance", "max_iterations", "degenerate"].contains(&g.converged.as_str()),
            "unknown convergence reason {:?}",
            g.converged
        );
    }
    // Every fitted group increments exactly one convergence-reason counter.
    let reason_total: u64 = report
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("em.converged."))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(reason_total as usize, report.em_groups.len());
    assert!(report.histograms.contains_key("em.iterations"));

    // The JSON artifact round-trips through the versioned schema.
    let json = report.to_json();
    let parsed = RunReport::from_json(&json).expect("report JSON parses");
    assert_eq!(parsed.version, report.version);
    assert_eq!(parsed.phases.len(), report.phases.len());
    assert_eq!(parsed.counters, report.counters);
    assert_eq!(parsed.em_groups.len(), report.em_groups.len());

    // And renders a human table naming every phase.
    let table = report.render();
    for phase in ["extract", "group", "model", "decide", "index"] {
        assert!(table.contains(phase), "render misses {phase}");
    }
}
