//! End-to-end pipeline tests: ground-truth world → generated text → NLP →
//! extraction → EM → decisions, asserting recovery of the planted
//! opinions.

use std::sync::Arc;
use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_corpus::generator::RegionSpec;

fn animal_world(seed: u64) -> (Arc<KnowledgeBase>, surveyor_corpus::World) {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    for name in [
        "Kitten", "Puppy", "Pony", "Koala", "Tiger", "Spider", "Scorpion", "Rat", "Crow", "Moose",
        "Frog", "Camel", "Goose", "Beaver", "Octopus", "Lion",
    ] {
        b.add_entity(name, animal).finish();
    }
    let kb = Arc::new(b.build());
    let world = WorldBuilder::new(kb.clone(), seed)
        .domain(
            "animal",
            Property::adjective("cute"),
            DomainParams {
                p_agree: 0.92,
                rate_pos: 25.0,
                rate_neg: 4.0,
                opinions: OpinionRule::RandomShare(0.5),
                plural_subjects: true,
                ..DomainParams::default()
            },
        )
        .build();
    (kb, world)
}

#[test]
fn pipeline_recovers_planted_opinions() {
    let (kb, world) = animal_world(11);
    let generator = CorpusGenerator::new(world.clone(), CorpusConfig::default());
    let surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho: 20,
            threads: 2,
            ..SurveyorConfig::default()
        },
    );
    let output = surveyor.run(&CorpusSource::new(&generator));
    assert_eq!(output.modeled_combinations(), 1);

    let domain = &world.domains()[0];
    let cute = Property::adjective("cute");
    let mut correct = 0;
    let entities = kb.entities_of_type(domain.type_id);
    for (i, &entity) in entities.iter().enumerate() {
        let decision = output.opinion(entity, &cute).expect("modeled combination");
        assert!(decision.decision.is_solved(), "entity {i} unsolved");
        if (decision.decision == Decision::Positive) == domain.opinions[i] {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / entities.len() as f64;
    assert!(
        accuracy >= 0.85,
        "pipeline accuracy {accuracy} ({correct}/{})",
        entities.len()
    );
}

#[test]
fn pipeline_is_deterministic() {
    let (kb, world) = animal_world(42);
    let run = |threads: usize| {
        let generator = CorpusGenerator::new(world.clone(), CorpusConfig::default());
        let surveyor = Surveyor::new(
            kb.clone(),
            SurveyorConfig {
                rho: 20,
                threads,
                ..SurveyorConfig::default()
            },
        );
        let output = surveyor.run(&CorpusSource::new(&generator));
        output.triples()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a, b, "thread count must not change results");
    assert!(!a.is_empty());
}

#[test]
fn below_threshold_combinations_are_not_modeled() {
    let (kb, world) = animal_world(7);
    let generator = CorpusGenerator::new(world.clone(), CorpusConfig::default());
    let surveyor = Surveyor::new(
        kb,
        SurveyorConfig {
            rho: 1_000_000,
            threads: 2,
            ..SurveyorConfig::default()
        },
    );
    let output = surveyor.run(&CorpusSource::new(&generator));
    assert_eq!(output.modeled_combinations(), 0);
    assert_eq!(output.decided_pairs(), 0);
    assert!(output.triples().is_empty());
    // Evidence was still extracted.
    assert!(output.evidence.total_statements() > 0);
}

#[test]
fn regional_restriction_changes_opinions() {
    let (kb, world) = animal_world(5);
    let config = CorpusConfig {
        num_shards: 8,
        regions: vec![
            RegionSpec {
                name: "west".into(),
                weight: 1.0,
                opinion_flip: 0.0,
            },
            RegionSpec {
                name: "east".into(),
                weight: 1.0,
                opinion_flip: 0.5,
            },
        ],
        ..CorpusConfig::default()
    };
    let generator = CorpusGenerator::new(world.clone(), config);
    let surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho: 10,
            threads: 2,
            ..SurveyorConfig::default()
        },
    );
    let west =
        surveyor.run(&CorpusSource::try_for_region(&generator, "west").expect("region exists"));
    let east =
        surveyor.run(&CorpusSource::try_for_region(&generator, "east").expect("region exists"));
    let cute = Property::adjective("cute");
    let domain = &world.domains()[0];
    let entities = kb.entities_of_type(domain.type_id);
    let mut diverging = 0;
    for &e in entities {
        let w = west.opinion(e, &cute).map(|d| d.decision);
        let ea = east.opinion(e, &cute).map(|d| d.decision);
        if w != ea {
            diverging += 1;
        }
    }
    assert!(
        diverging >= 2,
        "regions with flipped opinions should diverge, got {diverging}"
    );
    // The west region (no flips) must still track the global truth.
    let mut west_correct = 0;
    for (i, &e) in entities.iter().enumerate() {
        if let Some(d) = west.opinion(e, &cute) {
            if (d.decision == Decision::Positive) == domain.opinions[i] {
                west_correct += 1;
            }
        }
    }
    assert!(west_correct as f64 / entities.len() as f64 > 0.7);
}

#[test]
fn provenance_tracks_supporting_documents() {
    let (kb, world) = animal_world(13);
    let generator = CorpusGenerator::new(world.clone(), CorpusConfig::default());
    let surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho: 20,
            threads: 2,
            ..SurveyorConfig::default()
        },
    );
    let output = surveyor.run(&CorpusSource::new(&generator));
    let cute = surveyor::kb::PropertyId::intern(&Property::adjective("cute"));
    // Every pair with evidence has at least one supporting document, and
    // each cited document genuinely contains a matching sentence.
    let lexicon = generator.lexicon();
    let mut checked = 0;
    for ((entity, property), counts) in output.evidence.iter() {
        if counts.total() == 0 || *property != cute {
            continue;
        }
        let docs = output.provenance.documents_id(*entity, *property);
        assert!(!docs.is_empty(), "no provenance for {entity:?}");
        // Verify the first citation: regenerate its shard and re-extract.
        let doc_id = docs[0];
        let shard = (doc_id >> 32) as usize;
        let doc = generator
            .shard_annotated(shard, &lexicon, None)
            .into_iter()
            .find(|d| d.id == doc_id)
            .expect("cited document exists");
        let found = doc.sentences.iter().any(|s| {
            surveyor::extract::extract_sentence(s, &kb, &ExtractionConfig::paper_final())
                .iter()
                .any(|st| st.entity == *entity && st.property == *property)
        });
        assert!(found, "cited doc {doc_id} lacks a matching statement");
        checked += 1;
        if checked > 10 {
            break;
        }
    }
    assert!(checked > 3, "checked {checked} citations");
}

#[test]
fn interpretation_is_identical_across_worker_counts() {
    // Multi-domain world so the parallel interpretation phase actually has
    // several combinations to distribute across workers.
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    let city = b.add_type("city", &["city"], &[]);
    for name in [
        "Kitten", "Puppy", "Tiger", "Spider", "Crow", "Moose", "Frog", "Goose",
    ] {
        b.add_entity(name, animal).finish();
    }
    for name in [
        "Springfield",
        "Riverton",
        "Lakewood",
        "Hillsboro",
        "Fairview",
        "Greenville",
    ] {
        b.add_entity(name, city).finish();
    }
    let kb = Arc::new(b.build());
    let params = DomainParams {
        p_agree: 0.9,
        rate_pos: 20.0,
        rate_neg: 3.0,
        opinions: OpinionRule::RandomShare(0.5),
        plural_subjects: true,
        ..DomainParams::default()
    };
    let world = WorldBuilder::new(kb.clone(), 29)
        .domain("animal", Property::adjective("cute"), params.clone())
        .domain("animal", Property::adjective("dangerous"), params.clone())
        .domain("city", Property::adjective("big"), params.clone())
        .domain("city", Property::adjective("cheap"), params)
        .build();
    let generator = CorpusGenerator::new(world, CorpusConfig::default());

    let surveyor_for = |threads: usize| {
        Surveyor::new(
            kb.clone(),
            SurveyorConfig {
                rho: 10,
                threads,
                ..SurveyorConfig::default()
            },
        )
    };
    let evidence = surveyor_for(2).run(&CorpusSource::new(&generator)).evidence;
    let baseline = surveyor_for(1).run_on_evidence(evidence.clone());
    assert!(
        baseline.modeled_combinations() >= 4,
        "want several combinations, got {}",
        baseline.modeled_combinations()
    );
    for workers in [2usize, 8] {
        let parallel = surveyor_for(workers).run_on_evidence(evidence.clone());
        assert_eq!(
            baseline.triples(),
            parallel.triples(),
            "{workers} workers changed the triples"
        );
        assert_eq!(baseline.results.len(), parallel.results.len());
        for (a, b) in baseline.results.iter().zip(&parallel.results) {
            assert_eq!(a.key.type_id, b.key.type_id);
            assert_eq!(a.key.property, b.key.property);
            // Bit-identical decisions and posteriors for every entity.
            assert_eq!(a.decisions, b.decisions, "{workers} workers diverged");
        }
    }
}

#[test]
fn run_on_evidence_matches_full_run() {
    let (kb, world) = animal_world(3);
    let generator = CorpusGenerator::new(world, CorpusConfig::default());
    let surveyor = Surveyor::new(
        kb,
        SurveyorConfig {
            rho: 20,
            threads: 2,
            ..SurveyorConfig::default()
        },
    );
    let full = surveyor.run(&CorpusSource::new(&generator));
    let replay = surveyor.run_on_evidence(full.evidence.clone());
    assert_eq!(full.triples(), replay.triples());
}
