//! Incremental-update determinism: mining a base prefix of the corpus
//! and then ingesting the remaining shards with [`Surveyor::try_update`]
//! must produce a snapshot byte-identical to mining the whole corpus
//! from scratch — at every worker thread count, for every split point,
//! after multiple successive deltas, and after replaying shards a chaos
//! plan quarantined. `WarmStart::Exact` re-fits dirty groups with the
//! same cold multi-restart EM a from-scratch run uses and carries clean
//! groups forward untouched, so identity holds by construction; these
//! tests pin that construction against regressions in the merge and
//! carry paths.

use std::sync::Arc;
use surveyor::prelude::*;
use surveyor::{save_snapshot, WarmStart};
use surveyor_corpus::CorpusGenerator;

const SHARDS: usize = 8;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Two domains over two types — the same world the thread-scaling suite
/// uses, so failures here isolate the incremental path.
fn world(seed: u64) -> (Arc<KnowledgeBase>, surveyor_corpus::World) {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    let city = b.add_type("city", &["city"], &[]);
    for name in [
        "Kitten", "Puppy", "Pony", "Koala", "Tiger", "Spider", "Scorpion", "Rat", "Crow", "Moose",
    ] {
        b.add_entity(name, animal).finish();
    }
    for name in [
        "Arlen",
        "Bedrock",
        "Quahog",
        "Springfield",
        "Shelbyville",
        "Langley",
        "Sunnydale",
        "Gotham",
        "Metropolis",
        "Riverdale",
    ] {
        b.add_entity(name, city).finish();
    }
    let kb = Arc::new(b.build());
    let params = DomainParams {
        p_agree: 0.9,
        rate_pos: 18.0,
        rate_neg: 5.0,
        opinions: OpinionRule::RandomShare(0.5),
        plural_subjects: true,
        ..DomainParams::default()
    };
    let world = WorldBuilder::new(kb.clone(), seed)
        .domain("animal", Property::adjective("cute"), params.clone())
        .domain("city", Property::adjective("big"), params)
        .build();
    (kb, world)
}

fn generator(seed: u64) -> (Arc<KnowledgeBase>, CorpusGenerator) {
    let (kb, world) = world(seed);
    let generator = CorpusGenerator::new(
        world,
        CorpusConfig {
            num_shards: SHARDS,
            ..CorpusConfig::default()
        },
    );
    (kb, generator)
}

fn surveyor(kb: Arc<KnowledgeBase>, threads: usize) -> Surveyor {
    Surveyor::new(
        kb,
        SurveyorConfig {
            rho: 20,
            threads,
            ..SurveyorConfig::default()
        },
    )
}

/// Mines shards `[0, upto)` — the base snapshot an update extends.
fn mine_prefix(surv: &Surveyor, generator: &CorpusGenerator, upto: usize) -> SurveyorOutput {
    let subset = ShardSubset::range(CorpusSource::new(generator), 0, upto);
    surv.try_run(
        &subset,
        &RetryPolicy::no_retries(),
        &FailurePolicy::FailFast,
    )
    .expect("clean base mine")
    .output
}

#[test]
fn update_is_byte_identical_to_from_scratch_across_thread_counts() {
    let (kb, generator) = generator(17);
    let reference = {
        let scratch = surveyor(kb.clone(), 1).run(&CorpusSource::new(&generator));
        save_snapshot(&scratch)
    };
    let base_shards = SHARDS - 2;
    for threads in THREAD_COUNTS {
        let surv = surveyor(kb.clone(), threads);
        let scratch_t = surv.run(&CorpusSource::new(&generator));
        assert_eq!(
            save_snapshot(&scratch_t),
            reference,
            "from-scratch bytes differ at {threads} threads"
        );
        let base = mine_prefix(&surv, &generator, base_shards);
        let delta = ShardSubset::range(CorpusSource::new(&generator), base_shards, SHARDS);
        let updated = surv
            .try_update(
                base,
                &delta,
                &RetryPolicy::no_retries(),
                &FailurePolicy::FailFast,
                WarmStart::Exact,
            )
            .expect("clean update");
        assert!(updated.stats.groups_total > 0, "update modeled no groups");
        assert_eq!(
            save_snapshot(&updated.output),
            reference,
            "updated bytes differ at {threads} threads"
        );
    }
}

#[test]
fn every_split_point_converges_to_the_same_bytes() {
    // Ingesting the tail from any base prefix — including an empty base
    // and an empty delta — lands on the same snapshot.
    let (kb, generator) = generator(17);
    let surv = surveyor(kb, 4);
    let reference = save_snapshot(&surv.run(&CorpusSource::new(&generator)));
    for base_shards in [1, 4, SHARDS - 1, SHARDS] {
        let base = mine_prefix(&surv, &generator, base_shards);
        let delta = ShardSubset::range(CorpusSource::new(&generator), base_shards, SHARDS);
        let updated = surv
            .try_update(
                base,
                &delta,
                &RetryPolicy::no_retries(),
                &FailurePolicy::FailFast,
                WarmStart::Exact,
            )
            .expect("clean update");
        assert_eq!(
            save_snapshot(&updated.output),
            reference,
            "bytes differ for base of {base_shards} shards"
        );
    }
}

#[test]
fn successive_deltas_compose() {
    // base [0,4) + delta [4,6) + delta [6,8) == from-scratch [0,8).
    let (kb, generator) = generator(17);
    let surv = surveyor(kb, 2);
    let reference = save_snapshot(&surv.run(&CorpusSource::new(&generator)));
    let mut rolling = mine_prefix(&surv, &generator, 4);
    for (start, end) in [(4, 6), (6, SHARDS)] {
        let delta = ShardSubset::range(CorpusSource::new(&generator), start, end);
        rolling = surv
            .try_update(
                rolling,
                &delta,
                &RetryPolicy::no_retries(),
                &FailurePolicy::FailFast,
                WarmStart::Exact,
            )
            .expect("clean update")
            .output;
    }
    assert_eq!(save_snapshot(&rolling), reference);
}

#[test]
fn chaos_quarantine_then_replay_reaches_clean_bytes_at_every_thread_count() {
    // A permanent fault kills shard 2 during the base mine; replaying it
    // alongside the tail delta must converge to the clean from-scratch
    // snapshot regardless of worker count. The plan spans the full shard
    // range so the base subset sees exactly the faults the full corpus
    // would.
    let (kb, generator) = generator(17);
    let plan = FaultPlan::none().with(2, surveyor::Fault::Permanent);
    let base_shards = SHARDS - 2;
    let reference = {
        let scratch = surveyor(kb.clone(), 1).run(&CorpusSource::new(&generator));
        save_snapshot(&scratch)
    };
    for threads in THREAD_COUNTS {
        let surv = surveyor(kb.clone(), threads);
        let injector = FaultInjector::new(CorpusSource::new(&generator), plan.clone());
        let chaotic_base = ShardSubset::range(injector, 0, base_shards);
        let degraded = surv
            .try_run(
                &chaotic_base,
                &RetryPolicy::immediate(),
                &FailurePolicy::Degrade {
                    min_shard_coverage: 0.5,
                },
            )
            .expect("degraded base survives");
        assert_eq!(degraded.coverage.quarantined_shards(), vec![2]);
        // Replay queue ∪ tail delta, in shard order — what `surveyor
        // update` requests.
        let mut shards = degraded.coverage.quarantined_shards();
        shards.extend(base_shards..SHARDS);
        shards.sort_unstable();
        let replay = ShardSubset::new(CorpusSource::new(&generator), shards);
        let replayed = surv
            .try_update(
                degraded.output,
                &replay,
                &RetryPolicy::no_retries(),
                &FailurePolicy::FailFast,
                WarmStart::Exact,
            )
            .expect("replay update");
        assert_eq!(
            save_snapshot(&replayed.output),
            reference,
            "replayed bytes differ at {threads} threads"
        );
    }
}

#[test]
fn seeded_warm_start_reaches_the_same_decisions() {
    // The opt-in seeded mode trades byte-identity (EM traces differ) for
    // speed; the decided triples must still match on this well-separated
    // world.
    let (kb, generator) = generator(17);
    let surv = surveyor(kb, 4);
    let scratch = surv.run(&CorpusSource::new(&generator));
    let base = mine_prefix(&surv, &generator, SHARDS - 2);
    let delta = ShardSubset::range(CorpusSource::new(&generator), SHARDS - 2, SHARDS);
    let seeded = surv
        .try_update(
            base,
            &delta,
            &RetryPolicy::no_retries(),
            &FailurePolicy::FailFast,
            WarmStart::Seeded,
        )
        .expect("seeded update");
    let triples = |output: &SurveyorOutput| {
        let mut t: Vec<_> = output
            .triples()
            .into_iter()
            .map(|tr| (tr.entity, tr.property, tr.polarity))
            .collect();
        t.sort_unstable();
        t
    };
    assert_eq!(triples(&seeded.output), triples(&scratch));
}
