//! Paper-shape regression tests: every headline result of the paper must
//! hold in *shape* (who wins, roughly by how much, where the qualitative
//! crossovers fall) on the reproduction's official configuration.
//!
//! These are the slowest tests in the suite (full pipeline runs); they pin
//! down the numbers recorded in EXPERIMENTS.md.

use surveyor::prelude::*;
use surveyor_eval::comparison::{run_comparison, WebChildConfig};
use surveyor_eval::empirical::run_empirical;
use surveyor_eval::random_sample::run_random_sample;
use surveyor_eval::versions::run_versions;

const SEED: u64 = 2015;
const PANEL_SEED: u64 = 500;

fn official_corpus() -> CorpusConfig {
    CorpusConfig {
        num_shards: 8,
        ..CorpusConfig::default()
    }
}

fn official_surveyor() -> SurveyorConfig {
    SurveyorConfig {
        rho: 100,
        threads: 2,
        ..SurveyorConfig::default()
    }
}

#[test]
fn table3_shape() {
    let world = surveyor_corpus::presets::table2_world(SEED);
    let report = run_comparison(
        &world,
        official_corpus(),
        official_surveyor(),
        WebChildConfig::default(),
        PANEL_SEED,
        Some(20),
    );
    let get = |name: &str| {
        report
            .table3
            .iter()
            .find(|r| r.method == name)
            .unwrap()
            .metrics
    };
    let mv = get("Majority Vote");
    let smv = get("Scaled Majority Vote");
    let wc = get("WebChild");
    let sv = get("Surveyor");

    // Paper Table 3: Surveyor 0.966 / 0.77 / 0.84.
    assert!(
        sv.coverage > 0.9 && sv.coverage < 1.0,
        "sv coverage {}",
        sv.coverage
    );
    assert!(sv.precision > 0.7, "sv precision {}", sv.precision);
    assert!(sv.f1 > 0.8, "sv f1 {}", sv.f1);

    // Precision ordering: MV < SMV < WebChild < Surveyor
    // (paper: .29 < .37 < .54 < .77).
    assert!(mv.precision < smv.precision + 0.02);
    assert!(smv.precision < wc.precision + 0.02);
    assert!(sv.precision > wc.precision + 0.1);
    assert!(sv.precision > mv.precision + 0.3);

    // Coverage: Surveyor nearly doubles the count-based baselines
    // (paper: .966 vs ~.48).
    assert!(sv.coverage > 1.5 * mv.coverage);
    assert!(
        (0.3..0.75).contains(&mv.coverage),
        "mv coverage {}",
        mv.coverage
    );

    // F1 ordering is strict (paper: .36 < .42 < .51 < .84).
    assert!(mv.f1 < smv.f1 && smv.f1 < sv.f1 && wc.f1 < sv.f1);
}

#[test]
fn figure12_shape() {
    let world = surveyor_corpus::presets::table2_world(SEED);
    let report = run_comparison(
        &world,
        official_corpus(),
        official_surveyor(),
        WebChildConfig::default(),
        PANEL_SEED,
        Some(20),
    );
    let precision_at = |method: &str, threshold: usize| {
        report
            .figure12
            .iter()
            .find(|p| p.threshold == threshold)
            .unwrap()
            .rows
            .iter()
            .find(|r| r.method == method)
            .unwrap()
            .metrics
            .precision
    };
    // Surveyor's precision improves on high-agreement cases (77% → 87% in
    // the paper); majority vote "cannot benefit from growing worker
    // agreement" — its line stays flat or drops.
    let sv_gain = precision_at("Surveyor", 19) - precision_at("Surveyor", 11);
    assert!(sv_gain > -0.01, "surveyor gain {sv_gain}");
    let mv_gain = precision_at("Majority Vote", 19) - precision_at("Majority Vote", 11);
    assert!(mv_gain < 0.08, "mv gain {mv_gain} should stay flat");
    // Mean agreement ~17/20, unanimous block present (paper: 17, ~180).
    assert!((16.0..19.5).contains(&report.mean_agreement));
    assert!(report.unanimous_cases > 100);
}

#[test]
fn table4_shape() {
    use surveyor::extract::PatternVersion;
    let world = surveyor_corpus::presets::table2_world(SEED);
    let rows = run_versions(&world, official_corpus());
    let count = |v: PatternVersion| rows.iter().find(|r| r.version == v).unwrap().statements;
    let quality = |v: PatternVersion| {
        rows.iter()
            .find(|r| r.version == v)
            .unwrap()
            .on_target_share
    };

    // Paper Table 4 count ordering: V2 > V1 > V4 > V3.
    assert!(count(PatternVersion::V2) > count(PatternVersion::V1));
    assert!(count(PatternVersion::V1) > count(PatternVersion::V4));
    assert!(count(PatternVersion::V4) > count(PatternVersion::V3));
    // V2 extracts roughly 2x V4 (paper: 1.78B vs 922M).
    let ratio = count(PatternVersion::V2) as f64 / count(PatternVersion::V4) as f64;
    assert!((1.3..4.0).contains(&ratio), "V2/V4 ratio {ratio}");
    // The checked versions are cleaner (the paper's quality narrative).
    assert!(quality(PatternVersion::V4) > quality(PatternVersion::V2) + 0.2);
    assert!(quality(PatternVersion::V3) > quality(PatternVersion::V1) + 0.2);
}

#[test]
fn table5_shape() {
    let world = surveyor_corpus::presets::long_tail_world(40, 120, 8, SEED);
    let report = run_random_sample(
        &world,
        official_corpus(),
        SurveyorConfig {
            rho: 25,
            threads: 2,
            ..SurveyorConfig::default()
        },
        WebChildConfig::default(),
        100,
        7,
        80,
        SEED ^ 0xD,
    );
    let get = |name: &str| report.rows.iter().find(|r| r.method == name).unwrap();
    let mv = get("Majority Vote");
    let sv = get("Surveyor");
    // Paper Table 5: baseline coverage collapses (0.0766) while Surveyor
    // stays essentially total (0.999); F1 gap is an order of magnitude.
    assert!(mv.coverage < 0.3, "mv coverage {}", mv.coverage);
    assert!(sv.coverage > 0.9, "sv coverage {}", sv.coverage);
    assert!(sv.f1 > 2.5 * mv.f1, "sv f1 {} mv f1 {}", sv.f1, mv.f1);
    assert!(sv.precision > 0.6, "sv precision {}", sv.precision);
}

#[test]
fn figure3_shape() {
    let world = surveyor_corpus::presets::big_cities_world(SEED);
    let study = run_empirical(
        &world,
        surveyor::kb::seed::ATTR_POPULATION,
        official_corpus(),
        SurveyorConfig {
            rho: 50,
            threads: 2,
            ..SurveyorConfig::default()
        },
    );
    // The probabilistic model decides every city; majority vote cannot.
    assert!(study.model_coverage > 0.99);
    assert!(study.majority_coverage < 0.95);
    // "Polarity is strongly correlated with population count" for the
    // model (Fig. 3d), not for majority vote (Fig. 3c).
    assert!(study.model_spearman.unwrap() > study.majority_spearman.unwrap());
    // Accuracy against the planted opinions: the model is near-perfect,
    // majority vote is poor (many small cities marked big).
    assert!(
        study.model_accuracy > 0.9,
        "model accuracy {}",
        study.model_accuracy
    );
    assert!(
        study.majority_accuracy < study.model_accuracy - 0.2,
        "mv accuracy {} model {}",
        study.majority_accuracy,
        study.model_accuracy
    );
    // Occurrence bias is visible in the raw counts (Fig. 3a).
    let attrs: Vec<f64> = study.points.iter().map(|p| p.attribute.ln()).collect();
    let positives: Vec<f64> = study.points.iter().map(|p| p.positive as f64).collect();
    let rho = surveyor::prob::spearman(&attrs, &positives).unwrap();
    assert!(rho > 0.3, "count/population correlation {rho}");
}

#[test]
fn figure13_shape() {
    for (world, attr) in [
        (
            surveyor_corpus::presets::wealthy_countries_world(SEED),
            surveyor::kb::seed::ATTR_GDP_PER_CAPITA,
        ),
        (
            surveyor_corpus::presets::big_lakes_world(SEED),
            surveyor::kb::seed::ATTR_AREA_KM2,
        ),
        (
            surveyor_corpus::presets::high_mountains_world(SEED),
            surveyor::kb::seed::ATTR_RELATIVE_HEIGHT_M,
        ),
    ] {
        let study = run_empirical(
            &world,
            attr,
            official_corpus(),
            SurveyorConfig {
                rho: 20,
                threads: 2,
                ..SurveyorConfig::default()
            },
        );
        // "For all three scenarios, the correlation is significantly
        // better for the probabilistic model", and the model classifies
        // entities without any statements.
        assert!(
            study.model_spearman.unwrap() > study.majority_spearman.unwrap() - 0.05,
            "{attr}: model {:?} vs mv {:?}",
            study.model_spearman,
            study.majority_spearman
        );
        assert!(study.model_coverage > 0.99, "{attr}");
        assert!(study.majority_coverage < 0.95, "{attr}");
    }
}
