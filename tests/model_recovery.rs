//! Model-recovery tests: the EM fit must recover the generative
//! parameters when counts flow through the *full text pipeline* (i.e.
//! after realization, parsing, entity linking, and extraction thinning),
//! not just from idealized Poisson draws.

use std::sync::Arc;
use surveyor::model::{posterior_positive, ObservedCounts, SurveyorModel};
use surveyor::prelude::*;
use surveyor::CorpusSource;

fn build_world(
    seed: u64,
    p_agree: f64,
    rate_pos: f64,
    rate_neg: f64,
    entities: usize,
) -> (Arc<KnowledgeBase>, surveyor_corpus::World) {
    let mut b = KnowledgeBaseBuilder::new();
    let t = b.add_type("city", &["city"], &[]);
    for i in 0..entities {
        b.add_entity(&format!("Testville{i}"), t).finish();
    }
    let kb = Arc::new(b.build());
    let world = WorldBuilder::new(kb.clone(), seed)
        .domain(
            "city",
            Property::adjective("big"),
            DomainParams {
                p_agree,
                rate_pos,
                rate_neg,
                opinions: OpinionRule::RandomShare(0.4),
                aspect_noise: 0.0,
                part_of_noise: 0.0,
                filler_noise: 0.0,
                extended_verb_share: 0.0,
                double_negation_share: 0.02,
                ..DomainParams::default()
            },
        )
        .build();
    (kb, world)
}

/// Counts per entity after the full text round trip.
fn pipeline_counts(kb: &Arc<KnowledgeBase>, world: &surveyor_corpus::World) -> Vec<ObservedCounts> {
    let generator = CorpusGenerator::new(world.clone(), CorpusConfig::default());
    let surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho: 1,
            threads: 2,
            ..SurveyorConfig::default()
        },
    );
    let output = surveyor.run(&CorpusSource::new(&generator));
    let domain = &world.domains()[0];
    kb.entities_of_type(domain.type_id)
        .iter()
        .map(|&e| {
            let c = output.evidence.counts(e, &domain.property);
            ObservedCounts::new(c.positive, c.negative)
        })
        .collect()
}

#[test]
fn em_recovers_parameters_through_text() {
    let (kb, world) = build_world(17, 0.9, 30.0, 4.0, 300);
    let counts = pipeline_counts(&kb, &world);
    let fit = SurveyorModel::new().fit_group(&counts);

    // Agreement within the grid resolution plus estimation noise.
    assert!(
        (fit.params.p_agree - 0.9).abs() <= 0.08,
        "pA fitted {} vs true 0.9",
        fit.params.p_agree
    );
    // Rates recover up to extraction thinning: every realized statement
    // that parses and links is counted, with zero configured loss
    // channels, so the fitted rate should be within ~15% of truth.
    assert!(
        fit.params.rate_pos > 0.75 * 30.0 && fit.params.rate_pos < 1.25 * 30.0,
        "np+S fitted {} vs true 30",
        fit.params.rate_pos
    );
    assert!(
        fit.params.rate_neg > 0.6 * 4.0 && fit.params.rate_neg < 1.5 * 4.0,
        "np-S fitted {} vs true 4",
        fit.params.rate_neg
    );
}

#[test]
fn fitted_posterior_classifies_planted_opinions() {
    let (kb, world) = build_world(23, 0.88, 20.0, 3.0, 200);
    let counts = pipeline_counts(&kb, &world);
    let fit = SurveyorModel::new().fit_group(&counts);
    let domain = &world.domains()[0];
    let mut correct = 0;
    for (i, c) in counts.iter().enumerate() {
        let p = posterior_positive(*c, &fit.params);
        if (p > 0.5) == domain.opinions[i] {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / counts.len() as f64;
    assert!(accuracy > 0.9, "accuracy {accuracy}");
}

#[test]
fn polarity_bias_survives_the_text_round_trip() {
    // np+S >> np-S in the world must appear in the fitted parameters: the
    // model learns that negative statements are rare, so a single negative
    // statement outweighs a single positive one.
    let (kb, world) = build_world(31, 0.9, 40.0, 2.0, 300);
    let counts = pipeline_counts(&kb, &world);
    let fit = SurveyorModel::new().fit_group(&counts);
    assert!(
        fit.params.rate_pos > 5.0 * fit.params.rate_neg,
        "polarity bias lost: np+ {} np- {}",
        fit.params.rate_pos,
        fit.params.rate_neg
    );
    // Figure-3 logic: an unmentioned entity reads negative.
    let p_zero = posterior_positive(ObservedCounts::zero(), &fit.params);
    assert!(p_zero < 0.2, "p(zero)={p_zero}");
}

#[test]
fn double_negations_do_not_corrupt_polarity() {
    // Crank double negations to 20%: extracted polarity must still track
    // the intended polarity (Figure 5's cancellation at scale).
    let mut b = KnowledgeBaseBuilder::new();
    let t = b.add_type("animal", &["animal"], &[]);
    for i in 0..50 {
        b.add_entity(&format!("Critter{i}"), t).finish();
    }
    let kb = Arc::new(b.build());
    let world = WorldBuilder::new(kb.clone(), 3)
        .domain(
            "animal",
            Property::adjective("dangerous"),
            DomainParams {
                p_agree: 0.95,
                rate_pos: 25.0,
                rate_neg: 25.0,
                opinions: OpinionRule::RandomShare(0.5),
                aspect_noise: 0.0,
                part_of_noise: 0.0,
                filler_noise: 0.0,
                extended_verb_share: 0.0,
                double_negation_share: 0.2,
                ..DomainParams::default()
            },
        )
        .build();
    let counts = pipeline_counts(&kb, &world);
    let domain = &world.domains()[0];
    // With symmetric rates and high agreement, positive entities must show
    // mostly positive counts and vice versa.
    let mut majority_correct = 0;
    let mut counted = 0;
    for (i, c) in counts.iter().enumerate() {
        if c.total() < 5 {
            continue;
        }
        counted += 1;
        if (c.positive > c.negative) == domain.opinions[i] {
            majority_correct += 1;
        }
    }
    assert!(counted > 30);
    let rate = majority_correct as f64 / counted as f64;
    assert!(rate > 0.9, "polarity integrity {rate}");
}
