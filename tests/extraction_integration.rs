//! Integration tests for the text → annotation → extraction path on a
//! battery of hand-written sentences covering every pattern, filter, and
//! polarity case of paper §4.

use surveyor::extract::{extract_documents, extract_sentence, ExtractionConfig, Polarity};
use surveyor::nlp::{annotate, Lexicon};
use surveyor::prelude::*;

fn kb() -> KnowledgeBase {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &["zoo"]);
    let city = b.add_type("city", &["city", "town"], &["downtown"]);
    let country = b.add_type("country", &["country"], &[]);
    let sport = b.add_type("sport", &["sport"], &[]);
    b.add_entity("Snake", animal).finish();
    b.add_entity("Kitten", animal).finish();
    b.add_entity("Grizzly bear", animal).finish();
    b.add_entity("San Francisco", city).alias("SF").finish();
    b.add_entity("Chicago", city).finish();
    b.add_entity("New York", city).finish();
    b.add_entity("France", country).finish();
    b.add_entity("Greece", country).finish();
    b.add_entity("Soccer", sport).finish();
    b.build()
}

/// Extracts (entity-name, property, polarity) triples from text under V4.
fn v4(text: &str) -> Vec<(String, String, Polarity)> {
    let kb = kb();
    let lexicon = Lexicon::new();
    let doc = annotate(0, text, &kb, &lexicon);
    let mut out = Vec::new();
    for s in &doc.sentences {
        for st in extract_sentence(s, &kb, &ExtractionConfig::paper_final()) {
            out.push((
                kb.entity(st.entity).name().to_owned(),
                st.property.resolve().to_string(),
                st.polarity,
            ));
        }
    }
    out
}

#[test]
fn battery_of_positive_statements() {
    for (text, entity, property) in [
        ("Chicago is big.", "Chicago", "big"),
        ("Chicago is very big.", "Chicago", "very big"),
        ("San Francisco is a big city.", "San Francisco", "big"),
        ("SF is a big city.", "San Francisco", "big"),
        ("Snakes are dangerous animals.", "Snake", "dangerous"),
        ("I think that Chicago is big.", "Chicago", "big"),
        ("I think Kittens are cute.", "Kitten", "cute"),
        ("I love the cute Kitten.", "Kitten", "cute"),
        ("Grizzly bears are dangerous.", "Grizzly bear", "dangerous"),
        ("Greece is a southern country.", "Greece", "southern"),
    ] {
        let got = v4(text);
        assert!(
            got.contains(&(entity.to_owned(), property.to_owned(), Polarity::Positive)),
            "missing ({entity}, {property}, +) in {got:?} for: {text}"
        );
    }
}

#[test]
fn battery_of_negative_statements() {
    for (text, entity, property) in [
        ("Chicago is not big.", "Chicago", "big"),
        ("San Francisco is not a big city.", "San Francisco", "big"),
        ("Snakes are never cute.", "Snake", "cute"),
        ("I don't think that Chicago is big.", "Chicago", "big"),
        (
            "I do not believe Kittens are dangerous.",
            "Kitten",
            "dangerous",
        ),
    ] {
        let got = v4(text);
        assert!(
            got.contains(&(entity.to_owned(), property.to_owned(), Polarity::Negative)),
            "missing ({entity}, {property}, -) in {got:?} for: {text}"
        );
    }
}

#[test]
fn battery_of_filtered_sentences() {
    // Intrinsicness and coreference filters (paper §4) must suppress all
    // of these under V4.
    for text in [
        "New York is bad for parking.",
        "southern France is warm in the summer.",
        "The weather in Chicago is nice.",
        "I visited Chicago during the summer.",
        "People love Soccer.",
    ] {
        let got = v4(text);
        assert!(
            got.is_empty(),
            "expected no extractions for: {text}, got {got:?}"
        );
    }
}

#[test]
fn conjunction_extracts_both_properties() {
    let got = v4("Soccer is a fast and exciting sport.");
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got.contains(&("Soccer".into(), "fast".into(), Polarity::Positive)));
    assert!(got.contains(&("Soccer".into(), "exciting".into(), Polarity::Positive)));
}

#[test]
fn double_negation_resolves_positive() {
    let got = v4("I don't think that Snakes are never dangerous.");
    assert_eq!(
        got,
        vec![("Snake".into(), "dangerous".into(), Polarity::Positive)]
    );
}

#[test]
fn multi_sentence_document_accumulates_counts() {
    let kb = kb();
    let lexicon = Lexicon::new();
    let text = "Kittens are cute. Kittens are cute animals. \
                Kittens are not cute. Chicago is big.";
    let docs = vec![annotate(1, text, &kb, &lexicon)];
    let table = extract_documents(&docs, &kb, &ExtractionConfig::paper_final());
    let kitten = kb.entity_by_name("Kitten").unwrap();
    let chicago = kb.entity_by_name("Chicago").unwrap();
    let cute = Property::adjective("cute");
    let big = Property::adjective("big");
    assert_eq!(table.counts(kitten, &cute).positive, 2);
    assert_eq!(table.counts(kitten, &cute).negative, 1);
    assert_eq!(table.counts(chicago, &big).positive, 1);
    assert_eq!(table.total_statements(), 4);
}

#[test]
fn ambiguous_mentions_never_extract() {
    // "Phoenix" shared between a city and an animal alias: without
    // disambiguating context, nothing may be extracted.
    let mut b = KnowledgeBaseBuilder::new();
    let city = b.add_type("city", &["city"], &["downtown"]);
    let animal = b.add_type("animal", &["animal"], &["zoo"]);
    b.add_entity("Phoenix", city).finish();
    b.add_entity("Phoenix Bird", animal)
        .alias("Phoenix")
        .finish();
    let kb = b.build();
    let lexicon = Lexicon::new();
    let doc = annotate(0, "Phoenix is big.", &kb, &lexicon);
    let stmts = extract_sentence(&doc.sentences[0], &kb, &ExtractionConfig::paper_final());
    assert!(stmts.is_empty(), "{stmts:?}");

    // With a type cue the city reading resolves and extraction works.
    let doc = annotate(0, "Phoenix is a big city.", &kb, &lexicon);
    let stmts = extract_sentence(&doc.sentences[0], &kb, &ExtractionConfig::paper_final());
    assert_eq!(stmts.len(), 1);
    let e = kb.entity(stmts[0].entity);
    assert_eq!(e.name(), "Phoenix");
}

#[test]
fn version_lattice_on_mixed_text() {
    use surveyor::extract::PatternVersion;
    let kb = kb();
    let lexicon = Lexicon::new();
    let text = "Chicago is big. San Francisco is a big city. \
                New York is bad for parking. southern France is warm in the summer. \
                I find Kittens cute. Chicago seems big. Soccer is fast and exciting.";
    let docs = vec![annotate(0, text, &kb, &lexicon)];
    let count = |v: PatternVersion| extract_documents(&docs, &kb, &v.config()).total_statements();
    // V2 is the most permissive on this text; V3 the least.
    assert!(count(PatternVersion::V2) > count(PatternVersion::V4));
    assert!(count(PatternVersion::V4) > count(PatternVersion::V3));
    assert!(count(PatternVersion::V2) >= count(PatternVersion::V1));
}
