#!/usr/bin/env bash
# Full verification gate: the tier-1 build+test pass (ROADMAP.md) plus the
# lint gates. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Static-analysis gate: surveyor-lint enforces the determinism and
# panic-freedom invariants (DESIGN.md §6e) over the whole workspace,
# itself included (its deliberately-violating fixture workspace is
# excluded by lint.toml). Exit 1 = findings, 2 = config error; the JSON
# report is archived next to the repro artifacts either way.
mkdir -p artifacts
cargo run --release -q -p surveyor-lint -- --json-out artifacts/lint_report.json

# Chaos gate: the fault-injection suite under a seeded fault plan. The
# seed selects which shards panic/fail (FaultPlan::from_seed); the suite
# asserts the run's coverage accounting matches the plan's predictions.
SURVEYOR_CHAOS_SEED="${SURVEYOR_CHAOS_SEED:-2015}" cargo test -q --test fault_injection

# Bench smoke: the thread-scaling harness on its quick preset, with the
# scaling-regression gate armed (nonzero exit on a phase that regresses
# past its target curve; the permissive tolerance absorbs the noise of a
# shared 1-CPU CI host). The bench binary validates the artifact schema
# before writing; the greps below are a second line of defense pinning
# the keys EXPERIMENTS.md documents.
cargo run --release -q -p surveyor-bench --bin bench -- \
    scale --quick --assert-scaling --scaling-tolerance 0.5 \
    --out artifacts/scale_smoke.json > /dev/null
for key in '"schema_version"' '"host_cpus"' '"timing"' \
           '"generation"' '"extraction"' '"model"' '"group"' \
           '"documents_identical"' '"statements_identical"' \
           '"decided_pairs_identical"' '"groups_identical"' \
           '"assert_scaling"' '"verdict"' \
           '"hits"' '"global_lookups"'; do
    grep -q "$key" artifacts/scale_smoke.json \
        || { echo "scale_smoke.json missing $key" >&2; exit 1; }
done

# Snapshot gate: the binary wire format round-trips the mined world.
# `snapshot` mines a preset and writes both the binary snapshot and the
# store JSON; `load` reconstructs the store from the snapshot alone; the
# two JSON files must be byte-identical (FORMAT.md's determinism goal).
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    snapshot --preset cities --seed 5 --rho 40 --shards 2 \
    --out artifacts/world.swire --store artifacts/mined_store.json > /dev/null
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    load --snapshot artifacts/world.swire --out artifacts/loaded_store.json > /dev/null
cmp artifacts/mined_store.json artifacts/loaded_store.json \
    || { echo "snapshot round trip is not byte-identical" >&2; exit 1; }

# Corrupt snapshots must surface as invalid input (exit 3), never crash.
head -c 100 artifacts/world.swire > artifacts/truncated.swire
rc=0
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    load --snapshot artifacts/truncated.swire > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] \
    || { echo "truncated snapshot: expected exit 3, got $rc" >&2; exit 1; }

# Snapshot bench smoke: quick encode/decode throughput with the
# load-vs-remine speedup floor and byte-identity verdict armed.
cargo run --release -q -p surveyor-bench --bin bench -- \
    snapshot --quick --assert-speedup 5 \
    --out artifacts/snapshot_smoke.json > /dev/null
for key in '"schema_version"' '"format_version"' '"snapshot_bytes"' \
           '"encode_mb_s"' '"decode_mb_s"' \
           '"speedup_load_vs_remine"' '"byte_identical"'; do
    grep -q "$key" artifacts/snapshot_smoke.json \
        || { echo "snapshot_smoke.json missing $key" >&2; exit 1; }
done
