#!/usr/bin/env bash
# Full verification gate: the tier-1 build+test pass (ROADMAP.md) plus the
# lint gates. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
