#!/usr/bin/env bash
# Full verification gate: the tier-1 build+test pass (ROADMAP.md) plus the
# lint gates. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Static-analysis gate: surveyor-lint enforces the determinism and
# panic-freedom invariants — token rules plus the flow-aware call-graph
# rules (DESIGN.md §6e) — over the whole workspace, itself included
# (its deliberately-violating fixture workspace is excluded by
# lint.toml). Exit 1 = findings, 2 = config error; the JSON report is
# archived next to the repro artifacts either way. The gate runs the
# parallel path with the incremental cache under artifacts/, then pins
# the schema-v2 report keys and asserts the report does not move a byte
# across worker counts (the determinism the cache and the claim-cursor
# pool both promise).
mkdir -p artifacts
cargo run --release -q -p surveyor-lint -- \
    --workers 4 --cache artifacts/lint_cache.json \
    --json-out artifacts/lint_report.json
for key in '"version": 2' '"ruleset_version": 2' '"files_scanned"' \
           '"findings"'; do
    grep -q "$key" artifacts/lint_report.json \
        || { echo "lint_report.json missing $key" >&2; exit 1; }
done
for workers in 1 2 8; do
    cargo run --release -q -p surveyor-lint -- \
        --workers "$workers" --no-cache \
        --json-out "artifacts/lint_report_w${workers}.json"
    cmp -s artifacts/lint_report.json "artifacts/lint_report_w${workers}.json" \
        || { echo "lint report differs at $workers workers" >&2; exit 1; }
    rm -f "artifacts/lint_report_w${workers}.json"
done

# Chaos gate: the fault-injection suite under a seeded fault plan. The
# seed selects which shards panic/fail (FaultPlan::from_seed); the suite
# asserts the run's coverage accounting matches the plan's predictions.
SURVEYOR_CHAOS_SEED="${SURVEYOR_CHAOS_SEED:-2015}" cargo test -q --test fault_injection

# Bench smoke: the thread-scaling harness on its quick preset, with the
# scaling-regression gate armed (nonzero exit on a phase that regresses
# past its target curve; the permissive tolerance absorbs the noise of a
# shared 1-CPU CI host). The bench binary validates the artifact schema
# before writing; the greps below are a second line of defense pinning
# the keys EXPERIMENTS.md documents.
cargo run --release -q -p surveyor-bench --bin bench -- \
    scale --quick --assert-scaling --scaling-tolerance 0.5 \
    --out artifacts/scale_smoke.json > /dev/null
for key in '"schema_version"' '"host_cpus"' '"timing"' \
           '"generation"' '"extraction"' '"model"' '"group"' \
           '"documents_identical"' '"statements_identical"' \
           '"decided_pairs_identical"' '"groups_identical"' \
           '"assert_scaling"' '"verdict"' \
           '"hits"' '"global_lookups"'; do
    grep -q "$key" artifacts/scale_smoke.json \
        || { echo "scale_smoke.json missing $key" >&2; exit 1; }
done

# Snapshot gate: the binary wire format round-trips the mined world.
# `snapshot` mines a preset and writes both the binary snapshot and the
# store JSON; `load` reconstructs the store from the snapshot alone; the
# two JSON files must be byte-identical (FORMAT.md's determinism goal).
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    snapshot --preset cities --seed 5 --rho 40 --shards 2 \
    --out artifacts/world.swire --store artifacts/mined_store.json > /dev/null
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    load --snapshot artifacts/world.swire --out artifacts/loaded_store.json > /dev/null
cmp artifacts/mined_store.json artifacts/loaded_store.json \
    || { echo "snapshot round trip is not byte-identical" >&2; exit 1; }

# Corrupt snapshots must surface as invalid input (exit 3), never crash.
head -c 100 artifacts/world.swire > artifacts/truncated.swire
rc=0
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    load --snapshot artifacts/truncated.swire > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] \
    || { echo "truncated snapshot: expected exit 3, got $rc" >&2; exit 1; }

# Snapshot bench smoke: quick encode/decode throughput with the
# load-vs-remine speedup floor and byte-identity verdict armed.
cargo run --release -q -p surveyor-bench --bin bench -- \
    snapshot --quick --assert-speedup 5 \
    --out artifacts/snapshot_smoke.json > /dev/null
for key in '"schema_version"' '"format_version"' '"snapshot_bytes"' \
           '"encode_mb_s"' '"decode_mb_s"' \
           '"speedup_load_vs_remine"' '"byte_identical"'; do
    grep -q "$key" artifacts/snapshot_smoke.json \
        || { echo "snapshot_smoke.json missing $key" >&2; exit 1; }
done

# Serve gate: boot the fault-hardened query server on the snapshot the
# gate above just mined and drive it over bash's /dev/tcp (no curl in
# the image): a known-answer query (cities/seed 5 is deterministic, so
# the verdict is pinned), a corrupt hot reload that must be rejected
# while queries keep answering on the old generation, and a graceful
# shutdown that must exit 0 with the drain summary printed.
serve_http() { # method path -> full reply on stdout
    exec 3<>"/dev/tcp/127.0.0.1/${SERVE_PORT}"
    printf '%s %s HTTP/1.1\r\nHost: verify\r\n\r\n' "$1" "$2" >&3
    cat <&3
    exec 3<&- 3>&-
}
rm -f artifacts/serve_gate.log
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    serve --snapshot artifacts/world.swire --addr 127.0.0.1:0 \
    > artifacts/serve_gate.log &
SERVE_JOB=$!
SERVE_PORT=""
for _ in $(seq 1 100); do
    SERVE_PORT=$(sed -n 's|.*http://127\.0\.0\.1:\([0-9][0-9]*\).*|\1|p' \
        artifacts/serve_gate.log | head -n 1)
    [ -n "$SERVE_PORT" ] && break
    sleep 0.1
done
[ -n "$SERVE_PORT" ] || { echo "serve gate: server did not boot" >&2; exit 1; }
serve_http GET '/decide/Los%20Angeles/big' | grep -q '"positive": true' \
    || { echo "serve gate: known-answer query failed" >&2; exit 1; }
serve_http POST "/ctl/reload?path=artifacts/truncated.swire" | grep -q '^HTTP/1.1 422' \
    || { echo "serve gate: corrupt reload was not rejected" >&2; exit 1; }
serve_http GET '/decide/Los%20Angeles/big' | grep -q '"positive": true' \
    || { echo "serve gate: query failed after rejected reload" >&2; exit 1; }
serve_http GET /readyz | grep -q '"generation": 1' \
    || { echo "serve gate: rejected reload bumped the generation" >&2; exit 1; }
serve_http POST /ctl/shutdown | grep -q '"shutting_down": true' \
    || { echo "serve gate: shutdown request failed" >&2; exit 1; }
wait "$SERVE_JOB" \
    || { echo "serve gate: server exited nonzero" >&2; exit 1; }
grep -q 'server stopped' artifacts/serve_gate.log \
    || { echo "serve gate: missing drain summary" >&2; exit 1; }
rm -f artifacts/serve_gate.log  # transient (carries an ephemeral port)

# Serve bench smoke: quick throughput sweep plus the seeded chaos phase
# with its invariants armed — every valid query answered correctly
# throughout the fault mix, every corrupt reload rejected, overload
# sheds with Retry-After, graceful shutdown completes. The greps pin
# the keys EXPERIMENTS.md documents.
cargo run --release -q -p surveyor-bench --bin bench -- \
    serve --quick --assert-chaos --out artifacts/serve_smoke.json > /dev/null
for key in '"schema_version"' '"throughput"' '"qps"' '"p50_ms"' '"p99_ms"' \
           '"chaos"' '"all_valid_answered"' '"corrupt_reloads_rejected"' \
           '"shed_503"' '"accepted_reload"' '"graceful_shutdown"'; do
    grep -q "$key" artifacts/serve_smoke.json \
        || { echo "serve_smoke.json missing $key" >&2; exit 1; }
done

# Lint bench smoke: the linter's own throughput harness with the cache
# invariants armed — the warm run must reuse at least 90% of unchanged
# files, beat the cold run, and produce byte-identical findings at
# every worker width. The greps pin the keys EXPERIMENTS.md documents.
cargo run --release -q -p surveyor-bench --bin bench -- \
    lint --quick --assert-cache --out artifacts/lint_smoke.json > /dev/null
for key in '"schema_version"' '"ruleset_version"' '"files_scanned"' \
           '"workers"' '"parallel_speedup"' '"identical_across_workers"' \
           '"cache"' '"reuse_fraction"' '"warm_speedup"' \
           '"identical_to_cold"'; do
    grep -q "$key" artifacts/lint_smoke.json \
        || { echo "lint_smoke.json missing $key" >&2; exit 1; }
done

# Incremental gate: delta ingestion must land exactly where from-scratch
# mining lands. Mine a 3-of-4-shard base with incremental state recorded,
# ingest the remaining shard with `update`, and demand the result is
# byte-identical (`cmp`) to mining all 4 shards from scratch with the
# same state bookkeeping. A second `update` must find nothing to ingest
# and leave the snapshot untouched.
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    snapshot --preset cities --seed 5 --rho 40 --shards 4 --ingest-shards 3 \
    --out artifacts/incr_base.swire > /dev/null
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    update --snapshot artifacts/incr_base.swire --delta-preset cities-tail \
    --seed 5 --out artifacts/incr_updated.swire > /dev/null
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    snapshot --preset cities --seed 5 --rho 40 --shards 4 --ingest-shards 4 \
    --out artifacts/incr_scratch.swire > /dev/null
cmp artifacts/incr_updated.swire artifacts/incr_scratch.swire \
    || { echo "incremental update is not byte-identical to from-scratch" >&2; exit 1; }
cargo run --release -q -p surveyor-cli --bin surveyor -- \
    update --snapshot artifacts/incr_updated.swire --delta-preset cities-tail \
    --seed 5 --out artifacts/incr_idempotent.swire > /dev/null
cmp artifacts/incr_updated.swire artifacts/incr_idempotent.swire \
    || { echo "empty-delta update is not idempotent" >&2; exit 1; }
rm -f artifacts/incr_base.swire artifacts/incr_updated.swire \
    artifacts/incr_scratch.swire artifacts/incr_idempotent.swire

# Incremental bench smoke: the delta-scaling harness on its quick preset
# with the scaling assertions armed — <=10% deltas at least 5x faster
# than from-scratch, every update byte-identical at every thread count,
# and the chaos replay queue converging to the clean bytes. The greps
# pin the keys EXPERIMENTS.md documents.
cargo run --release -q -p surveyor-bench --bin bench -- \
    incremental --quick --assert-delta-scaling \
    --out artifacts/incremental_smoke.json > /dev/null
for key in '"schema_version"' '"from_scratch_seconds"' '"delta_sweep"' \
           '"speedup_vs_scratch"' '"byte_identical"' '"corpus_sweep"' \
           '"update_fraction_of_scratch"' '"determinism"' \
           '"byte_identical_all_threads"' '"byte_identical_after_replay"' \
           '"warm_seeded"' '"decisions_identical"'; do
    grep -q "$key" artifacts/incremental_smoke.json \
        || { echo "incremental_smoke.json missing $key" >&2; exit 1; }
done
