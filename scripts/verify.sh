#!/usr/bin/env bash
# Full verification gate: the tier-1 build+test pass (ROADMAP.md) plus the
# lint gates. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Chaos gate: the fault-injection suite under a seeded fault plan. The
# seed selects which shards panic/fail (FaultPlan::from_seed); the suite
# asserts the run's coverage accounting matches the plan's predictions.
SURVEYOR_CHAOS_SEED="${SURVEYOR_CHAOS_SEED:-2015}" cargo test -q --test fault_injection
