//! Offline shim for the `rand` crate covering the surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, the `Rng` extension
//! trait (`gen`, `gen_bool`, `gen_range`), and `seq::SliceRandom`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream rand's ChaCha12, but every call is deterministic
//! for a given seed, which is the property the workspace relies on.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators; only `seed_from_u64` is exercised here.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from all bits ("standard"
/// distribution). Floats sample uniformly from `[0, 1)`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is at most
                // span/2^64 which is irrelevant for corpus synthesis.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as i128) + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = ((end as i128) - (start as i128) + 1) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((start as i128) + hi as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution for `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers: in-place shuffle and random element choice.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let k = rng.gen_range(0..7usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = rng.gen_range(90.0..650.0_f64);
            assert!((90.0..650.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&rate), "rate={rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements should not shuffle to identity");
    }
}
