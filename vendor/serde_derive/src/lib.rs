//! Offline shim for `serde_derive`: generates impls of the value-tree
//! `Serialize`/`Deserialize` traits from the sibling `serde` shim.
//!
//! Written against `proc_macro` alone (no `syn`/`quote`, which cannot be
//! fetched offline). The parser handles exactly the item shapes in this
//! workspace: non-generic structs (named, tuple, unit) and enums with
//! unit/tuple/struct variants, plus the `#[serde(skip)]`,
//! `#[serde(default)]`, and `#[serde(with = "module")]` field attributes.
//! Enum representation is externally tagged, matching real serde's
//! default. `default` mirrors real serde: a key absent from the input
//! object falls back to `Default::default()`, which is what lets a
//! versioned schema grow trailing fields without breaking old artifacts.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
    with: Option<String>,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    gen_serialize(&name, &body)
        .parse()
        .expect("serde shim: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    gen_deserialize(&name, &body)
        .parse()
        .expect("serde shim: generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Body) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim: generic type `{name}` is not supported");
    }

    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let parts = split_top_commas(&g.stream().into_iter().collect::<Vec<_>>());
                Body::TupleStruct(parts.len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde shim: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim: cannot derive for `{other}` items"),
    };
    (name, body)
}

/// Advances past outer attributes (`#[...]`, including doc comments) and a
/// `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Splits a token list on commas at angle-bracket depth zero. Parenthesized
/// and bracketed groups are opaque `TokenTree::Group`s, so only `<...>`
/// nesting needs explicit tracking.
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(t.clone());
    }
    if parts.last().is_some_and(Vec::is_empty) {
        parts.pop();
    }
    parts
}

/// Reads `#[serde(...)]` markers off the front of a field/variant token
/// list, returning (skip, default, with) and the index of the first
/// non-attribute, non-visibility token.
fn parse_field_attrs(tokens: &[TokenTree]) -> (bool, bool, Option<String>, usize) {
    let mut skip = false;
    let mut default = false;
    let mut with = None;
    let mut i = 0;
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(attr)) = tokens.get(i + 1) {
            let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
            if is_serde {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let args: Vec<TokenTree> = args.stream().into_iter().collect();
                    match args.first() {
                        Some(TokenTree::Ident(id)) if id.to_string() == "skip" => skip = true,
                        Some(TokenTree::Ident(id)) if id.to_string() == "default" => default = true,
                        Some(TokenTree::Ident(id)) if id.to_string() == "with" => {
                            match args.get(2) {
                                Some(TokenTree::Literal(lit)) => {
                                    let s = lit.to_string();
                                    with = Some(s.trim_matches('"').to_string());
                                }
                                other => panic!(
                                    "serde shim: expected `with = \"module\"`, found {other:?}"
                                ),
                            }
                        }
                        other => {
                            panic!("serde shim: unsupported serde attribute: {other:?}")
                        }
                    }
                }
            }
        } else {
            panic!("serde shim: malformed attribute");
        }
        i += 2;
    }
    // visibility
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    (skip, default, with, i)
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_commas(&tokens)
        .iter()
        .map(|part| {
            let (skip, default, with, i) = parse_field_attrs(part);
            let name = match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim: expected field name, found {other:?}"),
            };
            Field {
                name,
                skip,
                default,
                with,
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_commas(&tokens)
        .iter()
        .map(|part| {
            let (skip, default, with, i) = parse_field_attrs(part);
            assert!(
                !skip && !default && with.is_none(),
                "serde shim: serde attributes on enum variants are not supported"
            );
            let name = match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim: expected variant name, found {other:?}"),
            };
            let kind = match part.get(i + 1) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = split_top_commas(&g.stream().into_iter().collect::<Vec<_>>()).len();
                    VariantKind::Tuple(n)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                other => panic!("serde shim: unexpected variant body: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---- code generation -------------------------------------------------------

fn ser_field_expr(field: &Field, access: &str) -> String {
    match &field.with {
        Some(path) => format!("{path}::to_value(&{access})"),
        None => format!("::serde::Serialize::to_value(&{access})"),
    }
}

/// The expression rebuilding one named field from the object bound to
/// `map`. `skip` fields never read the input; `default` fields fall back
/// to `Default::default()` when the key is absent (real serde's
/// `#[serde(default)]`), so newer schemas can read older artifacts.
fn de_field_expr(field: &Field, map: &str) -> String {
    if field.skip {
        return "::std::default::Default::default()".to_string();
    }
    let name = &field.name;
    let parse = |source: &str| match &field.with {
        Some(path) => format!("{path}::from_value({source}).map_err(|e| e.in_field(\"{name}\"))?"),
        None => format!(
            "::serde::Deserialize::from_value({source}).map_err(|e| e.in_field(\"{name}\"))?"
        ),
    };
    if field.default {
        format!(
            "match {map}.get(\"{name}\") {{\n\
             ::std::option::Option::Some(field_value) => {},\n\
             ::std::option::Option::None => ::std::default::Default::default(),\n}}",
            parse("field_value")
        )
    } else {
        parse(&format!(
            "{map}.get(\"{name}\").unwrap_or(&::serde::Value::Null)"
        ))
    }
}

fn gen_serialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::NamedStruct(fields) => {
            let mut code = String::from("let mut obj = ::serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                let expr = ser_field_expr(f, &format!("self.{}", f.name));
                code.push_str(&format!(
                    "obj.insert(::std::string::String::from(\"{}\"), {expr});\n",
                    f.name
                ));
            }
            code.push_str("::serde::Value::Object(obj)");
            code
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut obj = ::serde::Map::new();\n\
                             obj.insert(::std::string::String::from(\"{vn}\"), {inner});\n\
                             ::serde::Value::Object(obj)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut fields = ::serde::Map::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            let expr = ser_field_expr(f, &f.name);
                            inner.push_str(&format!(
                                "fields.insert(::std::string::String::from(\"{}\"), {expr});\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n{inner}\
                             let mut obj = ::serde::Map::new();\n\
                             obj.insert(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(fields));\n\
                             ::serde::Value::Object(obj)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body_code}\n}}\n}}\n"
    )
}

fn gen_deserialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{}: {},\n", f.name, de_field_expr(f, "obj")));
            }
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\", v))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\", v))?;\n\
                 if items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(format!(\"expected {n} elements for {name}, found {{}}\", items.len())));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{vn}\", inner))?;\n\
                             if items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(format!(\"expected {n} elements for {name}::{vn}, found {{}}\", items.len())));\n}}\n\
                             return ::std::result::Result::Ok({name}::{vn}({}));\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{}: {},\n",
                                f.name,
                                de_field_expr(f, "fields")
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let fields = inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{vn}\", inner))?;\n\
                             return ::std::result::Result::Ok({name}::{vn} {{\n{inits}}});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(tag) = v.as_str() {{\n\
                 match tag {{\n{unit_arms}\
                 other => return ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n\
                 if let ::std::option::Option::Some(obj) = v.as_object() {{\n\
                 if obj.len() == 1 {{\n\
                 let (tag, inner) = obj.iter().next().unwrap();\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => return ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::expected(\"externally tagged enum\", \"{name}\", v))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body_code}\n}}\n}}\n"
    )
}
