//! Offline shim for `parking_lot`: the same panic-free `lock()` API,
//! backed by `std::sync` primitives (poisoning is absorbed — a poisoned
//! std lock yields its inner guard, matching parking_lot's behavior of
//! not poisoning at all).

use std::sync;

pub use guards::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RwLock with parking_lot's non-poisoning `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

mod guards {
    /// Guard types re-exported with parking_lot's names.
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(2);
        *m.lock() += 3;
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
