//! Recursive-descent JSON parser producing the serde shim's `Value` tree.

use serde::value::{Map, Number, Value};
use serde::Error;

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut obj = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(obj));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            obj.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(obj));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: expect \uXXXX low half
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 leaves pos past the digits; undo the +1 below
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole run up to the next quote or escape in
                    // one go: validating byte-by-byte from `pos` to the end
                    // of input would make parsing quadratic. UTF-8
                    // continuation bytes are >= 0x80, so scanning for the
                    // ASCII delimiters cannot split a multibyte scalar.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
