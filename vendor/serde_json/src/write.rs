//! JSON text rendering: compact and two-space-indented pretty forms.

use serde::value::{Number, Value};

pub fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

pub fn pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(obj) => {
            if obj.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match n {
        Number::PosInt(v) => write!(out, "{v}").unwrap(),
        Number::NegInt(v) => write!(out, "{v}").unwrap(),
        Number::Float(f) if f.is_finite() => {
            // Rust's shortest-round-trip float formatting; integral floats
            // keep a `.0` so the value re-parses as a float.
            if f.fract() == 0.0 && f.abs() < 1e16 {
                write!(out, "{f:.1}").unwrap();
            } else {
                write!(out, "{f}").unwrap();
            }
        }
        // serde_json maps non-finite floats to null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
