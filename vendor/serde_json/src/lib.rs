//! Offline shim for `serde_json`: renders and parses the `serde` shim's
//! [`Value`] tree as JSON text. Covers `to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, the `json!` macro, and the `Value`/`Map`/
//! `Number`/`Error` names dependents import.

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

mod parse;
mod write;

/// Converts any serializable value into a [`Value`] tree.
///
/// Returns `Result` for signature compatibility with real `serde_json`;
/// the value-tree shim cannot fail.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(write::compact(&value.to_value()))
}

/// Serializes to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(write::pretty(&value.to_value()))
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(json: &str) -> Result<T, Error> {
    let value = parse::parse(json)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from a JSON-ish literal. Object values and array
/// elements are arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut obj = $crate::Map::new();
        $( obj.insert(::std::string::String::from($key), $crate::to_value(&$value).expect("json! value")); )*
        $crate::Value::Object(obj)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem).expect("json! value") ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = json!({
            "name": "surveyor",
            "count": 3,
            "share": 0.25,
            "flags": [true, false],
            "missing": Option::<u32>::None,
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"a": [1, 2]});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": [\n    1,\n    2\n  ]"), "{text}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_keep_integer_identity() {
        let text = to_string(&json!({"big": u64::MAX, "neg": -5, "f": 1.5})).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.get("big").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back.get("neg").unwrap().as_i64(), Some(-5));
        assert_eq!(back.get("f").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} extra").is_err());
        assert!(from_str::<Value>("{,}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""Aé 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé 😀"));
    }
}
