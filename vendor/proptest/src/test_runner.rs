//! Test execution: config, runner, error type, and the exported macros.

use crate::rng::TestRng;

/// Subset of real proptest's config: the number of cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "assertion failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "case rejected: {msg}"),
        }
    }
}

/// Drives one property: a deterministic RNG stream seeded from the test
/// name, advanced once per case.
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the name: stable across runs and rustc versions.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: TestRng::seed_from_u64(seed),
            cases: config.cases,
        }
    }

    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                let cases = runner.cases();
                for case in 0..cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg =
                                    $crate::strategy::Strategy::sample(&$strat, runner.rng());
                            )*
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err(e) => {
                            panic!("proptest {} failed on case {case}/{cases}: {e}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Like `assert!` but returns a `TestCaseError` so the runner can report
/// the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Not routed through format!: stringify!($cond) may contain braces.
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("condition false: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` but returns a `TestCaseError`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "{:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
