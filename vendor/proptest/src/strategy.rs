//! The `Strategy` trait and the combinators this workspace uses.

use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe so `prop_oneof!` can mix differently-typed strategies that
/// agree on `Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes drawn values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Boxes a strategy for use in heterogeneous unions (`prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

// ---- numeric ranges --------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = ((hi as i128) - (lo as i128) + 1) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

// ---- string strategies -----------------------------------------------------

/// A `&str` literal is a regex strategy producing matching `String`s.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::regex::sample(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::regex::sample(self, rng)
    }
}

// ---- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
