//! Mini regex *sampler*: parses the small pattern dialect used in this
//! workspace's string strategies and generates matching strings.
//!
//! Supported syntax: literal characters, `\`-escapes, character classes
//! with ranges (`[a-zA-Z ]`), groups `( ... )`, alternation `|` inside
//! groups or at top level, and the quantifiers `?`, `*`, `+`, `{n}`,
//! `{m,n}`. Unbounded repetition is capped at 8.

use crate::rng::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    /// Alternation between sequences.
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, u32, u32),
}

/// Generates one string matching `pattern`.
pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let alts = parse_alternation(&chars, &mut pos, pattern);
    assert!(
        pos == chars.len(),
        "proptest shim: unsupported regex `{pattern}` (stopped at {pos})"
    );
    let mut out = String::new();
    emit(&Node::Group(alts), rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.below(total as usize) as u32;
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick).expect("class range is valid"));
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick within total");
        }
        Node::Group(alts) => {
            let seq = &alts[rng.below(alts.len())];
            for n in seq {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = *lo + rng.below((*hi - *lo + 1) as usize) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

/// Parses alternatives until end of input or an unmatched `)`.
fn parse_alternation(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Vec<Node>> {
    let mut alts = vec![Vec::new()];
    while *pos < chars.len() {
        match chars[*pos] {
            ')' => break,
            '|' => {
                *pos += 1;
                alts.push(Vec::new());
            }
            _ => {
                let node = parse_one(chars, pos, pattern);
                let node = parse_quantifier(chars, pos, node, pattern);
                alts.last_mut().unwrap().push(node);
            }
        }
    }
    alts
}

fn parse_one(chars: &[char], pos: &mut usize, pattern: &str) -> Node {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            let mut ranges = Vec::new();
            assert!(
                chars.get(*pos) != Some(&'^'),
                "proptest shim: negated classes unsupported in `{pattern}`"
            );
            while *pos < chars.len() && chars[*pos] != ']' {
                let lo = chars[*pos];
                *pos += 1;
                if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
                    let hi = chars[*pos + 1];
                    assert!(lo <= hi, "proptest shim: bad class range in `{pattern}`");
                    ranges.push((lo, hi));
                    *pos += 2;
                } else {
                    ranges.push((lo, lo));
                }
            }
            assert!(
                chars.get(*pos) == Some(&']'),
                "proptest shim: unterminated class in `{pattern}`"
            );
            *pos += 1;
            Node::Class(ranges)
        }
        '(' => {
            *pos += 1;
            let alts = parse_alternation(chars, pos, pattern);
            assert!(
                chars.get(*pos) == Some(&')'),
                "proptest shim: unterminated group in `{pattern}`"
            );
            *pos += 1;
            Node::Group(alts)
        }
        '\\' => {
            *pos += 1;
            let c = *chars
                .get(*pos)
                .unwrap_or_else(|| panic!("proptest shim: trailing escape in `{pattern}`"));
            *pos += 1;
            match c {
                'd' => Node::Class(vec![('0', '9')]),
                'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                's' => Node::Literal(' '),
                other => Node::Literal(other),
            }
        }
        '.' => {
            *pos += 1;
            Node::Class(vec![(' ', '~')])
        }
        c => {
            assert!(
                !matches!(c, '*' | '+' | '?' | '{'),
                "proptest shim: dangling quantifier in `{pattern}`"
            );
            *pos += 1;
            Node::Literal(c)
        }
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, node: Node, pattern: &str) -> Node {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Node::Repeat(Box::new(node), 0, 1)
        }
        Some('*') => {
            *pos += 1;
            Node::Repeat(Box::new(node), 0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *pos += 1;
            Node::Repeat(Box::new(node), 1, UNBOUNDED_CAP)
        }
        Some('{') => {
            *pos += 1;
            let mut lo = 0u32;
            while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                lo = lo * 10 + chars[*pos].to_digit(10).unwrap();
                *pos += 1;
            }
            let hi = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                let mut hi = 0u32;
                let mut saw_digit = false;
                while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                    hi = hi * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                    saw_digit = true;
                }
                if saw_digit {
                    hi
                } else {
                    lo + UNBOUNDED_CAP
                }
            } else {
                lo
            };
            assert!(
                chars.get(*pos) == Some(&'}'),
                "proptest shim: unterminated quantifier in `{pattern}`"
            );
            *pos += 1;
            assert!(
                lo <= hi,
                "proptest shim: bad quantifier bounds in `{pattern}`"
            );
            Node::Repeat(Box::new(node), lo, hi)
        }
        _ => node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(7)
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample("[a-z]{2,12}", &mut r);
            assert!((2..=12).contains(&s.chars().count()), "{s}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s}");
        }
    }

    #[test]
    fn optional_group_with_space() {
        let mut r = rng();
        let mut with_space = 0;
        for _ in 0..200 {
            let s = sample("[A-Z][a-z]{1,10}( [A-Z][a-z]{1,10})?", &mut r);
            assert!(s.chars().next().unwrap().is_ascii_uppercase(), "{s}");
            if s.contains(' ') {
                with_space += 1;
                let (a, b) = s.split_once(' ').unwrap();
                assert!(!a.is_empty() && b.chars().next().unwrap().is_ascii_uppercase());
            }
        }
        assert!(with_space > 20, "optional arm never taken");
    }

    #[test]
    fn class_with_literal_space() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample("[a-zA-Z ]{0,30}", &mut r);
            assert!(s.chars().count() <= 30);
            assert!(
                s.chars().all(|c| c.is_ascii_alphabetic() || c == ' '),
                "{s}"
            );
        }
    }

    #[test]
    fn alternation_and_unbounded() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample("(ab|cd)+x*", &mut r);
            assert!(!s.is_empty());
        }
    }
}
