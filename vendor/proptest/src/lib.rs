//! Offline shim for `proptest`, covering the surface this workspace uses:
//! the `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_oneof!` macros,
//! the [`strategy::Strategy`] trait with `prop_map`, `Just`, numeric range
//! strategies, `&str` regex strategies, `prop::bool::ANY`, and
//! `prop::collection::{vec, hash_set}`.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! the formatted assertion message), and case generation is seeded from the
//! test name, so runs are deterministic.

pub mod regex;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*` — everything the test files reference.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The `prop::` namespace (`prop::bool::ANY`, `prop::collection::vec`, ...).
pub mod prop {
    pub mod bool {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;

        /// Strategy yielding uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    pub mod collection {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        use std::collections::HashSet;
        use std::hash::Hash;

        /// Collection size specification: `a..b`, `a..=b`, or an exact size.
        pub trait IntoSizeRange {
            /// Inclusive (min, max) bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty proptest size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        fn sample_len(rng: &mut TestRng, bounds: (usize, usize)) -> usize {
            let (lo, hi) = bounds;
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }

        /// Strategy for `Vec<S::Value>` with length in `size`.
        pub struct VecStrategy<S> {
            element: S,
            bounds: (usize, usize),
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            VecStrategy {
                element,
                bounds: size.bounds(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = sample_len(rng, self.bounds);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Strategy for `HashSet<S::Value>` with size in `size` (best
        /// effort: duplicate draws are retried a bounded number of times).
        pub struct HashSetStrategy<S> {
            element: S,
            bounds: (usize, usize),
        }

        /// `prop::collection::hash_set(element, size)`.
        pub fn hash_set<S>(element: S, size: impl IntoSizeRange) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            HashSetStrategy {
                element,
                bounds: size.bounds(),
            }
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            type Value = HashSet<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let target = sample_len(rng, self.bounds);
                let mut out = HashSet::with_capacity(target);
                let mut attempts = 0usize;
                while out.len() < target && attempts < target * 20 + 20 {
                    out.insert(self.element.sample(rng));
                    attempts += 1;
                }
                out
            }
        }
    }
}
