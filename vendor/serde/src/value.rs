//! The JSON-shaped value tree both serde traits run through.

/// Object representation: sorted keys for deterministic rendering.
pub type Map = std::collections::BTreeMap<String, Value>;

/// A JSON number: unsigned / signed / float, like `serde_json::Number`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Lossy view as `f64`.
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(n) => *n as f64,
            Number::NegInt(n) => *n as f64,
            Number::Float(f) => *f,
        }
    }

    /// Exact view as `u64` when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(*n),
            Number::NegInt(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Exact view as `i64` when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            Number::NegInt(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parsed or constructed JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(obj) => Some(obj),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` elsewhere (like `serde_json`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(obj) => obj.get(key),
            _ => None,
        }
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`: member access, `Null` when absent (like `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}
