//! Offline shim for `serde`: a value-tree serialization framework.
//!
//! Instead of real serde's visitor architecture, both traits go through a
//! JSON-shaped [`Value`] tree: `Serialize::to_value` builds one and
//! `Deserialize::from_value` reads one. The `serde_derive` shim generates
//! impls against exactly this surface, and the `serde_json` shim renders
//! and parses the tree. External tagging for enums matches real serde, so
//! serialized artifacts keep familiar JSON shapes.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

/// Serialization/deserialization error: a message plus a reverse field path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// "expected X while deserializing Y, found Z".
    pub fn expected(what: &str, ctx: &str, found: &Value) -> Self {
        Error {
            msg: format!(
                "expected {what} while deserializing {ctx}, found {}",
                found.kind()
            ),
        }
    }

    /// Prefixes the message with the field currently being deserialized.
    pub fn in_field(self, name: &str) -> Self {
        Error {
            msg: format!("{name}: {}", self.msg),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(Number::PosInt(n)) => *n,
                    Value::Number(Number::NegInt(n)) if *n >= 0 => *n as u64,
                    Value::Number(Number::Float(f))
                        if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
                    {
                        *f as u64
                    }
                    other => {
                        return Err(Error::expected("unsigned integer", stringify!($t), other))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Number(Number::PosInt(n)) if *n <= i64::MAX as u64 => *n as i64,
                    Value::Number(Number::NegInt(n)) => *n,
                    Value::Number(Number::Float(f))
                        if f.fract() == 0.0
                            && *f >= i64::MIN as f64
                            && *f <= i64::MAX as f64 =>
                    {
                        *f as i64
                    }
                    other => return Err(Error::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::expected("number", "f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64() as f32),
            other => Err(Error::expected("number", "f32", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", "char", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($len:literal: $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected(
                        concat!("array of length ", $len),
                        "tuple",
                        other,
                    )),
                }
            }
        }
    };
}

impl_tuple!(2: A.0, B.1);
impl_tuple!(3: A.0, B.1, C.2);
impl_tuple!(4: A.0, B.1, C.2, D.3);

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        // Sorted for deterministic output regardless of hasher state.
        let mut obj = Map::new();
        for (k, v) in self {
            obj.insert(k.clone(), v.to_value());
        }
        Value::Object(obj)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(obj) => obj
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", "HashMap", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut obj = Map::new();
        for (k, v) in self {
            obj.insert(k.clone(), v.to_value());
        }
        Value::Object(obj)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(obj) => obj
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", "BTreeMap", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn integral_float_deserializes_as_int() {
        // A writer may print `1.0` as `1`; numeric targets accept either.
        let v = Value::Number(Number::PosInt(3));
        assert_eq!(f64::from_value(&v).unwrap(), 3.0);
        let v = Value::Number(Number::Float(3.0));
        assert_eq!(u32::from_value(&v).unwrap(), 3);
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![(1usize, 2.5f64), (3, 4.5)];
        let back: Vec<(usize, f64)> = Deserialize::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);

        let opt: Option<Vec<u8>> = Some(vec![1, 2]);
        let back: Option<Vec<u8>> = Deserialize::from_value(&opt.to_value()).unwrap();
        assert_eq!(back, opt);

        let none: Option<u8> = None;
        assert_eq!(none.to_value(), Value::Null);
    }

    #[test]
    fn out_of_range_errors() {
        let v = 300u64.to_value();
        assert!(u8::from_value(&v).is_err());
        let v = (-1i64).to_value();
        assert!(u32::from_value(&v).is_err());
    }
}
