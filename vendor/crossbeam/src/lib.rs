//! Offline shim for the `crossbeam` crate, covering the scoped-thread
//! surface this workspace uses: `crossbeam::scope(|s| { s.spawn(|_| ...) })`
//! returning `thread::Result<R>`. Backed by `std::thread::scope`, which
//! provides the same structured-concurrency guarantee.

pub mod thread {
    use std::any::Any;

    /// Result of a scope run: `Err` holds the payload of the first
    /// panicking closure, matching crossbeam's `thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a reference to the
        /// scope (crossbeam's signature) which may be used for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let handle = inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            });
            ScopedJoinHandle { inner: handle }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All threads are joined before `scope`
    /// returns; the result is `Err` if any unjoined thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_worker_surfaces_as_err() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn scope_returns_closure_value() {
        let result = super::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        });
        assert_eq!(result.unwrap(), 42);
    }
}
