//! Offline shim for `criterion`: the `criterion_group!`/`criterion_main!`
//! macros, `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Throughput`, and
//! `Bencher::iter`, backed by a simple mean-of-samples wall-clock timer.
//!
//! Honors `--bench` (ignored filter args tolerated) and `--test` /
//! `cargo test` invocation: when run as a test (no `--bench` flag),
//! each benchmark executes its closure once so `cargo test` stays fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation: elements or bytes processed per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    measurement_time: Duration,
    quick: bool,
}

impl<'a> Bencher<'a> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            black_box(routine());
            return;
        }
        // One calibration call, then time batches until the measurement
        // budget is spent.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).max(1) as u64;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_batch as u32);
        }
        if self.samples.is_empty() {
            self.samples.push(once);
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Warm-up is folded into the measurement loop; accepted for API parity.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sample count is derived from the time budget; accepted for parity.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run(id.to_string(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher<'_>)) {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            measurement_time: self.measurement_time,
            quick: self.criterion.quick,
        };
        f(&mut bencher);
        if self.criterion.quick {
            println!("test {}/{} ... ok (quick)", self.name, id);
            return;
        }
        report(&self.name, &id, &samples, self.throughput);
    }

    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut nanos: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
    nanos.sort_unstable();
    let mean = nanos.iter().sum::<u128>() / nanos.len() as u128;
    let median = nanos[nanos.len() / 2];
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (mean as f64 / 1e9);
            format!("  thrpt: {per_sec:.0} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (mean as f64 / 1e9) / (1024.0 * 1024.0);
            format!("  thrpt: {per_sec:.1} MiB/s")
        }
        None => String::new(),
    };
    println!(
        "{group}/{id}: mean {}  median {}  ({} samples){extra}",
        fmt_nanos(mean),
        fmt_nanos(median),
        nanos.len()
    );
}

fn fmt_nanos(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// The benchmark driver. `quick` mode (no `--bench` in argv) runs each
/// routine once, which is what `cargo test` does with harness = false
/// benches compiled as tests.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = !std::env::args().any(|a| a == "--bench");
        Criterion { quick }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.quick {
            println!("benchmark group: {name}");
        }
        BenchmarkGroup {
            name,
            criterion: self,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group(id.to_string());
        let mut f = f;
        group.bench_function("bench", &mut f);
        group.finish();
        self
    }

    /// Criterion calls this at the end of `criterion_main!`.
    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
