//! Offline shim for the `rustc-hash` crate.
//!
//! Implements the same FxHash algorithm (multiplicative hashing over
//! machine words) and exports the same `FxHashMap`/`FxHashSet`/`FxHasher`
//! surface so dependents compile unchanged without network access.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A speedy, non-cryptographic hash used throughout rustc.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: usize,
}

const SEED: usize = 0x51_7c_c1_b7_27_22_0a_95usize;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: usize) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const WORD: usize = std::mem::size_of::<usize>();
        let mut bytes = bytes;
        while bytes.len() >= WORD {
            let mut buf = [0u8; WORD];
            buf.copy_from_slice(&bytes[..WORD]);
            self.add_to_hash(usize::from_ne_bytes(buf));
            bytes = &bytes[WORD..];
        }
        if bytes.len() >= 4 && WORD > 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u32::from_ne_bytes(buf) as usize);
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u16::from_ne_bytes(buf) as usize);
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(b as usize);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as usize);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as usize);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as usize);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i as usize);
        if std::mem::size_of::<usize>() < 8 {
            self.add_to_hash((i >> 32) as usize);
        }
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash as u64
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |s: &str| {
            let mut hasher = FxHasher::default();
            hasher.write(s.as_bytes());
            hasher.finish()
        };
        assert_eq!(h("surveyor"), h("surveyor"));
        assert_ne!(h("surveyor"), h("surveyors"));
    }
}
