//! Property-based tests for the evaluation metrics.

use proptest::prelude::*;
use surveyor_eval::Metrics;
use surveyor_model::Decision;

fn decision_strategy() -> impl Strategy<Value = Decision> {
    prop_oneof![
        Just(Decision::Positive),
        Just(Decision::Negative),
        Just(Decision::Unsolved),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn metrics_are_bounded_and_consistent(
        pairs in prop::collection::vec((decision_strategy(), prop::bool::ANY), 0..128),
    ) {
        let decisions: Vec<Decision> = pairs.iter().map(|(d, _)| *d).collect();
        let truths: Vec<bool> = pairs.iter().map(|(_, t)| *t).collect();
        let m = Metrics::score(&decisions, &truths);
        prop_assert!((0.0..=1.0).contains(&m.coverage));
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!(m.correct <= m.solved);
        prop_assert!(m.solved <= m.total);
        prop_assert_eq!(m.total, pairs.len());
        // F1 is the harmonic mean, hence between the two components.
        let lo = m.coverage.min(m.precision);
        let hi = m.coverage.max(m.precision);
        prop_assert!(m.f1 >= lo - 1e-12 && m.f1 <= hi + 1e-12);
    }

    #[test]
    fn flipping_truths_flips_correctness(
        pairs in prop::collection::vec((decision_strategy(), prop::bool::ANY), 1..64),
    ) {
        let decisions: Vec<Decision> = pairs.iter().map(|(d, _)| *d).collect();
        let truths: Vec<bool> = pairs.iter().map(|(_, t)| *t).collect();
        let flipped: Vec<bool> = truths.iter().map(|t| !t).collect();
        let a = Metrics::score(&decisions, &truths);
        let b = Metrics::score(&decisions, &flipped);
        prop_assert_eq!(a.solved, b.solved);
        prop_assert_eq!(a.correct + b.correct, a.solved);
    }

    #[test]
    fn all_unsolved_scores_zero(truths in prop::collection::vec(prop::bool::ANY, 1..32)) {
        let decisions = vec![Decision::Unsolved; truths.len()];
        let m = Metrics::score(&decisions, &truths);
        prop_assert_eq!(m.coverage, 0.0);
        prop_assert_eq!(m.f1, 0.0);
    }
}
