//! Bootstrap confidence intervals for the comparison metrics.
//!
//! The paper reports point estimates over 500 test cases; with ~480
//! tie-free cases the sampling error on a precision of 0.77 is a few
//! points. This module quantifies it: case-level bootstrap resampling of
//! the judged suite, giving percentile confidence intervals for coverage,
//! precision, and F1 per method — so EXPERIMENTS.md can say whether a
//! paper-vs-measured gap is within noise.

use crate::metrics::Metrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use surveyor_model::Decision;

/// A percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
}

impl Interval {
    /// Whether a reference value falls inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lower..=self.upper).contains(&value)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Bootstrap intervals for one method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricIntervals {
    /// Coverage interval.
    pub coverage: Interval,
    /// Precision interval.
    pub precision: Interval,
    /// F1 interval.
    pub f1: Interval,
    /// Number of resamples drawn.
    pub resamples: usize,
}

/// Computes percentile bootstrap intervals (confidence `level`, e.g. 0.95)
/// for decisions scored against reference labels.
///
/// # Panics
/// Panics on empty input, mismatched lengths, zero resamples, or a level
/// outside `(0, 1)`.
pub fn bootstrap_metrics(
    decisions: &[Decision],
    truths: &[bool],
    resamples: usize,
    level: f64,
    seed: u64,
) -> MetricIntervals {
    assert_eq!(decisions.len(), truths.len(), "parallel slices required");
    assert!(!decisions.is_empty(), "bootstrap needs at least one case");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "bad level {level}"
    );

    let point = Metrics::score(decisions, truths);
    let n = decisions.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coverages = Vec::with_capacity(resamples);
    let mut precisions = Vec::with_capacity(resamples);
    let mut f1s = Vec::with_capacity(resamples);
    let mut sample_d = Vec::with_capacity(n);
    let mut sample_t = Vec::with_capacity(n);
    for _ in 0..resamples {
        sample_d.clear();
        sample_t.clear();
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            sample_d.push(decisions[i]);
            sample_t.push(truths[i]);
        }
        let m = Metrics::score(&sample_d, &sample_t);
        coverages.push(m.coverage);
        precisions.push(m.precision);
        f1s.push(m.f1);
    }

    let alpha = (1.0 - level) / 2.0;
    let interval = |samples: &mut Vec<f64>, estimate: f64| {
        samples.sort_by(|a, b| a.total_cmp(b));
        Interval {
            estimate,
            lower: surveyor_prob::percentile_sorted(samples, alpha * 100.0),
            upper: surveyor_prob::percentile_sorted(samples, (1.0 - alpha) * 100.0),
        }
    };
    MetricIntervals {
        coverage: interval(&mut coverages, point.coverage),
        precision: interval(&mut precisions, point.precision),
        f1: interval(&mut f1s, point.f1),
        resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_model::Decision::{Negative, Positive, Unsolved};

    fn fixture(n: usize) -> (Vec<Decision>, Vec<bool>) {
        // 60% solved, 80% of solved correct.
        let mut decisions = Vec::new();
        let mut truths = Vec::new();
        for i in 0..n {
            match i % 10 {
                0..=3 => {
                    decisions.push(Positive);
                    truths.push(true);
                }
                4 => {
                    decisions.push(Positive);
                    truths.push(false);
                }
                5 => {
                    decisions.push(Negative);
                    truths.push(false);
                }
                _ => {
                    decisions.push(Unsolved);
                    truths.push(i % 2 == 0);
                }
            }
        }
        (decisions, truths)
    }

    #[test]
    fn intervals_bracket_the_estimate() {
        let (d, t) = fixture(400);
        let iv = bootstrap_metrics(&d, &t, 300, 0.95, 9);
        for i in [iv.coverage, iv.precision, iv.f1] {
            assert!(i.lower <= i.estimate + 1e-12, "{i:?}");
            assert!(i.upper >= i.estimate - 1e-12, "{i:?}");
            assert!(i.width() > 0.0 && i.width() < 0.3, "{i:?}");
            assert!(i.contains(i.estimate));
        }
        assert_eq!(iv.resamples, 300);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let (d, t) = fixture(200);
        let narrow = bootstrap_metrics(&d, &t, 400, 0.5, 3);
        let wide = bootstrap_metrics(&d, &t, 400, 0.99, 3);
        assert!(wide.precision.width() > narrow.precision.width());
    }

    #[test]
    fn more_cases_give_tighter_intervals() {
        let (d1, t1) = fixture(100);
        let (d2, t2) = fixture(1_000);
        let small = bootstrap_metrics(&d1, &t1, 300, 0.95, 5);
        let large = bootstrap_metrics(&d2, &t2, 300, 0.95, 5);
        assert!(large.precision.width() < small.precision.width());
    }

    #[test]
    fn deterministic_per_seed() {
        let (d, t) = fixture(150);
        assert_eq!(
            bootstrap_metrics(&d, &t, 100, 0.9, 7),
            bootstrap_metrics(&d, &t, 100, 0.9, 7)
        );
    }

    #[test]
    #[should_panic(expected = "at least one case")]
    fn empty_input_panics() {
        let _ = bootstrap_metrics(&[], &[], 10, 0.9, 0);
    }
}
