//! Ablations of Surveyor's design choices.
//!
//! The paper argues for three design decisions (§5.1, §7.5): detecting
//! negations (vs. occurrence-only counting), learning parameters per
//! (type, property) combination (vs. one global model), and the agnostic
//! ½ decision threshold (vs. trading precision for recall). Each ablation
//! disables one choice and rescored the judged suite.

use crate::metrics::Metrics;
use crate::testcases::EvalSuite;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use surveyor::prelude::*;
use surveyor::{CorpusSource, SurveyorOutput};
use surveyor_corpus::{CorpusGenerator, World};
use surveyor_kb::{EntityId, KnowledgeBase, Property};
use surveyor_model::{fit, posterior_positive, ModelParams, ObservedCounts};

/// The ablation artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationReport {
    /// The unablated Surveyor scores (reference).
    pub standard: Metrics,
    /// Negation detection disabled: every statement counted as positive
    /// (the occurrence-only reading of prior work [2, 4, 5]).
    pub negation_blind: Metrics,
    /// One global parameter set fitted over all combinations pooled,
    /// instead of per-combination models.
    ///
    /// Note: the paper justified per-combination modeling through observed
    /// parameter heterogeneity (§7.3) rather than an ablation. On
    /// synthetic worlds, pooling can *win* overall — it borrows statistical
    /// strength and its large pooled `λ++` acts as an implicit
    /// "unmentioned ⇒ negative" prior — while per-combination models are
    /// the only ones that can represent inverted-bias combinations at all.
    /// EXPERIMENTS.md discusses the comparison.
    pub global_params: Metrics,
    /// Standard Surveyor restricted to *inverted-bias* combinations
    /// (`rate_neg* > rate_pos*`, e.g. `calm cities`).
    pub standard_inverted: Metrics,
    /// Negation-blind Surveyor on the inverted-bias subset — where
    /// ignoring negations is most destructive (every complaint reads as
    /// an endorsement).
    pub negation_blind_inverted: Metrics,
    /// Decision-threshold sweep: decide `+` above `τ`, `-` below `1-τ`,
    /// unsolved between — the precision/recall trade of §3.
    pub thresholds: Vec<(f64, Metrics)>,
    /// EM iteration-budget sweep.
    pub em_iterations: Vec<(usize, Metrics)>,
}

/// Per-combination counts aligned with `kb.entities_of_type`.
fn combination_counts(
    output: &SurveyorOutput,
    kb: &KnowledgeBase,
    rho: u64,
) -> Vec<(surveyor_kb::TypeId, Property, Vec<ObservedCounts>)> {
    output
        .grouped
        .above_threshold(rho)
        .map(|(key, group)| {
            let counts: Vec<ObservedCounts> = kb
                .entities_of_type(key.type_id)
                .iter()
                .map(|&e| {
                    let c = group.counts(e);
                    ObservedCounts::new(c.positive, c.negative)
                })
                .collect();
            (key.type_id, key.property.resolve(), counts)
        })
        .collect()
}

/// Scores the suite given a per-pair probability lookup, optionally
/// restricted to a case filter.
fn score_probabilities_filtered(
    suite: &EvalSuite,
    probabilities: &FxHashMap<(EntityId, Property), f64>,
    tau: f64,
    keep: impl Fn(&crate::testcases::EvalCase) -> bool,
) -> Metrics {
    let selected: Vec<&crate::testcases::EvalCase> =
        suite.cases.iter().filter(|c| keep(c)).collect();
    let decisions: Vec<Decision> = selected
        .iter()
        .map(
            |c| match probabilities.get(&(c.entity, c.property.clone())) {
                Some(&p) if p > tau => Decision::Positive,
                Some(&p) if p < 1.0 - tau => Decision::Negative,
                _ => Decision::Unsolved,
            },
        )
        .collect();
    let truths: Vec<bool> = selected.iter().map(|c| c.crowd_majority).collect();
    Metrics::score(&decisions, &truths)
}

/// Scores the suite given a per-pair probability lookup.
fn score_probabilities(
    suite: &EvalSuite,
    probabilities: &FxHashMap<(EntityId, Property), f64>,
    tau: f64,
) -> Metrics {
    score_probabilities_filtered(suite, probabilities, tau, |_| true)
}

/// Probability table from per-combination fits, with an optional count
/// transform (for the negation-blind variant) and EM configuration.
fn probabilities_with(
    combos: &[(surveyor_kb::TypeId, Property, Vec<ObservedCounts>)],
    kb: &KnowledgeBase,
    em: &EmConfig,
    transform: impl Fn(ObservedCounts) -> ObservedCounts,
) -> FxHashMap<(EntityId, Property), f64> {
    let mut probabilities = FxHashMap::default();
    for (type_id, property, counts) in combos {
        let transformed: Vec<ObservedCounts> = counts.iter().map(|&c| transform(c)).collect();
        let fitted = fit(&transformed, em);
        for (&entity, &c) in kb.entities_of_type(*type_id).iter().zip(&transformed) {
            probabilities.insert(
                (entity, property.clone()),
                posterior_positive(c, &fitted.params),
            );
        }
    }
    probabilities
}

/// Probability table from one global fit over all combinations pooled.
fn global_probabilities(
    combos: &[(surveyor_kb::TypeId, Property, Vec<ObservedCounts>)],
    kb: &KnowledgeBase,
    em: &EmConfig,
) -> FxHashMap<(EntityId, Property), f64> {
    let pooled: Vec<ObservedCounts> = combos
        .iter()
        .flat_map(|(_, _, counts)| counts.iter().copied())
        .collect();
    let params: ModelParams = if pooled.is_empty() {
        ModelParams::new(0.8, 1.0, 1.0)
    } else {
        fit(&pooled, em).params
    };
    let mut probabilities = FxHashMap::default();
    for (type_id, property, counts) in combos {
        for (&entity, &c) in kb.entities_of_type(*type_id).iter().zip(counts) {
            probabilities.insert((entity, property.clone()), posterior_positive(c, &params));
        }
    }
    probabilities
}

/// Runs all ablations on one world.
pub fn run_ablations(
    world: &World,
    corpus_config: CorpusConfig,
    surveyor_config: SurveyorConfig,
    panel_seed: u64,
) -> AblationReport {
    let generator = CorpusGenerator::new(world.clone(), corpus_config);
    let surveyor = Surveyor::new(world.kb().clone(), surveyor_config.clone());
    let output = surveyor.run(&CorpusSource::new(&generator));
    let suite = EvalSuite::from_world_limited(world, panel_seed, Some(20));
    let kb = world.kb();
    let combos = combination_counts(&output, kb, surveyor_config.rho);
    let em = &surveyor_config.em;

    let standard_probs = probabilities_with(&combos, kb, em, |c| c);
    let standard = score_probabilities(&suite, &standard_probs, 0.5);

    let blind_probs = probabilities_with(&combos, kb, em, |c| {
        ObservedCounts::new(c.positive + c.negative, 0)
    });
    let negation_blind = score_probabilities(&suite, &blind_probs, 0.5);

    let global_probs = global_probabilities(&combos, kb, em);
    let global_params = score_probabilities(&suite, &global_probs, 0.5);

    // Inverted-bias subset: combinations whose true world parameters have
    // rate_neg > rate_pos.
    let inverted: std::collections::HashSet<(u32, String)> = world
        .domains()
        .iter()
        .filter(|d| d.params.rate_neg > d.params.rate_pos)
        .map(|d| (d.type_id.0, d.property.to_string()))
        .collect();
    let is_inverted =
        |c: &crate::testcases::EvalCase| inverted.contains(&(c.type_id.0, c.property.to_string()));
    let standard_inverted = score_probabilities_filtered(&suite, &standard_probs, 0.5, is_inverted);
    let negation_blind_inverted =
        score_probabilities_filtered(&suite, &blind_probs, 0.5, is_inverted);

    let thresholds = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
        .into_iter()
        .map(|tau| (tau, score_probabilities(&suite, &standard_probs, tau)))
        .collect();

    let em_iterations = [1usize, 2, 3, 5, 10, 50]
        .into_iter()
        .map(|iters| {
            let config = EmConfig {
                max_iterations: iters,
                ..em.clone()
            };
            let probs = probabilities_with(&combos, kb, &config, |c| c);
            (iters, score_probabilities(&suite, &probs, 0.5))
        })
        .collect();

    AblationReport {
        standard,
        negation_blind,
        global_params,
        standard_inverted,
        negation_blind_inverted,
        thresholds,
        em_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_corpus::presets::table2_world;

    fn report() -> AblationReport {
        run_ablations(
            &table2_world(19),
            CorpusConfig {
                num_shards: 2,
                ..CorpusConfig::default()
            },
            SurveyorConfig {
                rho: 100,
                threads: 2,
                ..SurveyorConfig::default()
            },
            321,
        )
    }

    #[test]
    fn negation_detection_matters() {
        let r = report();
        // The paper's emphasized design choice: distinguishing negative
        // statements. On the full suite the effect is small when negative
        // statements are globally rare; allow noise.
        assert!(
            r.standard.f1 >= r.negation_blind.f1 - 0.03,
            "negation blind {} should not clearly beat standard {}",
            r.negation_blind.f1,
            r.standard.f1
        );
        // Inverted-bias subset metrics are reported for inspection; both
        // variants struggle there (the agnostic ½ prior is the binding
        // constraint — see EXPERIMENTS.md), so no superiority is asserted.
        assert!((0.0..=1.0).contains(&r.standard_inverted.f1));
        assert!((0.0..=1.0).contains(&r.negation_blind_inverted.f1));
        // The global-parameter variant is reported, not asserted superior:
        // see the field docs. Sanity: it must be a valid score.
        assert!((0.0..=1.0).contains(&r.global_params.f1));
    }

    #[test]
    fn threshold_trade_is_monotone_in_coverage() {
        let r = report();
        let mut prev_cov = f64::INFINITY;
        for (tau, m) in &r.thresholds {
            assert!(
                m.coverage <= prev_cov + 1e-12,
                "coverage must shrink with tau (tau={tau})"
            );
            prev_cov = m.coverage;
        }
        // The base point uses tau = 0.5 and matches the standard run.
        assert_eq!(r.thresholds[0].1, r.standard);
    }

    #[test]
    fn em_iteration_budget_converges() {
        let r = report();
        let last = r.em_iterations.last().unwrap().1;
        // 10 iterations should already be as good as 50.
        let ten = r.em_iterations.iter().find(|(n, _)| *n == 10).unwrap().1;
        assert!((ten.f1 - last.f1).abs() < 0.05);
    }
}
