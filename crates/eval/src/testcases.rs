//! The evaluation protocol of §7.3: test cases judged by a worker panel.
//!
//! For every (type, property, entity) triple of an evaluation world, 20
//! simulated AMT workers vote; tied cases are removed ("Only for 4% of the
//! cases we got ties. We removed these cases from our test set"), and the
//! panel majority becomes the reference label — exactly as the paper uses
//! AMT as its approximation of the dominant opinion.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use surveyor_corpus::World;
use surveyor_crowd::{CrowdVerdict, Panel, TestCase};
use surveyor_kb::{EntityId, Property, TypeId};
use surveyor_prob::SeedStream;

/// One judged test case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalCase {
    /// Entity type.
    pub type_id: TypeId,
    /// Type name (for display).
    pub type_name: String,
    /// The property.
    pub property: Property,
    /// The judged entity.
    pub entity: EntityId,
    /// Entity display name.
    pub entity_name: String,
    /// The panel's votes.
    pub verdict: CrowdVerdict,
    /// The panel majority — the evaluation's reference label.
    pub crowd_majority: bool,
    /// The world's planted dominant opinion (for calibration checks; the
    /// paper could not observe this, only the crowd approximation).
    pub planted_truth: bool,
}

/// A judged evaluation suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalSuite {
    /// Judged, tie-free cases.
    pub cases: Vec<EvalCase>,
    /// Tied cases removed (paper: ~4%).
    pub ties_removed: usize,
    /// Workers per case.
    pub panel_size: usize,
}

impl EvalSuite {
    /// Builds and judges the full suite for a world: every entity of every
    /// domain becomes a test case.
    ///
    /// Per-case worker agreement varies around the domain's true
    /// agreement `pA*` (`wa = 1 − 2(1−pA)·u`, `u ~ U(0,1)`, clamped to
    /// `[0.5, 0.995]`): its mean is `pA*`, reproducing both the §7.3
    /// inter-domain differences and the intra-domain spread of Figure 11.
    pub fn from_world(world: &World, panel_seed: u64) -> Self {
        Self::from_world_limited(world, panel_seed, None)
    }

    /// Like [`Self::from_world`], but judging only the first
    /// `per_type_limit` entities of each type — the curated evaluation
    /// entities (the paper judged 20 well-known entities per type while
    /// the knowledge base held many more).
    pub fn from_world_limited(
        world: &World,
        panel_seed: u64,
        per_type_limit: Option<usize>,
    ) -> Self {
        let panel = Panel::paper(panel_seed);
        let mut cases = Vec::new();
        let mut ties_removed = 0;
        for domain in world.domains() {
            let type_name = world.kb().entity_type(domain.type_id).name().to_owned();
            let entities = world.kb().entities_of_type(domain.type_id);
            let stream = SeedStream::new(panel_seed)
                .child("agreement")
                .child(&type_name)
                .child(&domain.property.to_string());
            let mut rng = StdRng::seed_from_u64(stream.seed());
            let judged = per_type_limit.unwrap_or(entities.len()).min(entities.len());
            for (i, &entity) in entities.iter().take(judged).enumerate() {
                // Mixture: ~30% of combinations are "obvious" to workers
                // (near-unanimous panels — kittens are cute), the rest vary
                // uniformly below the domain agreement. This reproduces
                // the bimodal Figure 11 spectrum (~180/500 unanimous while
                // ~100/500 sit below 75% agreement).
                let u: f64 = rng.gen();
                let base = domain
                    .params
                    .crowd_agreement
                    .unwrap_or(domain.params.p_agree);
                let wa = if rng.gen_bool(0.3) {
                    0.99
                } else {
                    (1.0 - 2.0 * (1.0 - base) * u).clamp(0.5, 0.995)
                };
                let case = TestCase {
                    type_id: domain.type_id,
                    property: domain.property.clone(),
                    entity,
                    truth: domain.opinions[i],
                    worker_agreement: wa,
                };
                let verdict = panel.judge(&case);
                let Some(majority) = verdict.majority() else {
                    ties_removed += 1;
                    continue;
                };
                cases.push(EvalCase {
                    type_id: domain.type_id,
                    type_name: type_name.clone(),
                    property: domain.property.clone(),
                    entity,
                    entity_name: world.kb().entity(entity).name().to_owned(),
                    verdict,
                    crowd_majority: majority,
                    planted_truth: domain.opinions[i],
                });
            }
        }
        Self {
            cases,
            ties_removed,
            panel_size: panel.workers_per_case(),
        }
    }

    /// Cases whose worker agreement is at least `threshold` (Figure 12's
    /// x-axis).
    pub fn at_agreement(&self, threshold: usize) -> Vec<&EvalCase> {
        self.cases
            .iter()
            .filter(|c| c.verdict.agreement() >= threshold)
            .collect()
    }

    /// Mean worker agreement over all cases.
    pub fn mean_agreement(&self) -> f64 {
        let verdicts: Vec<CrowdVerdict> = self.cases.iter().map(|c| c.verdict).collect();
        surveyor_crowd::mean_agreement(&verdicts)
    }

    /// Number of unanimous cases.
    pub fn unanimous_cases(&self) -> usize {
        self.cases.iter().filter(|c| c.verdict.unanimous()).count()
    }

    /// The Figure 10 data: per-entity positive vote counts for one
    /// (type, property) combination, in entity order.
    pub fn votes_for(&self, type_name: &str, property: &Property) -> Vec<(String, usize)> {
        self.cases
            .iter()
            .filter(|c| c.type_name == type_name && &c.property == property)
            .map(|c| (c.entity_name.clone(), c.verdict.votes_positive))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_corpus::presets::table2_world;

    fn suite() -> EvalSuite {
        // The paper's protocol: 20 curated entities per type.
        EvalSuite::from_world_limited(&table2_world(7), 99, Some(20))
    }

    #[test]
    fn suite_has_about_500_cases() {
        let s = suite();
        assert_eq!(s.cases.len() + s.ties_removed, 500);
        // Ties are rare (paper: ~4%).
        assert!(s.ties_removed < 50, "ties = {}", s.ties_removed);
        assert_eq!(s.panel_size, 20);
    }

    #[test]
    fn agreement_statistics_match_paper_shape() {
        let s = suite();
        let mean = s.mean_agreement();
        assert!(
            (15.5..=18.5).contains(&mean),
            "mean agreement {mean} out of paper range"
        );
        // A substantial block of (near-)unanimous cases (paper: ~180/500).
        let unanimous = s.unanimous_cases();
        assert!(unanimous > 50 && unanimous < 350, "unanimous = {unanimous}");
    }

    #[test]
    fn crowd_majority_mostly_matches_planted_truth() {
        let s = suite();
        let matches = s
            .cases
            .iter()
            .filter(|c| c.crowd_majority == c.planted_truth)
            .count();
        let rate = matches as f64 / s.cases.len() as f64;
        assert!(rate > 0.9, "crowd recovers planted truth at {rate}");
    }

    #[test]
    fn agreement_filter_is_monotone() {
        let s = suite();
        let mut prev = usize::MAX;
        for t in 11..=20 {
            let n = s.at_agreement(t).len();
            assert!(n <= prev);
            prev = n;
        }
    }

    #[test]
    fn figure10_votes_cover_20_animals() {
        let s = suite();
        let votes = s.votes_for("animal", &Property::adjective("cute"));
        // 20 animals minus possible ties.
        assert!(votes.len() >= 18, "votes for cute animals: {}", votes.len());
        assert!(votes.iter().all(|(_, v)| *v <= 20));
    }

    #[test]
    fn suites_are_deterministic_per_seed() {
        let world = table2_world(7);
        let a = EvalSuite::from_world_limited(&world, 99, Some(20));
        let b = EvalSuite::from_world_limited(&world, 99, Some(20));
        assert_eq!(a, b);
        let c = EvalSuite::from_world_limited(&world, 100, Some(20));
        assert_ne!(a, c);
    }

    #[test]
    fn unlimited_suite_judges_every_entity() {
        let world = table2_world(7);
        let s = EvalSuite::from_world(&world, 99);
        assert_eq!(s.cases.len() + s.ties_removed, 25 * 500);
    }
}
