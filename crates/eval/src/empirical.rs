//! The attribute-correlation studies: Figure 3 (§2) and Figure 13
//! (Appendix A).
//!
//! For a single-domain world whose opinions derive from an objective
//! attribute (population, GDP per capita, lake area, mountain height),
//! the study runs the full pipeline and reports, per entity: the
//! attribute, the extracted statement counts, the majority-vote polarity,
//! and the probabilistic model's polarity. The quality readout is rank
//! correlation between attribute and decided polarity — visibly better
//! for the model, and defined for *all* entities because the model
//! decides even unmentioned ones.

use serde::{Deserialize, Serialize};
use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_corpus::{CorpusGenerator, World};
use surveyor_model::{MajorityVote, ObservedCounts, OpinionModel};
use surveyor_prob::spearman;

/// One entity's row in the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalPoint {
    /// Entity display name.
    pub entity: String,
    /// The objective attribute value (x-axis of Figures 3/13).
    pub attribute: f64,
    /// Extracted positive statements (Figure 3a).
    pub positive: u64,
    /// Extracted negative statements (Figure 3b).
    pub negative: u64,
    /// Majority-vote polarity (Figure 3c / Figure 13 left).
    pub majority: Decision,
    /// Probabilistic-model polarity (Figure 3d / Figure 13 right).
    pub model: Decision,
    /// The model's posterior probability.
    pub probability: f64,
    /// The planted dominant opinion.
    pub planted: bool,
}

/// The study artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalStudy {
    /// Attribute key (e.g. `"population"`).
    pub attribute_key: String,
    /// The property under study (e.g. `big`).
    pub property: String,
    /// Per-entity rows, ordered by attribute ascending.
    pub points: Vec<EmpiricalPoint>,
    /// Spearman correlation of attribute vs. majority-vote polarity
    /// (unsolved = 0).
    pub majority_spearman: Option<f64>,
    /// Spearman correlation of attribute vs. model polarity.
    pub model_spearman: Option<f64>,
    /// Majority-vote coverage (fraction of entities decided).
    pub majority_coverage: f64,
    /// Model coverage.
    pub model_coverage: f64,
    /// Majority-vote accuracy against the planted opinions (solved only).
    pub majority_accuracy: f64,
    /// Model accuracy against the planted opinions (solved only).
    pub model_accuracy: f64,
}

fn polarity_score(d: Decision) -> f64 {
    match d {
        Decision::Positive => 1.0,
        Decision::Negative => -1.0,
        Decision::Unsolved => 0.0,
    }
}

fn accuracy(points: &[(Decision, bool)]) -> f64 {
    let solved: Vec<&(Decision, bool)> = points.iter().filter(|(d, _)| d.is_solved()).collect();
    if solved.is_empty() {
        return 0.0;
    }
    let correct = solved
        .iter()
        .filter(|(d, truth)| (*d == Decision::Positive) == *truth)
        .count();
    correct as f64 / solved.len() as f64
}

/// Runs the study on a single-domain world.
///
/// # Panics
/// Panics if the world does not have exactly one domain or entities lack
/// the attribute.
pub fn run_empirical(
    world: &World,
    attribute_key: &str,
    corpus_config: CorpusConfig,
    surveyor_config: SurveyorConfig,
) -> EmpiricalStudy {
    assert_eq!(
        world.domains().len(),
        1,
        "empirical study expects a single-domain world"
    );
    let domain = &world.domains()[0];
    let generator = CorpusGenerator::new(world.clone(), corpus_config);
    let surveyor = Surveyor::new(world.kb().clone(), surveyor_config);
    let output = surveyor.run(&CorpusSource::new(&generator));

    let entities = world.kb().entities_of_type(domain.type_id);
    let counts: Vec<ObservedCounts> = entities
        .iter()
        .map(|&e| {
            let c = output.evidence.counts(e, &domain.property);
            ObservedCounts::new(c.positive, c.negative)
        })
        .collect();
    let mv_decisions = MajorityVote.decide_group(&counts);

    let mut points = Vec::with_capacity(entities.len());
    for (i, &entity) in entities.iter().enumerate() {
        let e = world.kb().entity(entity);
        let attribute = e
            .attribute(attribute_key)
            .unwrap_or_else(|| panic!("{} lacks attribute {attribute_key}", e.name())); // lint:allow(no-panic-in-lib): planted worlds attach the domain attribute to every entity
        let model_decision = output
            .opinion(entity, &domain.property)
            .map(|d| (d.decision, d.probability.unwrap_or(0.5)))
            .unwrap_or((Decision::Unsolved, 0.5));
        points.push(EmpiricalPoint {
            entity: e.name().to_owned(),
            attribute,
            positive: counts[i].positive,
            negative: counts[i].negative,
            majority: mv_decisions[i].decision,
            model: model_decision.0,
            probability: model_decision.1,
            planted: domain.opinions[i],
        });
    }
    points.sort_by(|a, b| a.attribute.total_cmp(&b.attribute));

    let attrs: Vec<f64> = points.iter().map(|p| p.attribute.max(1e-12).ln()).collect();
    let mv_scores: Vec<f64> = points.iter().map(|p| polarity_score(p.majority)).collect();
    let model_scores: Vec<f64> = points.iter().map(|p| polarity_score(p.model)).collect();

    let mv_pairs: Vec<(Decision, bool)> = points.iter().map(|p| (p.majority, p.planted)).collect();
    let model_pairs: Vec<(Decision, bool)> = points.iter().map(|p| (p.model, p.planted)).collect();

    EmpiricalStudy {
        attribute_key: attribute_key.to_owned(),
        majority_spearman: spearman(&attrs, &mv_scores),
        model_spearman: spearman(&attrs, &model_scores),
        majority_coverage: points.iter().filter(|p| p.majority.is_solved()).count() as f64
            / points.len() as f64,
        model_coverage: points.iter().filter(|p| p.model.is_solved()).count() as f64
            / points.len() as f64,
        majority_accuracy: accuracy(&mv_pairs),
        model_accuracy: accuracy(&model_pairs),
        points,
        property: String::new(), // replaced below
    }
    .with_property(domain.property.to_string())
}

impl EmpiricalStudy {
    fn with_property(mut self, property: String) -> Self {
        self.property = property;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_corpus::presets::{big_cities_world, big_lakes_world};

    fn study() -> EmpiricalStudy {
        run_empirical(
            &big_cities_world(7),
            surveyor_kb::seed::ATTR_POPULATION,
            CorpusConfig {
                num_shards: 4,
                ..CorpusConfig::default()
            },
            SurveyorConfig {
                rho: 50,
                threads: 2,
                ..SurveyorConfig::default()
            },
        )
    }

    #[test]
    fn model_beats_majority_vote_on_correlation() {
        let s = study();
        let mv = s.majority_spearman.unwrap_or(0.0);
        let model = s.model_spearman.expect("model correlation defined");
        // Note: with a binary polarity outcome and a small share of "big"
        // cities, even a perfect classifier has bounded rank correlation;
        // the meaningful check is the gap over majority vote.
        assert!(
            model > mv,
            "model spearman {model} should beat majority {mv}"
        );
        assert!(model > 0.3, "model spearman {model}");
    }

    #[test]
    fn model_covers_every_city() {
        let s = study();
        assert!(s.model_coverage > 0.99, "coverage {}", s.model_coverage);
        assert!(
            s.majority_coverage < 0.9,
            "majority coverage {} should be partial",
            s.majority_coverage
        );
        assert_eq!(s.points.len(), 461);
    }

    #[test]
    fn model_accuracy_beats_majority() {
        let s = study();
        assert!(
            s.model_accuracy > s.majority_accuracy,
            "model {} vs mv {}",
            s.model_accuracy,
            s.majority_accuracy
        );
        assert!(
            s.model_accuracy > 0.8,
            "model accuracy {}",
            s.model_accuracy
        );
    }

    #[test]
    fn counts_correlate_with_population() {
        let s = study();
        // Figure 3(a): positive statements grow with population.
        let attrs: Vec<f64> = s.points.iter().map(|p| p.attribute.ln()).collect();
        let pos: Vec<f64> = s.points.iter().map(|p| p.positive as f64).collect();
        let rho = surveyor_prob::spearman(&attrs, &pos).unwrap();
        assert!(rho > 0.4, "count correlation {rho}");
    }

    #[test]
    fn sparse_lakes_study_still_covered_by_model() {
        let s = run_empirical(
            &big_lakes_world(5),
            surveyor_kb::seed::ATTR_AREA_KM2,
            CorpusConfig {
                num_shards: 2,
                ..CorpusConfig::default()
            },
            SurveyorConfig {
                rho: 20,
                threads: 2,
                ..SurveyorConfig::default()
            },
        );
        assert!(s.model_coverage > 0.99);
        // Many lakes have no statements at all.
        let unmentioned = s
            .points
            .iter()
            .filter(|p| p.positive + p.negative == 0)
            .count();
        assert!(unmentioned > 3, "unmentioned lakes: {unmentioned}");
    }
}
