//! Evaluation measures (§7.4): coverage, precision, F1.
//!
//! "Coverage is the ratio of solved test cases to test cases. Precision is
//! the ratio of correctly solved test cases to solved test cases. F1 score
//! is the harmonic mean of precision and coverage."

use serde::{Deserialize, Serialize};
use surveyor_model::Decision;

/// Aggregate scores over a set of test cases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Solved / total.
    pub coverage: f64,
    /// Correct / solved (1.0 when nothing was solved, by convention 0.0).
    pub precision: f64,
    /// Harmonic mean of precision and coverage.
    pub f1: f64,
    /// Number of test cases scored.
    pub total: usize,
    /// Number of solved cases.
    pub solved: usize,
    /// Number of correctly solved cases.
    pub correct: usize,
}

impl Metrics {
    /// Scores decisions against reference labels (`true` = property
    /// applies). The slices are parallel.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn score(decisions: &[Decision], truths: &[bool]) -> Self {
        assert_eq!(decisions.len(), truths.len(), "parallel slices required");
        let total = decisions.len();
        let mut solved = 0;
        let mut correct = 0;
        for (d, &truth) in decisions.iter().zip(truths) {
            match d {
                Decision::Positive => {
                    solved += 1;
                    if truth {
                        correct += 1;
                    }
                }
                Decision::Negative => {
                    solved += 1;
                    if !truth {
                        correct += 1;
                    }
                }
                Decision::Unsolved => {}
            }
        }
        let coverage = if total == 0 {
            0.0
        } else {
            solved as f64 / total as f64
        };
        let precision = if solved == 0 {
            0.0
        } else {
            correct as f64 / solved as f64
        };
        let f1 = if coverage + precision == 0.0 {
            0.0
        } else {
            2.0 * coverage * precision / (coverage + precision)
        };
        Self {
            coverage,
            precision,
            f1,
            total,
            solved,
            correct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_model::Decision::{Negative, Positive, Unsolved};

    #[test]
    fn perfect_scores() {
        let m = Metrics::score(&[Positive, Negative], &[true, false]);
        assert_eq!(m.coverage, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.correct, 2);
    }

    #[test]
    fn unsolved_reduces_coverage_not_precision() {
        let m = Metrics::score(
            &[Positive, Unsolved, Unsolved, Unsolved],
            &[true, true, false, true],
        );
        assert_eq!(m.coverage, 0.25);
        assert_eq!(m.precision, 1.0);
        assert!((m.f1 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn wrong_decisions_reduce_precision() {
        let m = Metrics::score(&[Positive, Positive], &[true, false]);
        assert_eq!(m.coverage, 1.0);
        assert_eq!(m.precision, 0.5);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let m = Metrics::score(&[], &[]);
        assert_eq!(m.coverage, 0.0);
        assert_eq!(m.f1, 0.0);
        let m = Metrics::score(&[Unsolved], &[true]);
        assert_eq!(m.coverage, 0.0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_panic() {
        let _ = Metrics::score(&[Positive], &[]);
    }
}
