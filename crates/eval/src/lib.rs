//! Evaluation harness: drivers for every table and figure of the paper.
//!
//! Each module regenerates one evaluation artifact; the `repro` binary in
//! `surveyor-bench` formats the results, and EXPERIMENTS.md records the
//! paper-vs-measured comparison.
//!
//! | Module | Artifact |
//! |---|---|
//! | [`metrics`] | coverage / precision / F1 (the §7.4 measures) |
//! | [`testcases`] | the 500-case evaluation protocol of §7.3 |
//! | [`comparison`] | Table 3 and Figure 12 (+ Figure 11 inputs) |
//! | [`empirical`] | Figure 3 and Figure 13 (attribute-correlation studies) |
//! | [`snapshot_stats`] | Figure 9 extraction statistics |
//! | [`versions`] | Table 4 pattern-version comparison |
//! | [`random_sample`] | Table 5 random-sample comparison |
//! | [`ablation`] | design-choice ablations (§5/§7.5 discussion) |
//! | [`antonym`] | the §4 antonym-as-negation alternative, measured |
//! | [`bootstrap`] | case-level bootstrap confidence intervals |
//! | [`region`] | region-specific mining, quantified (§2 extension) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod antonym;
pub mod bootstrap;
pub mod comparison;
pub mod empirical;
pub mod metrics;
pub mod random_sample;
pub mod region;
pub mod snapshot_stats;
pub mod testcases;
pub mod versions;

pub use comparison::{ComparisonReport, MethodRow};
pub use empirical::{EmpiricalPoint, EmpiricalStudy};
pub use metrics::Metrics;
pub use snapshot_stats::SnapshotStats;
pub use testcases::{EvalCase, EvalSuite};
