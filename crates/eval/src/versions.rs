//! Table 4 (Appendix B): the four extraction-pattern versions.
//!
//! The paper reports, per version, the number of extracted statements —
//! V2 (permissive patterns, no checks) extracts roughly twice as much as
//! the shipped V4, while V3 (complement-only) extracts an order of
//! magnitude less. We regenerate those counts over the synthetic snapshot
//! and additionally report *extraction precision* against the generator's
//! intent: the fraction of extractions that correspond to genuine
//! statements (aspect/part-of distractors and subject-attributive
//! mis-reads count against it), quantifying the quality argument the
//! paper makes narratively.

use serde::{Deserialize, Serialize};
use surveyor_corpus::{CorpusConfig, CorpusGenerator, World};
use surveyor_extract::{extract_documents, EvidenceTable, PatternVersion};
use surveyor_nlp::AnnotatedDocument;

/// One Table 4 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionRow {
    /// Which version.
    pub version: PatternVersion,
    /// Table 4 "Modifiers" column.
    pub modifiers: String,
    /// Table 4 "Verbs" column.
    pub verbs: String,
    /// Table 4 "Check" column.
    pub checks: bool,
    /// Extracted statements (Table 4 "Statements").
    pub statements: u64,
    /// Distinct entity-property pairs.
    pub pairs: usize,
    /// Fraction of extractions on properties the generator actually
    /// asserted (higher = cleaner extractions).
    pub on_target_share: f64,
}

/// Runs all four versions over the same materialized snapshot.
pub fn run_versions(world: &World, corpus_config: CorpusConfig) -> Vec<VersionRow> {
    let generator = CorpusGenerator::new(world.clone(), corpus_config);
    let lexicon = generator.lexicon();
    // Materialize the annotated snapshot once; extraction itself is cheap
    // compared to parsing, and all versions must see identical documents.
    let docs: Vec<AnnotatedDocument> = (0..generator.shard_count())
        .flat_map(|s| generator.shard_annotated(s, &lexicon, None))
        .collect();

    // Properties the generator asserts on purpose (per type).
    let intended: std::collections::BTreeSet<(u32, String)> = world
        .domains()
        .iter()
        .map(|d| (d.type_id.0, d.property.to_string()))
        .collect();

    PatternVersion::all()
        .into_iter()
        .map(|version| {
            let config = version.config();
            let table: EvidenceTable = extract_documents(&docs, world.kb(), &config);
            let mut on_target = 0u64;
            let mut total = 0u64;
            for ((entity, property), counts) in table.iter() {
                let type_id = world.kb().entity(*entity).notable_type().0;
                let n = counts.total();
                total += n;
                if intended.contains(&(type_id, property.resolve().to_string())) {
                    on_target += n;
                }
            }
            VersionRow {
                version,
                modifiers: version.modifiers_label().to_owned(),
                verbs: version.verbs_label().to_owned(),
                checks: config.intrinsic_checks,
                statements: table.total_statements(),
                pairs: table.pair_count(),
                on_target_share: if total == 0 {
                    0.0
                } else {
                    on_target as f64 / total as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_corpus::presets::table2_world;

    fn rows() -> Vec<VersionRow> {
        run_versions(
            &table2_world(31),
            CorpusConfig {
                num_shards: 2,
                ..CorpusConfig::default()
            },
        )
    }

    #[test]
    fn four_rows_in_table_order() {
        let rows = rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].version, PatternVersion::V1);
        assert_eq!(rows[3].version, PatternVersion::V4);
        assert_eq!(rows[3].modifiers, "amod+acomp");
        assert_eq!(rows[3].verbs, "to be");
        assert!(rows[3].checks);
    }

    #[test]
    fn count_ordering_matches_table4() {
        let rows = rows();
        let count = |v: PatternVersion| rows.iter().find(|r| r.version == v).unwrap().statements;
        // Paper: V2 > V1 > V4 > V3.
        assert!(count(PatternVersion::V2) > count(PatternVersion::V4));
        assert!(count(PatternVersion::V4) > count(PatternVersion::V3));
        assert!(count(PatternVersion::V2) >= count(PatternVersion::V1));
    }

    #[test]
    fn checked_versions_are_cleaner() {
        let rows = rows();
        let share = |v: PatternVersion| {
            rows.iter()
                .find(|r| r.version == v)
                .unwrap()
                .on_target_share
        };
        assert!(
            share(PatternVersion::V4) > share(PatternVersion::V2),
            "V4 {} vs V2 {}",
            share(PatternVersion::V4),
            share(PatternVersion::V2)
        );
    }
}
