//! Region-specific mining, quantified (an extension of paper §2).
//!
//! The paper notes that "Surveyor can produce region-specific results if
//! the input is restricted to Web sites with specific domain extensions"
//! but does not evaluate the mode. This experiment does: two author
//! regions share a knowledge base while one flips a configurable fraction
//! of the other's dominant opinions; the pipeline runs once per region and
//! we measure (a) how often the per-region outputs diverge and (b) each
//! region's accuracy against *its own* planted opinions.

use serde::{Deserialize, Serialize};
use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_corpus::generator::RegionSpec;
use surveyor_corpus::{CorpusGenerator, World};
use surveyor_model::Decision;

/// The region experiment artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionReport {
    /// Configured opinion-flip probability of the second region.
    pub flip_probability: f64,
    /// Fraction of judged pairs where the two regions' mined opinions
    /// differ.
    pub divergence: f64,
    /// First region's accuracy against its own planted opinions.
    pub accuracy_a: f64,
    /// Second region's accuracy against its own planted opinions.
    pub accuracy_b: f64,
    /// Pairs with decisions in both regions.
    pub compared_pairs: usize,
}

/// Runs the experiment on a world: region `a` keeps the world's opinions;
/// region `b` flips each with `flip_probability`.
pub fn run_region_experiment(
    world: &World,
    flip_probability: f64,
    shards: usize,
    rho: u64,
    threads: usize,
) -> RegionReport {
    let config = CorpusConfig {
        num_shards: shards,
        regions: vec![
            RegionSpec {
                name: "a".to_owned(),
                weight: 1.0,
                opinion_flip: 0.0,
            },
            RegionSpec {
                name: "b".to_owned(),
                weight: 1.0,
                opinion_flip: flip_probability,
            },
        ],
        ..CorpusConfig::default()
    };
    let generator = CorpusGenerator::new(world.clone(), config);
    let kb = world.kb().clone();
    let surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho,
            threads,
            ..SurveyorConfig::default()
        },
    );
    let out_a =
        surveyor.run(&CorpusSource::try_for_region(&generator, "a").expect("region exists")); // lint:allow(no-panic-in-lib): the generator above registers regions a and b
    let out_b =
        surveyor.run(&CorpusSource::try_for_region(&generator, "b").expect("region exists")); // lint:allow(no-panic-in-lib): the generator above registers regions a and b

    let mut compared = 0usize;
    let mut diverged = 0usize;
    let mut correct_a = 0usize;
    let mut correct_b = 0usize;
    for (di, domain) in world.domains().iter().enumerate() {
        let entities = kb.entities_of_type(domain.type_id);
        for (ei, &entity) in entities.iter().enumerate() {
            let (Some(da), Some(db)) = (
                out_a.opinion(entity, &domain.property),
                out_b.opinion(entity, &domain.property),
            ) else {
                continue;
            };
            if !(da.decision.is_solved() && db.decision.is_solved()) {
                continue;
            }
            compared += 1;
            if da.decision != db.decision {
                diverged += 1;
            }
            if (da.decision == Decision::Positive) == generator.region_opinion(0, di, ei) {
                correct_a += 1;
            }
            if (db.decision == Decision::Positive) == generator.region_opinion(1, di, ei) {
                correct_b += 1;
            }
        }
    }
    let frac = |n: usize| {
        if compared == 0 {
            0.0
        } else {
            n as f64 / compared as f64
        }
    };
    RegionReport {
        flip_probability,
        divergence: frac(diverged),
        accuracy_a: frac(correct_a),
        accuracy_b: frac(correct_b),
        compared_pairs: compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use surveyor_kb::KnowledgeBaseBuilder;

    fn world(seed: u64) -> World {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        for i in 0..40 {
            b.add_entity(&format!("Critter{i}"), animal).finish();
        }
        WorldBuilder::new(Arc::new(b.build()), seed)
            .domain(
                "animal",
                Property::adjective("cute"),
                DomainParams {
                    p_agree: 0.92,
                    rate_pos: 30.0,
                    rate_neg: 5.0,
                    opinions: OpinionRule::RandomShare(0.5),
                    ..DomainParams::default()
                },
            )
            .build()
    }

    #[test]
    fn no_flips_means_no_divergence_beyond_noise() {
        let report = run_region_experiment(&world(3), 0.0, 8, 10, 2);
        assert!(report.compared_pairs > 30);
        assert!(report.divergence < 0.15, "divergence {}", report.divergence);
        assert!(report.accuracy_a > 0.85);
        assert!(report.accuracy_b > 0.85);
    }

    #[test]
    fn flips_produce_divergence_and_both_regions_stay_accurate() {
        let report = run_region_experiment(&world(3), 0.5, 8, 10, 2);
        // With a 50% flip probability roughly half the pairs disagree.
        assert!(
            (0.2..=0.8).contains(&report.divergence),
            "divergence {}",
            report.divergence
        );
        // Each region recovers *its own* truth.
        assert!(report.accuracy_a > 0.8, "a: {}", report.accuracy_a);
        assert!(report.accuracy_b > 0.8, "b: {}", report.accuracy_b);
    }

    #[test]
    fn divergence_grows_with_flip_probability() {
        let d0 = run_region_experiment(&world(9), 0.1, 8, 10, 2).divergence;
        let d1 = run_region_experiment(&world(9), 0.6, 8, 10, 2).divergence;
        assert!(d1 > d0, "0.1 -> {d0}, 0.6 -> {d1}");
    }
}
