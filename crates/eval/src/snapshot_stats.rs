//! Figure 9: extraction statistics over the full snapshot.
//!
//! (a) statements per knowledge-base entity (percentiles; heavily skewed —
//! "most entities are rarely mentioned while few popular entities are the
//! subject of most extracted statements"),
//! (b) statements per property-type combination (skewed again),
//! (c) per type, the number of properties above the ρ = 100 threshold.

use serde::{Deserialize, Serialize};
use surveyor_extract::{EvidenceTable, GroupedEvidence};
use surveyor_kb::KnowledgeBase;
use surveyor_prob::percentile_sorted_or_zero;

/// Percentile grid used for all three sub-figures.
pub const PERCENTILES: [u8; 11] = [0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95];

/// The Figure 9 artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Total extracted statements.
    pub statements_total: u64,
    /// Distinct entity-property pairs with evidence.
    pub pairs_with_evidence: usize,
    /// Distinct (type, property) combinations with evidence.
    pub combinations_total: usize,
    /// Combinations meeting the occurrence threshold.
    pub combinations_above_rho: usize,
    /// (percentile, statements per entity) — Figure 9(a). Includes the
    /// zero counts of never-mentioned entities.
    pub per_entity: Vec<(u8, f64)>,
    /// (percentile, statements per combination) — Figure 9(b), over
    /// combinations with at least one statement.
    pub per_combination: Vec<(u8, f64)>,
    /// (percentile, properties above ρ per type) — Figure 9(c), over all
    /// types.
    pub properties_per_type: Vec<(u8, f64)>,
}

/// Computes the Figure 9 statistics.
pub fn snapshot_stats(evidence: &EvidenceTable, kb: &KnowledgeBase, rho: u64) -> SnapshotStats {
    // (a) statements per entity, all KB entities.
    let mention_totals = evidence.mention_totals();
    let mut per_entity_counts: Vec<f64> = kb
        .entities()
        .iter()
        .map(|e| mention_totals.get(&e.id()).copied().unwrap_or(0) as f64)
        .collect();
    per_entity_counts.sort_by(|a, b| a.total_cmp(b));

    // (b) statements per combination.
    let grouped = GroupedEvidence::from_table(evidence, kb);
    let mut per_combo: Vec<f64> = grouped
        .iter()
        .map(|(_, g)| g.total_statements() as f64)
        .collect();
    per_combo.sort_by(|a, b| a.total_cmp(b));

    // (c) properties above rho per type.
    let mut per_type = vec![0.0f64; kb.types().len()];
    for (key, group) in grouped.iter() {
        if group.total_statements() >= rho {
            per_type[key.type_id.index()] += 1.0;
        }
    }
    per_type.sort_by(|a, b| a.total_cmp(b));

    SnapshotStats {
        statements_total: evidence.total_statements(),
        pairs_with_evidence: evidence.pair_count(),
        combinations_total: grouped.len(),
        combinations_above_rho: grouped.above_threshold(rho).count(),
        per_entity: PERCENTILES
            .iter()
            .map(|&q| (q, percentile_sorted_or_zero(&per_entity_counts, q as f64)))
            .collect(),
        per_combination: PERCENTILES
            .iter()
            .map(|&q| (q, percentile_sorted_or_zero(&per_combo, q as f64)))
            .collect(),
        properties_per_type: PERCENTILES
            .iter()
            .map(|&q| (q, percentile_sorted_or_zero(&per_type, q as f64)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor::prelude::*;
    use surveyor::CorpusSource;
    use surveyor_corpus::presets::{long_tail_world, table2_world};
    use surveyor_corpus::CorpusGenerator;
    use surveyor_extract::run_sharded;

    fn evidence_for(world: &surveyor_corpus::World) -> EvidenceTable {
        let generator = CorpusGenerator::new(
            world.clone(),
            CorpusConfig {
                num_shards: 4,
                ..CorpusConfig::default()
            },
        );
        let source = CorpusSource::new(&generator);
        run_sharded(&source, world.kb(), &ExtractionConfig::paper_final(), 2)
    }

    #[test]
    fn percentile_curves_are_monotone() {
        let world = table2_world(13);
        let evidence = evidence_for(&world);
        let stats = snapshot_stats(&evidence, world.kb(), 50);
        for series in [
            &stats.per_entity,
            &stats.per_combination,
            &stats.properties_per_type,
        ] {
            for w in series.windows(2) {
                assert!(w[1].1 >= w[0].1, "series not monotone: {series:?}");
            }
        }
    }

    #[test]
    fn long_tail_world_shows_heavy_skew() {
        let world = long_tail_world(20, 40, 4, 9);
        let evidence = evidence_for(&world);
        let stats = snapshot_stats(&evidence, world.kb(), 10);
        // Figure 9(a): "all percentiles up to the 95th are close to zero"
        // — the median entity has no statements.
        let median = stats.per_entity.iter().find(|(q, _)| *q == 50).unwrap().1;
        assert_eq!(median, 0.0, "median entity statements should be 0");
        // But statements exist.
        assert!(stats.statements_total > 100);
        // Some combinations stay below the threshold.
        assert!(stats.combinations_above_rho < stats.combinations_total);
    }

    #[test]
    fn totals_are_consistent() {
        let world = table2_world(13);
        let evidence = evidence_for(&world);
        let stats = snapshot_stats(&evidence, world.kb(), 1);
        assert_eq!(stats.statements_total, evidence.total_statements());
        assert!(stats.pairs_with_evidence >= stats.combinations_total);
        assert!(stats.combinations_above_rho <= stats.combinations_total);
    }
}
