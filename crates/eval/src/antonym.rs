//! The antonym ablation: measuring the §4 design decision.
//!
//! The paper rejected interpreting *"Palo Alto is small"* as a negation of
//! *"Palo Alto is big"* because "users who consider a city as not big do
//! not necessarily consider it small". This experiment builds a world in
//! which exactly that holds — `small` applies to *some but not all*
//! non-big cities — extracts evidence for both properties, and scores
//! Surveyor on the `big` decisions twice: with the raw evidence and with
//! antonym folding applied. The folding's failure mode is structural:
//! every "X is not small" statement about a *medium* city becomes
//! fabricated "X is big" evidence.

use crate::metrics::Metrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_corpus::World;
use surveyor_kb::KnowledgeBaseBuilder;
use surveyor_model::Decision;

/// The ablation artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AntonymReport {
    /// Surveyor on the raw `big` evidence (the paper's choice).
    pub without_folding: Metrics,
    /// Surveyor after folding `small` statements into `big` negations
    /// (the rejected alternative).
    pub with_folding: Metrics,
    /// Entities that are neither big nor small — the population the
    /// folding misreads.
    pub medium_entities: usize,
    /// Total entities.
    pub entities: usize,
}

/// World: big ∝ top of a size spectrum; small ∝ bottom; a wide *medium*
/// band is neither. `small` is therefore correlated with `not big` but far
/// from identical to it.
fn antonym_world(seed: u64, entities: usize) -> (World, Vec<bool>, Vec<bool>) {
    let mut b = KnowledgeBaseBuilder::new();
    let city = b.add_type("city", &["city"], &[]);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA27);
    let mut sizes = Vec::with_capacity(entities);
    for i in 0..entities {
        b.add_entity(&format!("Sizetown{i}"), city).finish();
        sizes.push(rng.gen::<f64>());
    }
    let big: Vec<bool> = sizes.iter().map(|&s| s > 0.75).collect();
    let small: Vec<bool> = sizes.iter().map(|&s| s < 0.30).collect();
    let kb = Arc::new(b.build());

    let base = DomainParams {
        p_agree: 0.9,
        rate_pos: 10.0,
        rate_neg: 2.0,
        aspect_noise: 0.0,
        part_of_noise: 0.0,
        filler_noise: 0.0,
        extended_verb_share: 0.0,
        double_negation_share: 0.0,
        ..DomainParams::default()
    };
    // Plant the exact opinion vectors via designated names.
    let names = |mask: &[bool]| -> Vec<String> {
        mask.iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| format!("Sizetown{i}"))
            .collect()
    };
    let world = WorldBuilder::new(kb, seed)
        .domain(
            "city",
            Property::adjective("big"),
            DomainParams {
                opinions: OpinionRule::DesignatedNames {
                    positive: names(&big),
                    background_share: 0.0,
                },
                ..base.clone()
            },
        )
        .domain(
            "city",
            Property::adjective("small"),
            DomainParams {
                opinions: OpinionRule::DesignatedNames {
                    positive: names(&small),
                    background_share: 0.0,
                },
                // People do write "X is not small" about medium cities.
                rate_neg: 4.0,
                ..base
            },
        )
        .build();
    (world, big, small)
}

/// Runs the ablation.
pub fn run_antonym_ablation(seed: u64, entities: usize) -> AntonymReport {
    let (world, big_truth, small_truth) = antonym_world(seed, entities);
    let kb = world.kb().clone();
    let generator = CorpusGenerator::new(world.clone(), CorpusConfig::default());
    let surveyor = Surveyor::new(
        kb.clone(),
        SurveyorConfig {
            rho: 20,
            ..SurveyorConfig::default()
        },
    );
    let raw_output = surveyor.run(&CorpusSource::new(&generator));

    // The rejected alternative: fold `small` into `big` before modeling.
    let lexicon = surveyor::extract::AntonymLexicon::core();
    let folded_evidence = lexicon.fold_table(&raw_output.evidence);
    let folded_output = surveyor.run_on_evidence(folded_evidence);

    let big = Property::adjective("big");
    let city = kb.type_by_name("city").expect("city type"); // lint:allow(no-panic-in-lib): the eval harness runs on the seed KB, which defines city
    let entities_of_type = kb.entities_of_type(city);
    let score = |output: &surveyor::SurveyorOutput| {
        let decisions: Vec<Decision> = entities_of_type
            .iter()
            .map(|&e| {
                output
                    .opinion(e, &big)
                    .map(|d| d.decision)
                    .unwrap_or(Decision::Unsolved)
            })
            .collect();
        Metrics::score(&decisions, &big_truth)
    };

    AntonymReport {
        without_folding: score(&raw_output),
        with_folding: score(&folded_output),
        medium_entities: big_truth
            .iter()
            .zip(&small_truth)
            .filter(|(&b, &s)| !b && !s)
            .count(),
        entities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_hurts_precision_as_the_paper_predicted() {
        let report = run_antonym_ablation(7, 300);
        // A substantial medium band exists (the crux of the argument).
        assert!(
            report.medium_entities > report.entities / 4,
            "medium {}",
            report.medium_entities
        );
        // The paper's decision: raw evidence beats antonym folding.
        assert!(
            report.without_folding.precision > report.with_folding.precision + 0.05,
            "raw {} vs folded {}",
            report.without_folding.precision,
            report.with_folding.precision
        );
        assert!(report.without_folding.precision > 0.85);
    }

    #[test]
    fn report_is_deterministic() {
        assert_eq!(run_antonym_ablation(3, 150), run_antonym_ablation(3, 150));
    }
}
