//! Table 5 (Appendix D): the random-sample comparison.
//!
//! The paper sampled 803 property-type combinations with seven entities
//! each from the full result set — overwhelmingly obscure, rarely
//! mentioned entities. Coverage collapses for the count-based baselines
//! (majority vote: 7.7%) while Surveyor still decides nearly everything;
//! precision is judged on a smaller expert-labeled subset (80 cases). We
//! mirror the protocol on the long-tail world, using the planted ground
//! truth in place of the paper's manual expert labels (the paper
//! explicitly could not use AMT for these entities).

use crate::comparison::WebChildConfig;
use crate::metrics::Metrics;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use surveyor::prelude::*;
use surveyor::CorpusSource;
use surveyor_corpus::{CorpusGenerator, World};
use surveyor_kb::EntityId;
use surveyor_model::{
    MajorityVote, ObservedCounts, OpinionModel, ScaledMajorityVote, WebChildBaseline,
};

/// One sampled test case.
#[derive(Debug, Clone)]
struct SampledCase {
    domain_index: usize,
    entity: EntityId,
    truth: bool,
}

/// One Table 5 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomSampleRow {
    /// Method name.
    pub method: String,
    /// Coverage over the full sample (paper: computed automatically on
    /// all ~5500 cases).
    pub coverage: f64,
    /// Precision over the judged subset.
    pub precision: f64,
    /// F1 from the two numbers above (paper's convention).
    pub f1: f64,
}

/// The Table 5 artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomSampleReport {
    /// Per-method rows.
    pub rows: Vec<RandomSampleRow>,
    /// Sampled cases for the coverage measurement.
    pub sampled_cases: usize,
    /// Judged subset size for the precision measurement.
    pub judged_cases: usize,
}

fn f1(coverage: f64, precision: f64) -> f64 {
    if coverage + precision == 0.0 {
        0.0
    } else {
        2.0 * coverage * precision / (coverage + precision)
    }
}

/// Runs the Appendix D protocol on a long-tail world.
///
/// `combos` combinations are sampled with `entities_per_combo` entities
/// each; `judged` of the sampled cases get precision labels.
#[allow(clippy::too_many_arguments)]
pub fn run_random_sample(
    world: &World,
    corpus_config: CorpusConfig,
    surveyor_config: SurveyorConfig,
    webchild: WebChildConfig,
    combos: usize,
    entities_per_combo: usize,
    judged: usize,
    sample_seed: u64,
) -> RandomSampleReport {
    let generator = CorpusGenerator::new(world.clone(), corpus_config);
    let surveyor = Surveyor::new(world.kb().clone(), surveyor_config);
    let output = surveyor.run(&CorpusSource::new(&generator));

    // Sample combinations from the *result set* — the paper sampled its
    // 803 combinations "randomly from our large result set", i.e. from
    // combinations Surveyor actually modeled (above ρ).
    let modeled: std::collections::HashSet<(u32, String)> = output
        .results
        .iter()
        .map(|r| (r.key.type_id.0, r.key.property.resolve().to_string()))
        .collect();
    let mut rng = StdRng::seed_from_u64(sample_seed);
    let mut domain_indexes: Vec<usize> = (0..world.domains().len())
        .filter(|&di| {
            let d = &world.domains()[di];
            modeled.contains(&(d.type_id.0, d.property.to_string()))
        })
        .collect();
    domain_indexes.shuffle(&mut rng);
    domain_indexes.truncate(combos.min(domain_indexes.len()));

    let mut cases = Vec::new();
    for &di in &domain_indexes {
        let domain = &world.domains()[di];
        let entities = world.kb().entities_of_type(domain.type_id);
        let mut order: Vec<usize> = (0..entities.len()).collect();
        order.shuffle(&mut rng);
        for &ei in order.iter().take(entities_per_combo) {
            cases.push(SampledCase {
                domain_index: di,
                entity: entities[ei],
                truth: domain.opinions[ei],
            });
        }
    }
    let mut judged_indexes: Vec<usize> = (0..cases.len()).collect();
    judged_indexes.shuffle(&mut rng);
    judged_indexes.truncate(judged.min(cases.len()));
    let judged_set: std::collections::HashSet<usize> = judged_indexes.into_iter().collect();

    // Per-case counts and mention totals.
    let counts: Vec<ObservedCounts> = cases
        .iter()
        .map(|c| {
            let property = &world.domains()[c.domain_index].property;
            let ec = output.evidence.counts(c.entity, property);
            ObservedCounts::new(ec.positive, ec.negative)
        })
        .collect();
    let mention_totals = output.evidence.mention_totals();
    let mentions: Vec<u64> = cases
        .iter()
        .map(|c| mention_totals.get(&c.entity).copied().unwrap_or(0))
        .collect();

    let (tp, tn) = output.evidence.polarity_totals();
    let methods: Vec<(String, Vec<Decision>)> = vec![
        (
            "Majority Vote".to_owned(),
            MajorityVote
                .decide_group(&counts)
                .into_iter()
                .map(|d| d.decision)
                .collect(),
        ),
        (
            "Scaled Majority Vote".to_owned(),
            ScaledMajorityVote::from_totals(tp, tn)
                .decide_group(&counts)
                .into_iter()
                .map(|d| d.decision)
                .collect(),
        ),
        (
            "WebChild".to_owned(),
            WebChildBaseline::new(
                webchild.membership_threshold,
                webchild.association_threshold,
                mentions,
            )
            .decide_group(&counts)
            .into_iter()
            .map(|d| d.decision)
            .collect(),
        ),
        (
            "Surveyor".to_owned(),
            cases
                .iter()
                .map(|c| {
                    let property = &world.domains()[c.domain_index].property;
                    output
                        .opinion(c.entity, property)
                        .map(|d| d.decision)
                        .unwrap_or(Decision::Unsolved)
                })
                .collect(),
        ),
    ];

    let rows = methods
        .into_iter()
        .map(|(method, decisions)| {
            // Coverage: all sampled cases.
            let truths: Vec<bool> = cases.iter().map(|c| c.truth).collect();
            let all = Metrics::score(&decisions, &truths);
            // Precision: judged subset only.
            let jd: Vec<Decision> = judged_set.iter().map(|&i| decisions[i]).collect();
            let jt: Vec<bool> = judged_set.iter().map(|&i| cases[i].truth).collect();
            let judged_metrics = Metrics::score(&jd, &jt);
            RandomSampleRow {
                method,
                coverage: all.coverage,
                precision: judged_metrics.precision,
                f1: f1(all.coverage, judged_metrics.precision),
            }
        })
        .collect();

    RandomSampleReport {
        rows,
        sampled_cases: cases.len(),
        judged_cases: judged_set.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_corpus::presets::long_tail_world;

    fn report() -> RandomSampleReport {
        let world = long_tail_world(20, 40, 4, 17);
        run_random_sample(
            &world,
            CorpusConfig {
                num_shards: 2,
                ..CorpusConfig::default()
            },
            SurveyorConfig {
                rho: 10,
                threads: 2,
                ..SurveyorConfig::default()
            },
            WebChildConfig::default(),
            40,
            7,
            60,
            5,
        )
    }

    #[test]
    fn sample_sizes_respected() {
        let r = report();
        // Combos are drawn from the modeled result set, which may hold
        // fewer than the requested 40.
        assert!(r.sampled_cases > 0 && r.sampled_cases <= 40 * 7);
        assert_eq!(r.sampled_cases % 7, 0);
        assert!(r.judged_cases <= 60);
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn baselines_collapse_on_the_long_tail() {
        let r = report();
        let get = |name: &str| r.rows.iter().find(|x| x.method == name).unwrap();
        let mv = get("Majority Vote");
        let sv = get("Surveyor");
        // Table 5 shape: majority-vote coverage collapses; Surveyor stays
        // near-total.
        assert!(mv.coverage < 0.4, "mv coverage {}", mv.coverage);
        assert!(sv.coverage > 0.8, "surveyor coverage {}", sv.coverage);
        assert!(sv.f1 > mv.f1 * 2.0, "sv f1 {} mv f1 {}", sv.f1, mv.f1);
    }
}
