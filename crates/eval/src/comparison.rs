//! Table 3 and Figure 12: comparing Surveyor against the baselines on the
//! judged test suite.

use crate::metrics::Metrics;
use crate::testcases::{EvalCase, EvalSuite};
use serde::{Deserialize, Serialize};
use surveyor::prelude::*;
use surveyor::{CorpusSource, SurveyorOutput};
use surveyor_corpus::CorpusGenerator;
use surveyor_model::{
    MajorityVote, ObservedCounts, OpinionModel, ScaledMajorityVote, WebChildBaseline,
};

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRow {
    /// Method name.
    pub method: String,
    /// Aggregate scores.
    pub metrics: Metrics,
}

/// One Figure 12 point: scores of every method at an agreement threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgreementPoint {
    /// Minimum worker agreement.
    pub threshold: usize,
    /// Number of cases meeting the threshold (Figure 11).
    pub cases: usize,
    /// Per-method scores at this threshold.
    pub rows: Vec<MethodRow>,
}

/// The full §7.4 comparison artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Table 3 rows (all test cases).
    pub table3: Vec<MethodRow>,
    /// Figure 12 series (thresholds 11..=20).
    pub figure12: Vec<AgreementPoint>,
    /// Number of judged cases.
    pub cases: usize,
    /// Ties removed (§7.3).
    pub ties_removed: usize,
    /// Mean worker agreement (paper: ~17/20).
    pub mean_agreement: f64,
    /// Unanimous cases (paper: ~180).
    pub unanimous_cases: usize,
}

/// WebChild baseline configuration used by the comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WebChildConfig {
    /// Minimum total mentions for KB membership.
    pub membership_threshold: u64,
    /// Minimum co-occurrence count to assert the property.
    pub association_threshold: u64,
}

impl Default for WebChildConfig {
    fn default() -> Self {
        Self {
            membership_threshold: 8,
            association_threshold: 2,
        }
    }
}

/// Per-method decisions on a judged suite, given a completed Surveyor run.
pub struct MethodDecisions {
    /// Method name → decision per suite case (parallel to `suite.cases`).
    pub per_method: Vec<(String, Vec<Decision>)>,
}

/// Computes every method's decision for every case of the suite.
pub fn method_decisions(
    suite: &EvalSuite,
    output: &SurveyorOutput,
    webchild: WebChildConfig,
) -> MethodDecisions {
    let case_counts: Vec<ObservedCounts> = suite
        .cases
        .iter()
        .map(|c| {
            let counts = output.evidence.counts(c.entity, &c.property);
            ObservedCounts::new(counts.positive, counts.negative)
        })
        .collect();

    // Majority vote.
    let mv: Vec<Decision> = MajorityVote
        .decide_group(&case_counts)
        .into_iter()
        .map(|d| d.decision)
        .collect();

    // Scaled majority vote with the global polarity ratio.
    let (tp, tn) = output.evidence.polarity_totals();
    let smv_model = ScaledMajorityVote::from_totals(tp, tn);
    let smv: Vec<Decision> = smv_model
        .decide_group(&case_counts)
        .into_iter()
        .map(|d| d.decision)
        .collect();

    // WebChild: KB membership from corpus-wide mention totals.
    let mention_totals = output.evidence.mention_totals();
    let mentions: Vec<u64> = suite
        .cases
        .iter()
        .map(|c| mention_totals.get(&c.entity).copied().unwrap_or(0))
        .collect();
    let wc_model = WebChildBaseline::new(
        webchild.membership_threshold,
        webchild.association_threshold,
        mentions,
    );
    let wc: Vec<Decision> = wc_model
        .decide_group(&case_counts)
        .into_iter()
        .map(|d| d.decision)
        .collect();

    // Surveyor: from the pipeline output (unsolved when the combination
    // fell below ρ or the posterior sits exactly at ½).
    let sv: Vec<Decision> = suite
        .cases
        .iter()
        .map(|c| {
            output
                .opinion(c.entity, &c.property)
                .map(|d| d.decision)
                .unwrap_or(Decision::Unsolved)
        })
        .collect();

    MethodDecisions {
        per_method: vec![
            ("Majority Vote".to_owned(), mv),
            ("Scaled Majority Vote".to_owned(), smv),
            ("WebChild".to_owned(), wc),
            ("Surveyor".to_owned(), sv),
        ],
    }
}

fn score_subset(
    decisions: &MethodDecisions,
    cases: &[EvalCase],
    selected: &[usize],
) -> Vec<MethodRow> {
    decisions
        .per_method
        .iter()
        .map(|(name, all)| {
            let d: Vec<Decision> = selected.iter().map(|&i| all[i]).collect();
            let t: Vec<bool> = selected.iter().map(|&i| cases[i].crowd_majority).collect();
            MethodRow {
                method: name.clone(),
                metrics: Metrics::score(&d, &t),
            }
        })
        .collect()
}

/// Runs the full §7.4 comparison: corpus generation → extraction →
/// Surveyor → crowd judging → Table 3 + Figure 12.
pub fn run_comparison(
    world: &surveyor_corpus::World,
    corpus_config: CorpusConfig,
    surveyor_config: SurveyorConfig,
    webchild: WebChildConfig,
    panel_seed: u64,
    per_type_limit: Option<usize>,
) -> ComparisonReport {
    let generator = CorpusGenerator::new(world.clone(), corpus_config);
    let surveyor = Surveyor::new(world.kb().clone(), surveyor_config);
    let output = surveyor.run(&CorpusSource::new(&generator));
    let suite = EvalSuite::from_world_limited(world, panel_seed, per_type_limit);
    report_from_parts(&suite, &output, webchild)
}

/// Builds the report from already-computed parts (used by ablations that
/// reuse one extraction run).
pub fn report_from_parts(
    suite: &EvalSuite,
    output: &SurveyorOutput,
    webchild: WebChildConfig,
) -> ComparisonReport {
    let decisions = method_decisions(suite, output, webchild);
    let all: Vec<usize> = (0..suite.cases.len()).collect();
    let table3 = score_subset(&decisions, &suite.cases, &all);

    let figure12 = (11..=suite.panel_size)
        .map(|threshold| {
            let selected: Vec<usize> = suite
                .cases
                .iter()
                .enumerate()
                .filter(|(_, c)| c.verdict.agreement() >= threshold)
                .map(|(i, _)| i)
                .collect();
            AgreementPoint {
                threshold,
                cases: selected.len(),
                rows: score_subset(&decisions, &suite.cases, &selected),
            }
        })
        .collect();

    ComparisonReport {
        table3,
        figure12,
        cases: suite.cases.len(),
        ties_removed: suite.ties_removed,
        mean_agreement: suite.mean_agreement(),
        unanimous_cases: suite.unanimous_cases(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_corpus::presets::table2_world;

    fn small_report() -> ComparisonReport {
        let world = table2_world(21);
        run_comparison(
            &world,
            CorpusConfig {
                num_shards: 4,
                ..CorpusConfig::default()
            },
            SurveyorConfig {
                rho: 100,
                threads: 2,
                ..SurveyorConfig::default()
            },
            WebChildConfig::default(),
            500,
            Some(20),
        )
    }

    #[test]
    fn comparison_produces_four_methods() {
        let report = small_report();
        assert_eq!(report.table3.len(), 4);
        let names: Vec<&str> = report.table3.iter().map(|r| r.method.as_str()).collect();
        assert_eq!(
            names,
            [
                "Majority Vote",
                "Scaled Majority Vote",
                "WebChild",
                "Surveyor"
            ]
        );
        assert_eq!(report.figure12.len(), 10);
    }

    #[test]
    fn surveyor_wins_on_coverage_and_f1() {
        let report = small_report();
        let get = |name: &str| {
            report
                .table3
                .iter()
                .find(|r| r.method == name)
                .unwrap()
                .metrics
        };
        let sv = get("Surveyor");
        let mv = get("Majority Vote");
        assert!(
            sv.coverage > 1.5 * mv.coverage,
            "surveyor coverage {} vs mv {}",
            sv.coverage,
            mv.coverage
        );
        assert!(sv.f1 > mv.f1);
        assert!(sv.precision > mv.precision);
    }

    #[test]
    fn figure12_thresholds_shrink_case_sets() {
        let report = small_report();
        let mut prev = usize::MAX;
        for point in &report.figure12 {
            assert!(point.cases <= prev);
            prev = point.cases;
            assert_eq!(point.rows.len(), 4);
        }
    }
}
