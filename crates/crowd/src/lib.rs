//! Crowd (Amazon Mechanical Turk) simulator.
//!
//! The paper approximates the dominant opinion by polling 20 AMT workers
//! per entity-property combination (10,000 opinions, §7.3). The
//! reproduction replaces the worker pool with a calibrated simulator: each
//! worker votes with the planted dominant opinion with a per-combination
//! agreement probability, reproducing the published agreement spectrum
//! (mean agreement ≈ 17/20, ~180 of 500 unanimous cases, ~4% ties).
//!
//! - [`panel`]: test cases, worker panels, and verdicts.
//! - [`stats`]: the agreement statistics behind Figures 10–12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod panel;
pub mod stats;

pub use panel::{CrowdVerdict, Panel, TestCase};
pub use stats::{agreement_histogram, cases_at_or_above, mean_agreement};
