//! Agreement statistics over judged test cases (Figures 10–12).

use crate::panel::CrowdVerdict;

/// Mean worker agreement (the paper reports 17 of 20 averaged over all
/// 500 test cases).
pub fn mean_agreement(verdicts: &[CrowdVerdict]) -> f64 {
    if verdicts.is_empty() {
        return 0.0;
    }
    verdicts.iter().map(|v| v.agreement() as f64).sum::<f64>() / verdicts.len() as f64
}

/// Number of cases whose agreement is at least `threshold` — one point of
/// the Figure 11 curve.
pub fn cases_at_or_above(verdicts: &[CrowdVerdict], threshold: usize) -> usize {
    verdicts
        .iter()
        .filter(|v| v.agreement() >= threshold)
        .count()
}

/// The full Figure 11 series: for each threshold from `min_threshold` to
/// the panel size, how many cases meet it.
pub fn agreement_histogram(
    verdicts: &[CrowdVerdict],
    min_threshold: usize,
    panel_size: usize,
) -> Vec<(usize, usize)> {
    (min_threshold..=panel_size)
        .map(|t| (t, cases_at_or_above(verdicts, t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pos: usize, neg: usize) -> CrowdVerdict {
        CrowdVerdict {
            votes_positive: pos,
            votes_negative: neg,
        }
    }

    #[test]
    fn mean_agreement_basic() {
        let verdicts = [v(20, 0), v(15, 5), v(10, 10)];
        assert!((mean_agreement(&verdicts) - 15.0).abs() < 1e-12);
        assert_eq!(mean_agreement(&[]), 0.0);
    }

    #[test]
    fn threshold_counting() {
        let verdicts = [v(20, 0), v(18, 2), v(12, 8), v(10, 10)];
        assert_eq!(cases_at_or_above(&verdicts, 11), 3);
        assert_eq!(cases_at_or_above(&verdicts, 19), 1);
        assert_eq!(cases_at_or_above(&verdicts, 10), 4);
    }

    #[test]
    fn histogram_is_monotone_decreasing() {
        let verdicts: Vec<CrowdVerdict> = (0..21).map(|k| v(k, 20 - k)).collect();
        let hist = agreement_histogram(&verdicts, 11, 20);
        assert_eq!(hist.len(), 10);
        for w in hist.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        assert_eq!(hist[0].0, 11);
        assert_eq!(hist.last().unwrap().0, 20);
    }
}
