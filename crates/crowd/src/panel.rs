//! Worker panels and verdicts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use surveyor_kb::{EntityId, Property, TypeId};
use surveyor_prob::SeedStream;

/// One evaluation test case: an entity-property combination with its
/// planted dominant opinion and the simulated worker pool's agreement
/// probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestCase {
    /// The entity type.
    pub type_id: TypeId,
    /// The subjective property.
    pub property: Property,
    /// The judged entity.
    pub entity: EntityId,
    /// The planted dominant opinion (ground truth).
    pub truth: bool,
    /// Probability an individual worker votes with the dominant opinion.
    /// The paper found this varies per combination (§7.3: dangerous
    /// animals 18/20 vs. boring sports 15/20).
    pub worker_agreement: f64,
}

/// The votes of one worker panel on one test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrowdVerdict {
    /// Workers answering "the property applies".
    pub votes_positive: usize,
    /// Workers answering "the property does not apply".
    pub votes_negative: usize,
}

impl CrowdVerdict {
    /// Total panel size.
    pub fn panel_size(&self) -> usize {
        self.votes_positive + self.votes_negative
    }

    /// The majority opinion; `None` on a tie (the paper removed the ~4%
    /// tied cases from its test set).
    pub fn majority(&self) -> Option<bool> {
        match self.votes_positive.cmp(&self.votes_negative) {
            std::cmp::Ordering::Greater => Some(true),
            std::cmp::Ordering::Less => Some(false),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// Worker agreement: "the number of AMT workers that share the same
    /// opinion" (§7.3) — i.e. the larger vote count.
    pub fn agreement(&self) -> usize {
        self.votes_positive.max(self.votes_negative)
    }

    /// Whether the panel was unanimous.
    pub fn unanimous(&self) -> bool {
        self.votes_positive == 0 || self.votes_negative == 0
    }
}

/// A deterministic worker panel.
#[derive(Debug, Clone, Copy)]
pub struct Panel {
    seed: u64,
    workers_per_case: usize,
}

impl Panel {
    /// A panel of `workers_per_case` simulated workers (the paper used 20).
    ///
    /// # Panics
    /// Panics if `workers_per_case == 0`.
    pub fn new(seed: u64, workers_per_case: usize) -> Self {
        assert!(workers_per_case > 0, "panel must have workers");
        Self {
            seed,
            workers_per_case,
        }
    }

    /// The paper's configuration: 20 workers.
    pub fn paper(seed: u64) -> Self {
        Self::new(seed, 20)
    }

    /// Panel size.
    pub fn workers_per_case(&self) -> usize {
        self.workers_per_case
    }

    /// Collects votes on one test case. Deterministic per
    /// (panel seed, type, property, entity).
    pub fn judge(&self, case: &TestCase) -> CrowdVerdict {
        let stream = SeedStream::new(self.seed)
            .child("case")
            .child(&case.property.to_string())
            .index(case.type_id.index() as u64)
            .index(case.entity.index() as u64);
        let mut rng = StdRng::seed_from_u64(stream.seed());
        let p = case.worker_agreement.clamp(0.0, 1.0);
        let mut votes_positive = 0;
        for _ in 0..self.workers_per_case {
            let follows_majority = rng.gen_bool(p);
            let vote = if follows_majority {
                case.truth
            } else {
                !case.truth
            };
            if vote {
                votes_positive += 1;
            }
        }
        CrowdVerdict {
            votes_positive,
            votes_negative: self.workers_per_case - votes_positive,
        }
    }

    /// Judges a batch of cases.
    pub fn judge_all(&self, cases: &[TestCase]) -> Vec<CrowdVerdict> {
        cases.iter().map(|c| self.judge(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(entity: u32, truth: bool, agreement: f64) -> TestCase {
        TestCase {
            type_id: TypeId(0),
            property: Property::adjective("cute"),
            entity: EntityId(entity),
            truth,
            worker_agreement: agreement,
        }
    }

    #[test]
    fn verdict_majority_and_agreement() {
        let v = CrowdVerdict {
            votes_positive: 17,
            votes_negative: 3,
        };
        assert_eq!(v.majority(), Some(true));
        assert_eq!(v.agreement(), 17);
        assert!(!v.unanimous());
        let tie = CrowdVerdict {
            votes_positive: 10,
            votes_negative: 10,
        };
        assert_eq!(tie.majority(), None);
        let unan = CrowdVerdict {
            votes_positive: 0,
            votes_negative: 20,
        };
        assert!(unan.unanimous());
        assert_eq!(unan.majority(), Some(false));
    }

    #[test]
    fn judging_is_deterministic() {
        let panel = Panel::paper(9);
        let c = case(3, true, 0.85);
        assert_eq!(panel.judge(&c), panel.judge(&c));
    }

    #[test]
    fn different_entities_get_independent_panels() {
        let panel = Panel::paper(9);
        let verdicts: Vec<CrowdVerdict> =
            (0..50).map(|e| panel.judge(&case(e, true, 0.8))).collect();
        let distinct: std::collections::HashSet<usize> =
            verdicts.iter().map(|v| v.votes_positive).collect();
        assert!(distinct.len() > 3, "panels look identical: {distinct:?}");
    }

    #[test]
    fn high_agreement_recovers_truth() {
        let panel = Panel::paper(5);
        for e in 0..100 {
            let truth = e % 2 == 0;
            let v = panel.judge(&case(e, truth, 0.92));
            assert_eq!(v.majority(), Some(truth), "entity {e}");
        }
    }

    #[test]
    fn mean_agreement_tracks_worker_accuracy() {
        let panel = Panel::paper(5);
        let verdicts: Vec<CrowdVerdict> = (0..300)
            .map(|e| panel.judge(&case(e, true, 0.85)))
            .collect();
        let mean: f64 =
            verdicts.iter().map(|v| v.agreement() as f64).sum::<f64>() / verdicts.len() as f64;
        // E[max(k, 20-k)] with k ~ Bin(20, .85) is ~17.
        assert!((16.0..18.0).contains(&mean), "mean agreement {mean}");
    }

    #[test]
    fn panel_size_is_respected() {
        let panel = Panel::new(1, 7);
        let v = panel.judge(&case(0, true, 0.5));
        assert_eq!(v.panel_size(), 7);
    }

    #[test]
    #[should_panic(expected = "workers")]
    fn empty_panel_panics() {
        let _ = Panel::new(0, 0);
    }
}
