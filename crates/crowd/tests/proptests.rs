//! Property-based tests for the crowd simulator.

use proptest::prelude::*;
use surveyor_crowd::{
    agreement_histogram, cases_at_or_above, mean_agreement, CrowdVerdict, Panel, TestCase,
};
use surveyor_kb::{EntityId, Property, TypeId};

fn case(entity: u32, truth: bool, agreement: f64) -> TestCase {
    TestCase {
        type_id: TypeId(0),
        property: Property::adjective("cute"),
        entity: EntityId(entity),
        truth,
        worker_agreement: agreement,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn verdicts_partition_the_panel(
        seed in 0u64..1000,
        entity in 0u32..1000,
        truth in prop::bool::ANY,
        wa in 0.0f64..1.0,
        size in 1usize..40,
    ) {
        let panel = Panel::new(seed, size);
        let v = panel.judge(&case(entity, truth, wa));
        prop_assert_eq!(v.panel_size(), size);
        prop_assert!(v.agreement() * 2 >= size);
        prop_assert!(v.agreement() <= size);
    }

    #[test]
    fn judging_is_deterministic(seed in 0u64..1000, entity in 0u32..100, wa in 0.0f64..1.0) {
        let panel = Panel::paper(seed);
        let c = case(entity, true, wa);
        prop_assert_eq!(panel.judge(&c), panel.judge(&c));
    }

    #[test]
    fn perfect_agreement_is_unanimous_and_correct(
        seed in 0u64..500,
        entity in 0u32..100,
        truth in prop::bool::ANY,
    ) {
        let panel = Panel::paper(seed);
        let v = panel.judge(&case(entity, truth, 1.0));
        prop_assert!(v.unanimous());
        prop_assert_eq!(v.majority(), Some(truth));
    }

    #[test]
    fn histogram_is_monotone_and_consistent(
        votes in prop::collection::vec(0usize..=20, 1..64),
    ) {
        let verdicts: Vec<CrowdVerdict> = votes
            .iter()
            .map(|&p| CrowdVerdict { votes_positive: p, votes_negative: 20 - p })
            .collect();
        let hist = agreement_histogram(&verdicts, 11, 20);
        for w in hist.windows(2) {
            prop_assert!(w[1].1 <= w[0].1);
        }
        for &(t, n) in &hist {
            prop_assert_eq!(n, cases_at_or_above(&verdicts, t));
        }
        let mean = mean_agreement(&verdicts);
        prop_assert!((10.0..=20.0).contains(&mean));
    }
}
