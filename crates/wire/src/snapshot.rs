//! The owned snapshot model: what a mined world looks like to the wire
//! layer, stripped of every process-local artifact.
//!
//! The model is deliberately neutral — plain strings, dense `u32` table
//! indexes, raw `f64`s — so the wire crate depends on nothing and the
//! format outlives any refactor of the pipeline's in-memory types.
//! Property references are **indexes into the snapshot's own property
//! table** (section `PROP`), never the process-local interner ids, which
//! depend on thread interleaving and must not reach disk.

/// A subjective property as stored in the snapshot's property table:
/// adverbs in surface order, then the head adjective.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SnapshotProperty {
    /// Preceding adverbs, leftmost first.
    pub adverbs: Vec<String>,
    /// The head adjective.
    pub adjective: String,
}

/// An entity type row of section `TYPE`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotType {
    /// Lowercase type name.
    pub name: String,
    /// Generic nouns denoting the type.
    pub head_nouns: Vec<String>,
    /// Disambiguation cue words.
    pub context_cues: Vec<String>,
}

/// An entity row of section `ENTS`. The row index is the entity id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotEntity {
    /// Canonical display name.
    pub name: String,
    /// Alternative surface forms.
    pub aliases: Vec<String>,
    /// Index into the type table (= the dense `TypeId`).
    pub type_index: u32,
    /// Objective attributes, sorted by key.
    pub attributes: Vec<(String, f64)>,
}

/// One evidence counter row of section `EVID`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvidenceRow {
    /// The entity (row index into `ENTS`).
    pub entity: u32,
    /// Index into the property table.
    pub property: u32,
    /// Positive statement count.
    pub positive: u64,
    /// Negative statement count.
    pub negative: u64,
}

/// One provenance row of section `PROV`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProvenanceRow {
    /// The entity.
    pub entity: u32,
    /// Index into the property table.
    pub property: u32,
    /// Supporting document ids, ascending.
    pub documents: Vec<u64>,
}

/// One fitted-model row of section `MODL`: the parameters and EM
/// telemetry of a (type, property) combination.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelRow {
    /// Index into the type table.
    pub type_index: u32,
    /// Index into the property table.
    pub property: u32,
    /// Fitted author-agreement probability `pA`.
    pub p_agree: f64,
    /// Fitted positive statement rate `np+S`.
    pub rate_pos: f64,
    /// Fitted negative statement rate `np-S`.
    pub rate_neg: f64,
    /// EM iterations actually run.
    pub iterations: u64,
    /// Convergence-reason code (the model crate owns the mapping).
    pub converged: u8,
    /// Mixture log-likelihood of the fitted parameters.
    pub log_likelihood: f64,
    /// Per-iteration expected complete-data log-likelihood trace.
    pub q_trace: Vec<f64>,
    /// Per-iteration parameter-movement trace.
    pub delta_trace: Vec<f64>,
}

/// The polarity code of one decided pair, as stored on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionCode {
    /// No decision (probability exactly ½).
    #[default]
    Unsolved,
    /// The dominant opinion applies the property.
    Positive,
    /// The dominant opinion denies the property.
    Negative,
}

impl DecisionCode {
    /// The two-bit wire code.
    pub fn code(self) -> u8 {
        match self {
            Self::Unsolved => 0,
            Self::Positive => 1,
            Self::Negative => 2,
        }
    }

    /// Decodes a two-bit wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Unsolved),
            1 => Some(Self::Positive),
            2 => Some(Self::Negative),
            _ => None,
        }
    }
}

/// One entity's decision inside a [`DecisionGroupRow`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecisionRow {
    /// The entity.
    pub entity: u32,
    /// The decided polarity.
    pub decision: DecisionCode,
    /// The posterior probability behind it, when the model computed one.
    pub probability: Option<f64>,
}

/// One combination's decisions in section `DECN`. Groups appear in the
/// same order as the `MODL` rows they belong to.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecisionGroupRow {
    /// Index into the type table.
    pub type_index: u32,
    /// Index into the property table.
    pub property: u32,
    /// Decisions for every entity of the type, in entity-table order.
    pub decisions: Vec<DecisionRow>,
}

/// Incremental-mining state carried by the optional `INCR` section: which
/// shards of the source corpus a snapshot has ingested, which quarantined
/// shards still await replay, and the digests an updater checks before
/// merging a delta.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IncrementalState {
    /// The evidence threshold `rho` the snapshot was mined with. An
    /// update must run at the same threshold or the carried-forward
    /// groups would be wrong.
    pub rho: u64,
    /// Digest of the mining configuration (EM grid, extraction window,
    /// threshold — everything except thread count). An updater refuses a
    /// delta mined under a different configuration.
    pub config_digest: u64,
    /// Digest of the corpus identity (preset, seed, region filter) as
    /// supplied by the producer; `0` means unknown (no check possible).
    pub corpus_digest: u64,
    /// Half-open shard ranges `[start, end)` already ingested, sorted,
    /// strictly increasing, and disjoint (adjacent ranges are merged).
    pub ingested: Vec<(u64, u64)>,
    /// Shard ids that were attempted but quarantined — the replay queue.
    /// Sorted, strictly increasing, disjoint from `ingested`.
    pub pending: Vec<u64>,
}

impl IncrementalState {
    /// Inserts a half-open shard range into `ingested`, merging with
    /// overlapping or adjacent ranges so the invariant (sorted, disjoint,
    /// maximally coalesced) holds afterwards. Empty ranges are ignored.
    pub fn ingest_range(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        self.ingested.push((start, end));
        self.ingested.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.ingested.len());
        for &(s, e) in &self.ingested {
            match merged.last_mut() {
                // `s <= last end` merges overlapping AND adjacent ranges
                // (half-open, so end == next start means contiguous).
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.ingested = merged;
    }

    /// Whether shard `shard` lies inside an ingested range.
    pub fn contains(&self, shard: u64) -> bool {
        self.ingested.iter().any(|&(s, e)| s <= shard && shard < e)
    }

    /// Total number of ingested shards.
    pub fn ingested_count(&self) -> u64 {
        self.ingested.iter().map(|&(s, e)| e - s).sum()
    }
}

/// One group fingerprint row of the optional `GRPF` section: a digest of
/// one (type, property) group's evidence, used to report which groups a
/// delta dirtied without replaying the evidence itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupFingerprintRow {
    /// Index into the type table.
    pub type_index: u32,
    /// Index into the property table.
    pub property: u32,
    /// Entities of the type with at least one statement on the property.
    pub entities: u64,
    /// Total statements (positive + negative) in the group.
    pub total: u64,
    /// FNV-1a digest over the group's entity-sorted evidence rows.
    pub fingerprint: u64,
}

/// A complete owned snapshot: the encoder's input and the materialized
/// form of a decode.
///
/// Invariants the encoder relies on for byte-stable output (and
/// [`crate::SnapshotReader`] verifies or preserves):
///
/// - `properties` is deduplicated and sorted (its derived `Ord`), so the
///   same mined world always produces the same table bytes;
/// - `evidence` and `provenance` rows are sorted by
///   `(entity, property)`;
/// - `models` and `decisions` are parallel: same length, same
///   `(type_index, property)` per rank, sorted by that key;
/// - `fingerprints` is sorted by `(type_index, property)`.
///
/// The `incremental` and `fingerprints` fields are optional: `None`/empty
/// values encode to the exact version-1 seven-section byte stream, so
/// snapshots that never touch the incremental pipeline are unchanged.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The property table.
    pub properties: Vec<SnapshotProperty>,
    /// The entity types.
    pub types: Vec<SnapshotType>,
    /// The entities.
    pub entities: Vec<SnapshotEntity>,
    /// Evidence counters.
    pub evidence: Vec<EvidenceRow>,
    /// Provenance sample bound (documents kept per pair).
    pub provenance_sample_size: u64,
    /// Provenance samples.
    pub provenance: Vec<ProvenanceRow>,
    /// Fitted models.
    pub models: Vec<ModelRow>,
    /// Decisions per combination.
    pub decisions: Vec<DecisionGroupRow>,
    /// Incremental-mining state (optional section `INCR`).
    pub incremental: Option<IncrementalState>,
    /// Group fingerprints (optional section `GRPF`); empty = absent.
    pub fingerprints: Vec<GroupFingerprintRow>,
}

/// 64-bit FNV-1a over a byte stream, the digest behind group
/// fingerprints and configuration digests. Stable by definition — the
/// constants are part of the on-disk format.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a little-endian `u64` into the digest.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the group fingerprint table of a snapshot: one row per
/// (type, property) combination with evidence, sorted by
/// `(type_index, property)`, digesting the entity-sorted evidence rows
/// `(entity, positive, negative)` with [`Fnv64`].
///
/// A pure function of the evidence and entity sections — two snapshots
/// with the same evidence always fingerprint identically, regardless of
/// how they were produced (from scratch or by incremental update).
/// Evidence rows naming an out-of-range entity are skipped (snapshot
/// validation elsewhere rejects such rows).
pub fn group_fingerprints(snapshot: &Snapshot) -> Vec<GroupFingerprintRow> {
    use std::collections::BTreeMap;
    struct Acc {
        hash: Fnv64,
        entities: u64,
        total: u64,
    }
    let mut groups: BTreeMap<(u32, u32), Acc> = BTreeMap::new();
    // Evidence is sorted by (entity, property), so within any
    // (type, property) group this pass visits entities in ascending
    // order — exactly the digest order the format specifies.
    for row in &snapshot.evidence {
        let Some(entity) = snapshot.entities.get(row.entity as usize) else {
            continue;
        };
        let acc = groups
            .entry((entity.type_index, row.property))
            .or_insert_with(|| Acc {
                hash: Fnv64::new(),
                entities: 0,
                total: 0,
            });
        acc.hash.write(&row.entity.to_le_bytes());
        acc.hash.write_u64(row.positive);
        acc.hash.write_u64(row.negative);
        acc.entities += 1;
        acc.total += row.positive + row.negative;
    }
    groups
        .into_iter()
        .map(|((type_index, property), acc)| GroupFingerprintRow {
            type_index,
            property,
            entities: acc.entities,
            total: acc.total,
            fingerprint: acc.hash.finish(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_codes_round_trip() {
        for d in [
            DecisionCode::Unsolved,
            DecisionCode::Positive,
            DecisionCode::Negative,
        ] {
            assert_eq!(DecisionCode::from_code(d.code()), Some(d));
        }
        assert_eq!(DecisionCode::from_code(3), None);
        assert_eq!(DecisionCode::from_code(255), None);
    }

    #[test]
    fn ingest_range_merges_overlaps_and_adjacency() {
        let mut state = IncrementalState::default();
        state.ingest_range(4, 6);
        state.ingest_range(0, 2);
        assert_eq!(state.ingested, vec![(0, 2), (4, 6)]);
        state.ingest_range(2, 4); // adjacent on both sides: coalesce all
        assert_eq!(state.ingested, vec![(0, 6)]);
        state.ingest_range(5, 9); // overlap
        assert_eq!(state.ingested, vec![(0, 9)]);
        state.ingest_range(20, 20); // empty: ignored
        assert_eq!(state.ingested, vec![(0, 9)]);
        assert_eq!(state.ingested_count(), 9);
        assert!(state.contains(0) && state.contains(8));
        assert!(!state.contains(9));
    }

    #[test]
    fn group_fingerprints_digest_evidence_per_type_property_group() {
        let mut snapshot = Snapshot {
            types: vec![SnapshotType::default(), SnapshotType::default()],
            entities: vec![
                SnapshotEntity {
                    type_index: 0,
                    ..Default::default()
                },
                SnapshotEntity {
                    type_index: 1,
                    ..Default::default()
                },
            ],
            evidence: vec![
                EvidenceRow {
                    entity: 0,
                    property: 0,
                    positive: 3,
                    negative: 1,
                },
                EvidenceRow {
                    entity: 1,
                    property: 0,
                    positive: 2,
                    negative: 0,
                },
            ],
            ..Default::default()
        };
        let rows = group_fingerprints(&snapshot);
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].type_index, rows[0].property), (0, 0));
        assert_eq!((rows[1].type_index, rows[1].property), (1, 0));
        assert_eq!(rows[0].entities, 1);
        assert_eq!(rows[0].total, 4);
        assert_ne!(rows[0].fingerprint, rows[1].fingerprint);

        // The digest is sensitive to the counts: bump one statement and
        // only that group's fingerprint moves.
        snapshot.evidence[1].positive += 1;
        let changed = group_fingerprints(&snapshot);
        assert_eq!(changed[0].fingerprint, rows[0].fingerprint);
        assert_ne!(changed[1].fingerprint, rows[1].fingerprint);
    }

    #[test]
    fn property_ordering_is_adverbs_then_adjective() {
        let bare = SnapshotProperty {
            adverbs: vec![],
            adjective: "big".into(),
        };
        let very = SnapshotProperty {
            adverbs: vec!["very".into()],
            adjective: "big".into(),
        };
        assert!(bare < very);
    }
}
