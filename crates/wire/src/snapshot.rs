//! The owned snapshot model: what a mined world looks like to the wire
//! layer, stripped of every process-local artifact.
//!
//! The model is deliberately neutral — plain strings, dense `u32` table
//! indexes, raw `f64`s — so the wire crate depends on nothing and the
//! format outlives any refactor of the pipeline's in-memory types.
//! Property references are **indexes into the snapshot's own property
//! table** (section `PROP`), never the process-local interner ids, which
//! depend on thread interleaving and must not reach disk.

/// A subjective property as stored in the snapshot's property table:
/// adverbs in surface order, then the head adjective.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SnapshotProperty {
    /// Preceding adverbs, leftmost first.
    pub adverbs: Vec<String>,
    /// The head adjective.
    pub adjective: String,
}

/// An entity type row of section `TYPE`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotType {
    /// Lowercase type name.
    pub name: String,
    /// Generic nouns denoting the type.
    pub head_nouns: Vec<String>,
    /// Disambiguation cue words.
    pub context_cues: Vec<String>,
}

/// An entity row of section `ENTS`. The row index is the entity id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotEntity {
    /// Canonical display name.
    pub name: String,
    /// Alternative surface forms.
    pub aliases: Vec<String>,
    /// Index into the type table (= the dense `TypeId`).
    pub type_index: u32,
    /// Objective attributes, sorted by key.
    pub attributes: Vec<(String, f64)>,
}

/// One evidence counter row of section `EVID`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvidenceRow {
    /// The entity (row index into `ENTS`).
    pub entity: u32,
    /// Index into the property table.
    pub property: u32,
    /// Positive statement count.
    pub positive: u64,
    /// Negative statement count.
    pub negative: u64,
}

/// One provenance row of section `PROV`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProvenanceRow {
    /// The entity.
    pub entity: u32,
    /// Index into the property table.
    pub property: u32,
    /// Supporting document ids, ascending.
    pub documents: Vec<u64>,
}

/// One fitted-model row of section `MODL`: the parameters and EM
/// telemetry of a (type, property) combination.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelRow {
    /// Index into the type table.
    pub type_index: u32,
    /// Index into the property table.
    pub property: u32,
    /// Fitted author-agreement probability `pA`.
    pub p_agree: f64,
    /// Fitted positive statement rate `np+S`.
    pub rate_pos: f64,
    /// Fitted negative statement rate `np-S`.
    pub rate_neg: f64,
    /// EM iterations actually run.
    pub iterations: u64,
    /// Convergence-reason code (the model crate owns the mapping).
    pub converged: u8,
    /// Mixture log-likelihood of the fitted parameters.
    pub log_likelihood: f64,
    /// Per-iteration expected complete-data log-likelihood trace.
    pub q_trace: Vec<f64>,
    /// Per-iteration parameter-movement trace.
    pub delta_trace: Vec<f64>,
}

/// The polarity code of one decided pair, as stored on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionCode {
    /// No decision (probability exactly ½).
    #[default]
    Unsolved,
    /// The dominant opinion applies the property.
    Positive,
    /// The dominant opinion denies the property.
    Negative,
}

impl DecisionCode {
    /// The two-bit wire code.
    pub fn code(self) -> u8 {
        match self {
            Self::Unsolved => 0,
            Self::Positive => 1,
            Self::Negative => 2,
        }
    }

    /// Decodes a two-bit wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Unsolved),
            1 => Some(Self::Positive),
            2 => Some(Self::Negative),
            _ => None,
        }
    }
}

/// One entity's decision inside a [`DecisionGroupRow`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecisionRow {
    /// The entity.
    pub entity: u32,
    /// The decided polarity.
    pub decision: DecisionCode,
    /// The posterior probability behind it, when the model computed one.
    pub probability: Option<f64>,
}

/// One combination's decisions in section `DECN`. Groups appear in the
/// same order as the `MODL` rows they belong to.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecisionGroupRow {
    /// Index into the type table.
    pub type_index: u32,
    /// Index into the property table.
    pub property: u32,
    /// Decisions for every entity of the type, in entity-table order.
    pub decisions: Vec<DecisionRow>,
}

/// A complete owned snapshot: the encoder's input and the materialized
/// form of a decode.
///
/// Invariants the encoder relies on for byte-stable output (and
/// [`crate::SnapshotReader`] verifies or preserves):
///
/// - `properties` is deduplicated and sorted (its derived `Ord`), so the
///   same mined world always produces the same table bytes;
/// - `evidence` and `provenance` rows are sorted by
///   `(entity, property)`;
/// - `models` and `decisions` are parallel: same length, same
///   `(type_index, property)` per rank, sorted by that key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The property table.
    pub properties: Vec<SnapshotProperty>,
    /// The entity types.
    pub types: Vec<SnapshotType>,
    /// The entities.
    pub entities: Vec<SnapshotEntity>,
    /// Evidence counters.
    pub evidence: Vec<EvidenceRow>,
    /// Provenance sample bound (documents kept per pair).
    pub provenance_sample_size: u64,
    /// Provenance samples.
    pub provenance: Vec<ProvenanceRow>,
    /// Fitted models.
    pub models: Vec<ModelRow>,
    /// Decisions per combination.
    pub decisions: Vec<DecisionGroupRow>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_codes_round_trip() {
        for d in [
            DecisionCode::Unsolved,
            DecisionCode::Positive,
            DecisionCode::Negative,
        ] {
            assert_eq!(DecisionCode::from_code(d.code()), Some(d));
        }
        assert_eq!(DecisionCode::from_code(3), None);
        assert_eq!(DecisionCode::from_code(255), None);
    }

    #[test]
    fn property_ordering_is_adverbs_then_adjective() {
        let bare = SnapshotProperty {
            adverbs: vec![],
            adjective: "big".into(),
        };
        let very = SnapshotProperty {
            adverbs: vec!["very".into()],
            adjective: "big".into(),
        };
        assert!(bare < very);
    }
}
