//! The zero-copy snapshot decoder.
//!
//! [`SnapshotReader::new`] verifies the container in one pass — magic,
//! version, section framing, checksums, canonical order — and stores one
//! borrowed byte span per section. Record access after that is lazy:
//! the per-section iterators ([`SnapshotReader::evidence`] and friends)
//! parse records straight out of the snapshot bytes and hand out borrowed
//! `&str` spans and sub-iterators instead of allocating per record. Every
//! read is bounds-checked; no input can make the decoder panic.

use crate::crc32::crc32;
use crate::cursor::Cursor;
use crate::error::WireError;
use crate::section::{
    SectionTag, CANONICAL_ORDER, KNOWN_ORDER, REQUIRED_SECTIONS, TAG_DECISIONS, TAG_ENTITIES,
    TAG_EVIDENCE, TAG_FINGERPRINTS, TAG_INCREMENTAL, TAG_MODELS, TAG_PROPERTIES, TAG_PROVENANCE,
    TAG_TYPES,
};
use crate::snapshot::{
    DecisionCode, DecisionGroupRow, DecisionRow, EvidenceRow, GroupFingerprintRow,
    IncrementalState, ModelRow, ProvenanceRow, Snapshot, SnapshotEntity, SnapshotProperty,
    SnapshotType,
};
use crate::{FORMAT_VERSION, MAGIC};

/// Positions of the known sections inside [`KNOWN_ORDER`].
const SEC_PROPERTIES: usize = 0;
const SEC_TYPES: usize = 1;
const SEC_ENTITIES: usize = 2;
const SEC_EVIDENCE: usize = 3;
const SEC_PROVENANCE: usize = 4;
const SEC_MODELS: usize = 5;
const SEC_DECISIONS: usize = 6;
const SEC_INCREMENTAL: usize = 7;
const SEC_FINGERPRINTS: usize = 8;

/// Decodes a snapshot buffer into its owned form in one call.
///
/// Shorthand for [`SnapshotReader::new`] followed by
/// [`SnapshotReader::to_snapshot`]; use the reader directly to stream
/// records without materializing the whole world.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, WireError> {
    SnapshotReader::new(bytes)?.to_snapshot()
}

/// A validated, zero-copy view over an encoded snapshot.
///
/// Construction walks the container once (header, frames, CRCs); record
/// payloads are only parsed when the corresponding iterator is consumed.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotReader<'a> {
    version: u16,
    /// Per-section record bytes (payload minus its leading counts),
    /// indexed like [`KNOWN_ORDER`]. The `INCR` slot is unused (its
    /// payload is not count-prefixed; see `incr_body`).
    bodies: [&'a [u8]; 9],
    /// Per-section record counts, already bounded by the payload size.
    counts: [usize; 9],
    provenance_sample_size: u64,
    /// Raw payload of the optional `INCR` section, parsed on demand by
    /// [`SnapshotReader::incremental`].
    incr_body: Option<&'a [u8]>,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the container and returns a reader over it.
    pub fn new(bytes: &'a [u8]) -> Result<Self, WireError> {
        let mut magic = [0u8; 8];
        for (slot, &byte) in magic.iter_mut().zip(bytes.iter()) {
            *slot = byte;
        }
        if bytes.len() < MAGIC.len() || magic != MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let mut cursor = Cursor::new(bytes);
        cursor.take(MAGIC.len(), "magic")?;
        let version = cursor.u16("header version")?;
        if version != FORMAT_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        cursor.u16("header reserved")?; // writers write 0; readers ignore
        let section_count = cursor.u32("header section count")?;

        let mut bodies: [&'a [u8]; 9] = [&[]; 9];
        let mut counts = [0usize; 9];
        let mut provenance_sample_size = 0u64;
        let mut incr_body: Option<&'a [u8]> = None;
        let mut seen = [false; 9];
        let mut next_expected = 0usize;
        for _ in 0..section_count {
            let tag_bytes = cursor.take(4, "section tag")?;
            let tag = SectionTag([tag_bytes[0], tag_bytes[1], tag_bytes[2], tag_bytes[3]]);
            let payload_len = cursor.u64("section length")?;
            let stored = cursor.u32("section checksum")?;
            let available = cursor.remaining();
            let payload_len = match usize::try_from(payload_len) {
                Ok(len) if len <= available => len,
                _ => {
                    return Err(WireError::Truncated {
                        context: "section payload",
                        needed: usize::try_from(payload_len).unwrap_or(usize::MAX),
                        available,
                    })
                }
            };
            let payload = cursor.take(payload_len, "section payload")?;
            let computed = crc32(payload);
            if stored != computed {
                return Err(WireError::CrcMismatch {
                    tag,
                    stored,
                    computed,
                });
            }
            let Some(position) = KNOWN_ORDER.iter().position(|t| *t == tag) else {
                continue; // unknown section: skip (forward compatibility)
            };
            if seen[position] {
                return Err(WireError::DuplicateSection { tag });
            }
            if position < next_expected {
                return Err(WireError::OutOfOrderSection { tag });
            }
            // Jumping past a *required* section is an order violation;
            // skipped optional sections are simply absent.
            if position > next_expected && next_expected < REQUIRED_SECTIONS {
                return Err(WireError::OutOfOrderSection { tag });
            }
            if position == SEC_INCREMENTAL {
                incr_body = Some(payload);
            } else {
                let mut payload_cursor = Cursor::new(payload);
                if position == SEC_PROVENANCE {
                    provenance_sample_size = payload_cursor.varint("provenance sample size")?;
                }
                counts[position] = payload_cursor.count(COUNT_CONTEXTS[position])?;
                bodies[position] =
                    payload_cursor.take(payload_cursor.remaining(), "section body")?;
            }
            seen[position] = true;
            next_expected = position + 1;
        }
        if next_expected < CANONICAL_ORDER.len() {
            return Err(WireError::MissingSection {
                tag: CANONICAL_ORDER[next_expected],
            });
        }
        if !cursor.is_empty() {
            return Err(WireError::TrailingBytes {
                count: cursor.remaining(),
            });
        }
        Ok(Self {
            version,
            bodies,
            counts,
            provenance_sample_size,
            incr_body,
        })
    }

    /// The format version the header carries.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The provenance sample bound stored in section `PROV`.
    pub fn provenance_sample_size(&self) -> u64 {
        self.provenance_sample_size
    }

    /// Iterates the property table (section `PROP`).
    pub fn properties(&self) -> PropertyIter<'a> {
        PropertyIter {
            cursor: Cursor::new(self.bodies[SEC_PROPERTIES]),
            remaining: self.counts[SEC_PROPERTIES],
            finished: false,
        }
    }

    /// Iterates the entity types (section `TYPE`).
    pub fn types(&self) -> TypeIter<'a> {
        TypeIter {
            cursor: Cursor::new(self.bodies[SEC_TYPES]),
            remaining: self.counts[SEC_TYPES],
            finished: false,
        }
    }

    /// Iterates the entities (section `ENTS`).
    pub fn entities(&self) -> EntityIter<'a> {
        EntityIter {
            cursor: Cursor::new(self.bodies[SEC_ENTITIES]),
            remaining: self.counts[SEC_ENTITIES],
            finished: false,
        }
    }

    /// Iterates the evidence counters (section `EVID`).
    pub fn evidence(&self) -> EvidenceIter<'a> {
        EvidenceIter {
            cursor: Cursor::new(self.bodies[SEC_EVIDENCE]),
            remaining: self.counts[SEC_EVIDENCE],
            finished: false,
        }
    }

    /// Iterates the provenance samples (section `PROV`).
    pub fn provenance(&self) -> ProvenanceIter<'a> {
        ProvenanceIter {
            cursor: Cursor::new(self.bodies[SEC_PROVENANCE]),
            remaining: self.counts[SEC_PROVENANCE],
            finished: false,
        }
    }

    /// Iterates the fitted models (section `MODL`).
    pub fn models(&self) -> ModelIter<'a> {
        ModelIter {
            cursor: Cursor::new(self.bodies[SEC_MODELS]),
            remaining: self.counts[SEC_MODELS],
            finished: false,
        }
    }

    /// Iterates the decision groups (section `DECN`).
    pub fn decisions(&self) -> DecisionGroupIter<'a> {
        DecisionGroupIter {
            cursor: Cursor::new(self.bodies[SEC_DECISIONS]),
            remaining: self.counts[SEC_DECISIONS],
            finished: false,
        }
    }

    /// Whether the snapshot carries the optional `INCR` section.
    pub fn has_incremental(&self) -> bool {
        self.incr_body.is_some()
    }

    /// Parses and validates the optional incremental-state section
    /// (`INCR`). `Ok(None)` when the snapshot does not carry one.
    pub fn incremental(&self) -> Result<Option<IncrementalState>, WireError> {
        let Some(body) = self.incr_body else {
            return Ok(None);
        };
        let mut cursor = Cursor::new(body);
        let rho = cursor.varint("incremental rho")?;
        let config_digest = cursor.u64("config digest")?;
        let corpus_digest = cursor.u64("corpus digest")?;
        let range_count = cursor.count("ingested range count")?;
        let mut ingested = Vec::with_capacity(range_count);
        for _ in 0..range_count {
            let start = cursor.varint("ingested range start")?;
            let end = cursor.varint("ingested range end")?;
            if start >= end {
                return Err(WireError::BadRecord {
                    section: TAG_INCREMENTAL,
                    detail: "empty ingested range",
                });
            }
            if ingested
                .last()
                .is_some_and(|&(_, prev_end)| start <= prev_end)
            {
                return Err(WireError::BadRecord {
                    section: TAG_INCREMENTAL,
                    detail: "ingested ranges not sorted, disjoint, and merged",
                });
            }
            ingested.push((start, end));
        }
        let pending_count = cursor.count("pending shard count")?;
        let mut pending = Vec::with_capacity(pending_count);
        for _ in 0..pending_count {
            let shard = cursor.varint("pending shard")?;
            if pending.last().is_some_and(|&prev| shard <= prev) {
                return Err(WireError::BadRecord {
                    section: TAG_INCREMENTAL,
                    detail: "pending shards not strictly increasing",
                });
            }
            pending.push(shard);
        }
        if !cursor.is_empty() {
            return Err(WireError::BadRecord {
                section: TAG_INCREMENTAL,
                detail: "trailing bytes in section",
            });
        }
        Ok(Some(IncrementalState {
            rho,
            config_digest,
            corpus_digest,
            ingested,
            pending,
        }))
    }

    /// Iterates the group fingerprints (optional section `GRPF`); empty
    /// when the snapshot does not carry one.
    pub fn fingerprints(&self) -> FingerprintIter<'a> {
        FingerprintIter {
            cursor: Cursor::new(self.bodies[SEC_FINGERPRINTS]),
            remaining: self.counts[SEC_FINGERPRINTS],
            finished: false,
            last_key: None,
        }
    }

    /// Materializes the whole snapshot into its owned form, validating
    /// every record (including string payloads the lazy iterators defer).
    pub fn to_snapshot(&self) -> Result<Snapshot, WireError> {
        let mut properties = Vec::with_capacity(self.counts[SEC_PROPERTIES]);
        for record in self.properties() {
            let record = record?;
            let mut adverbs = Vec::with_capacity(record.adverbs.len());
            for adverb in record.adverbs {
                adverbs.push(adverb?.to_string());
            }
            properties.push(SnapshotProperty {
                adverbs,
                adjective: record.adjective.to_string(),
            });
        }

        let mut types = Vec::with_capacity(self.counts[SEC_TYPES]);
        for record in self.types() {
            let record = record?;
            let mut head_nouns = Vec::with_capacity(record.head_nouns.len());
            for noun in record.head_nouns {
                head_nouns.push(noun?.to_string());
            }
            let mut context_cues = Vec::with_capacity(record.context_cues.len());
            for cue in record.context_cues {
                context_cues.push(cue?.to_string());
            }
            types.push(SnapshotType {
                name: record.name.to_string(),
                head_nouns,
                context_cues,
            });
        }

        let mut entities = Vec::with_capacity(self.counts[SEC_ENTITIES]);
        for record in self.entities() {
            let record = record?;
            let mut aliases = Vec::with_capacity(record.aliases.len());
            for alias in record.aliases {
                aliases.push(alias?.to_string());
            }
            let mut attributes = Vec::with_capacity(record.attributes.len());
            for attribute in record.attributes {
                let (key, value) = attribute?;
                attributes.push((key.to_string(), value));
            }
            entities.push(SnapshotEntity {
                name: record.name.to_string(),
                aliases,
                type_index: record.type_index,
                attributes,
            });
        }

        let mut evidence = Vec::with_capacity(self.counts[SEC_EVIDENCE]);
        for row in self.evidence() {
            evidence.push(row?);
        }

        let mut provenance = Vec::with_capacity(self.counts[SEC_PROVENANCE]);
        for record in self.provenance() {
            let record = record?;
            provenance.push(ProvenanceRow {
                entity: record.entity,
                property: record.property,
                documents: record.documents.collect(),
            });
        }

        let mut models = Vec::with_capacity(self.counts[SEC_MODELS]);
        for record in self.models() {
            let record = record?;
            models.push(ModelRow {
                type_index: record.type_index,
                property: record.property,
                p_agree: record.p_agree,
                rate_pos: record.rate_pos,
                rate_neg: record.rate_neg,
                iterations: record.iterations,
                converged: record.converged,
                log_likelihood: record.log_likelihood,
                q_trace: record.q_trace.collect(),
                delta_trace: record.delta_trace.collect(),
            });
        }

        let mut decisions = Vec::with_capacity(self.counts[SEC_DECISIONS]);
        for record in self.decisions() {
            let record = record?;
            let mut rows = Vec::with_capacity(record.decisions.len());
            for row in record.decisions {
                rows.push(row?);
            }
            decisions.push(DecisionGroupRow {
                type_index: record.type_index,
                property: record.property,
                decisions: rows,
            });
        }

        let incremental = self.incremental()?;

        let mut fingerprints = Vec::with_capacity(self.counts[SEC_FINGERPRINTS]);
        for row in self.fingerprints() {
            fingerprints.push(row?);
        }

        Ok(Snapshot {
            properties,
            types,
            entities,
            evidence,
            provenance_sample_size: self.provenance_sample_size,
            provenance,
            models,
            decisions,
            incremental,
            fingerprints,
        })
    }
}

/// Count-field contexts, indexed like [`KNOWN_ORDER`]. The `INCR` slot
/// is a placeholder — that payload is not count-prefixed.
const COUNT_CONTEXTS: [&str; 9] = [
    "property count",
    "type count",
    "entity count",
    "evidence row count",
    "provenance row count",
    "model row count",
    "decision group count",
    "incremental state",
    "fingerprint row count",
];

/// A lazy list of length-prefixed strings borrowed from the snapshot.
#[derive(Debug, Clone)]
pub struct StrList<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    context: &'static str,
}

impl<'a> StrList<'a> {
    fn new(span: &'a [u8], count: usize, context: &'static str) -> Self {
        Self {
            cursor: Cursor::new(span),
            remaining: count,
            context,
        }
    }

    /// Strings left to yield.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// Whether the list is exhausted (or was empty).
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl<'a> Iterator for StrList<'a> {
    type Item = Result<&'a str, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.cursor.str(self.context) {
            Ok(s) => Some(Ok(s)),
            Err(e) => {
                self.remaining = 0;
                Some(Err(e))
            }
        }
    }
}

/// A lazy list of varint `u64`s borrowed from the snapshot. Framing was
/// validated when the owning record was delimited, so iteration is
/// infallible.
#[derive(Debug, Clone)]
pub struct U64List<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    context: &'static str,
}

impl<'a> U64List<'a> {
    fn new(span: &'a [u8], count: usize, context: &'static str) -> Self {
        Self {
            cursor: Cursor::new(span),
            remaining: count,
            context,
        }
    }

    /// Values left to yield.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// Whether the list is exhausted (or was empty).
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl<'a> Iterator for U64List<'a> {
    type Item = u64;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.cursor.varint(self.context) {
            Ok(v) => Some(v),
            Err(_) => {
                // Unreachable: the span was skimmed before being handed out.
                self.remaining = 0;
                None
            }
        }
    }
}

/// A lazy list of `f64`s borrowed from the snapshot. The span is exactly
/// eight bytes per value, so iteration is infallible.
#[derive(Debug, Clone)]
pub struct F64List<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
}

impl<'a> F64List<'a> {
    fn new(span: &'a [u8], count: usize) -> Self {
        Self {
            cursor: Cursor::new(span),
            remaining: count,
        }
    }

    /// Values left to yield.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// Whether the list is exhausted (or was empty).
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl<'a> Iterator for F64List<'a> {
    type Item = f64;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.cursor.f64("trace value") {
            Ok(v) => Some(v),
            Err(_) => {
                // Unreachable: the span was sized when the record was cut.
                self.remaining = 0;
                None
            }
        }
    }
}

/// A lazy list of `(key, value)` attribute pairs borrowed from the
/// snapshot.
#[derive(Debug, Clone)]
pub struct AttrList<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
}

impl<'a> AttrList<'a> {
    fn new(span: &'a [u8], count: usize) -> Self {
        Self {
            cursor: Cursor::new(span),
            remaining: count,
        }
    }

    /// Pairs left to yield.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// Whether the list is exhausted (or was empty).
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl<'a> Iterator for AttrList<'a> {
    type Item = Result<(&'a str, f64), WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let result = self
            .cursor
            .str("attribute key")
            .and_then(|key| self.cursor.f64("attribute value").map(|value| (key, value)));
        match result {
            Ok(pair) => Some(Ok(pair)),
            Err(e) => {
                self.remaining = 0;
                Some(Err(e))
            }
        }
    }
}

/// One property-table record, borrowed from section `PROP`.
#[derive(Debug, Clone)]
pub struct PropertyRecord<'a> {
    /// Preceding adverbs, leftmost first.
    pub adverbs: StrList<'a>,
    /// The head adjective.
    pub adjective: &'a str,
}

/// Iterator over section `PROP`.
#[derive(Debug, Clone)]
pub struct PropertyIter<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    finished: bool,
}

impl<'a> Iterator for PropertyIter<'a> {
    type Item = Result<PropertyRecord<'a>, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        next_record(
            &mut self.cursor,
            &mut self.remaining,
            &mut self.finished,
            TAG_PROPERTIES,
            |cursor| {
                let adverbs = skim_str_list(cursor, "adverb count", "adverb")?;
                let adjective = cursor.str("adjective")?;
                Ok(PropertyRecord { adverbs, adjective })
            },
        )
    }
}

/// One entity-type record, borrowed from section `TYPE`.
#[derive(Debug, Clone)]
pub struct TypeRecord<'a> {
    /// Lowercase type name.
    pub name: &'a str,
    /// Generic nouns denoting the type.
    pub head_nouns: StrList<'a>,
    /// Disambiguation cue words.
    pub context_cues: StrList<'a>,
}

/// Iterator over section `TYPE`.
#[derive(Debug, Clone)]
pub struct TypeIter<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    finished: bool,
}

impl<'a> Iterator for TypeIter<'a> {
    type Item = Result<TypeRecord<'a>, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        next_record(
            &mut self.cursor,
            &mut self.remaining,
            &mut self.finished,
            TAG_TYPES,
            |cursor| {
                let name = cursor.str("type name")?;
                let head_nouns = skim_str_list(cursor, "head noun count", "head noun")?;
                let context_cues = skim_str_list(cursor, "context cue count", "context cue")?;
                Ok(TypeRecord {
                    name,
                    head_nouns,
                    context_cues,
                })
            },
        )
    }
}

/// One entity record, borrowed from section `ENTS`.
#[derive(Debug, Clone)]
pub struct EntityRecord<'a> {
    /// Canonical display name.
    pub name: &'a str,
    /// Alternative surface forms.
    pub aliases: StrList<'a>,
    /// Index into the type table.
    pub type_index: u32,
    /// Objective attributes, sorted by key.
    pub attributes: AttrList<'a>,
}

/// Iterator over section `ENTS`.
#[derive(Debug, Clone)]
pub struct EntityIter<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    finished: bool,
}

impl<'a> Iterator for EntityIter<'a> {
    type Item = Result<EntityRecord<'a>, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        next_record(
            &mut self.cursor,
            &mut self.remaining,
            &mut self.finished,
            TAG_ENTITIES,
            |cursor| {
                let name = cursor.str("entity name")?;
                let aliases = skim_str_list(cursor, "alias count", "alias")?;
                let type_index = cursor.u32("entity type index")?;
                let attribute_count = cursor.count("attribute count")?;
                let mark = *cursor;
                for _ in 0..attribute_count {
                    cursor.skip_str("attribute key")?;
                    cursor.take(8, "attribute value")?;
                }
                let span = cursor.span_since(&mark);
                Ok(EntityRecord {
                    name,
                    aliases,
                    type_index,
                    attributes: AttrList::new(span, attribute_count),
                })
            },
        )
    }
}

/// Iterator over section `EVID`. Rows are plain `Copy` values — nothing
/// to borrow.
#[derive(Debug, Clone)]
pub struct EvidenceIter<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    finished: bool,
}

impl<'a> Iterator for EvidenceIter<'a> {
    type Item = Result<EvidenceRow, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        next_record(
            &mut self.cursor,
            &mut self.remaining,
            &mut self.finished,
            TAG_EVIDENCE,
            |cursor| {
                Ok(EvidenceRow {
                    entity: cursor.u32("evidence entity")?,
                    property: cursor.u32("evidence property")?,
                    positive: cursor.varint("positive count")?,
                    negative: cursor.varint("negative count")?,
                })
            },
        )
    }
}

/// One provenance record, borrowed from section `PROV`.
#[derive(Debug, Clone)]
pub struct ProvenanceRecord<'a> {
    /// The entity.
    pub entity: u32,
    /// Index into the property table.
    pub property: u32,
    /// Supporting document ids, ascending.
    pub documents: U64List<'a>,
}

/// Iterator over section `PROV`.
#[derive(Debug, Clone)]
pub struct ProvenanceIter<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    finished: bool,
}

impl<'a> Iterator for ProvenanceIter<'a> {
    type Item = Result<ProvenanceRecord<'a>, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        next_record(
            &mut self.cursor,
            &mut self.remaining,
            &mut self.finished,
            TAG_PROVENANCE,
            |cursor| {
                let entity = cursor.u32("provenance entity")?;
                let property = cursor.u32("provenance property")?;
                let count = cursor.count("document count")?;
                let mark = *cursor;
                for _ in 0..count {
                    cursor.varint("document id")?;
                }
                let span = cursor.span_since(&mark);
                Ok(ProvenanceRecord {
                    entity,
                    property,
                    documents: U64List::new(span, count, "document id"),
                })
            },
        )
    }
}

/// One fitted-model record, borrowed from section `MODL`.
#[derive(Debug, Clone)]
pub struct ModelRecord<'a> {
    /// Index into the type table.
    pub type_index: u32,
    /// Index into the property table.
    pub property: u32,
    /// Fitted author-agreement probability.
    pub p_agree: f64,
    /// Fitted positive statement rate.
    pub rate_pos: f64,
    /// Fitted negative statement rate.
    pub rate_neg: f64,
    /// EM iterations actually run.
    pub iterations: u64,
    /// Convergence-reason code.
    pub converged: u8,
    /// Mixture log-likelihood of the fitted parameters.
    pub log_likelihood: f64,
    /// Per-iteration Q trace.
    pub q_trace: F64List<'a>,
    /// Per-iteration parameter-movement trace.
    pub delta_trace: F64List<'a>,
}

/// Iterator over section `MODL`.
#[derive(Debug, Clone)]
pub struct ModelIter<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    finished: bool,
}

impl<'a> Iterator for ModelIter<'a> {
    type Item = Result<ModelRecord<'a>, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        next_record(
            &mut self.cursor,
            &mut self.remaining,
            &mut self.finished,
            TAG_MODELS,
            |cursor| {
                let type_index = cursor.u32("model type index")?;
                let property = cursor.u32("model property")?;
                let p_agree = cursor.f64("p_agree")?;
                let rate_pos = cursor.f64("rate_pos")?;
                let rate_neg = cursor.f64("rate_neg")?;
                let iterations = cursor.varint("iteration count")?;
                let converged = cursor.u8("convergence code")?;
                let log_likelihood = cursor.f64("log likelihood")?;
                let q_trace = skim_f64_list(cursor, "q trace count", "q trace")?;
                let delta_trace = skim_f64_list(cursor, "delta trace count", "delta trace")?;
                Ok(ModelRecord {
                    type_index,
                    property,
                    p_agree,
                    rate_pos,
                    rate_neg,
                    iterations,
                    converged,
                    log_likelihood,
                    q_trace,
                    delta_trace,
                })
            },
        )
    }
}

/// A lazy list of decision rows borrowed from section `DECN`.
#[derive(Debug, Clone)]
pub struct DecisionList<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
}

impl<'a> DecisionList<'a> {
    /// Rows left to yield.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// Whether the list is exhausted (or was empty).
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

/// Parses one decision row at `cursor`.
fn parse_decision(cursor: &mut Cursor<'_>) -> Result<DecisionRow, WireError> {
    let flag = cursor.u8("decision flag")?;
    let code = flag & 0x7f;
    let Some(decision) = DecisionCode::from_code(code) else {
        return Err(WireError::BadRecord {
            section: TAG_DECISIONS,
            detail: "unknown decision code",
        });
    };
    let probability = if flag & 0x80 != 0 {
        Some(cursor.f64("decision probability")?)
    } else {
        None
    };
    let entity = cursor.u32("decision entity")?;
    Ok(DecisionRow {
        entity,
        decision,
        probability,
    })
}

impl<'a> Iterator for DecisionList<'a> {
    type Item = Result<DecisionRow, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match parse_decision(&mut self.cursor) {
            Ok(row) => Some(Ok(row)),
            Err(e) => {
                self.remaining = 0;
                Some(Err(e))
            }
        }
    }
}

/// One decision-group record, borrowed from section `DECN`.
#[derive(Debug, Clone)]
pub struct DecisionGroupRecord<'a> {
    /// Index into the type table.
    pub type_index: u32,
    /// Index into the property table.
    pub property: u32,
    /// Decisions for every entity of the type, in entity-table order.
    pub decisions: DecisionList<'a>,
}

/// Iterator over section `DECN`.
#[derive(Debug, Clone)]
pub struct DecisionGroupIter<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    finished: bool,
}

impl<'a> Iterator for DecisionGroupIter<'a> {
    type Item = Result<DecisionGroupRecord<'a>, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        next_record(
            &mut self.cursor,
            &mut self.remaining,
            &mut self.finished,
            TAG_DECISIONS,
            |cursor| {
                let type_index = cursor.u32("group type index")?;
                let property = cursor.u32("group property")?;
                let count = cursor.count("decision count")?;
                let mark = *cursor;
                for _ in 0..count {
                    parse_decision(cursor)?;
                }
                let span = cursor.span_since(&mark);
                Ok(DecisionGroupRecord {
                    type_index,
                    property,
                    decisions: DecisionList {
                        cursor: Cursor::new(span),
                        remaining: count,
                    },
                })
            },
        )
    }
}

/// Iterator over the optional section `GRPF`. Rows are plain `Copy`
/// values; the iterator additionally enforces the sort invariant
/// (ascending `(type_index, property)`, no duplicates).
#[derive(Debug, Clone)]
pub struct FingerprintIter<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    finished: bool,
    last_key: Option<(u32, u32)>,
}

impl<'a> Iterator for FingerprintIter<'a> {
    type Item = Result<GroupFingerprintRow, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        let last_key = &mut self.last_key;
        next_record(
            &mut self.cursor,
            &mut self.remaining,
            &mut self.finished,
            TAG_FINGERPRINTS,
            |cursor| {
                let type_index = cursor.u32("fingerprint type index")?;
                let property = cursor.u32("fingerprint property")?;
                let key = (type_index, property);
                if last_key.is_some_and(|prev| key <= prev) {
                    return Err(WireError::BadRecord {
                        section: TAG_FINGERPRINTS,
                        detail: "fingerprint rows out of order",
                    });
                }
                *last_key = Some(key);
                Ok(GroupFingerprintRow {
                    type_index,
                    property,
                    entities: cursor.varint("fingerprint entity count")?,
                    total: cursor.varint("fingerprint statement total")?,
                    fingerprint: cursor.u64("fingerprint digest")?,
                })
            },
        )
    }
}

/// Shared record-iterator step: yields the next record, a trailing-bytes
/// error once the declared count is exhausted but bytes remain, or `None`.
/// Any parse error poisons the iterator so it cannot yield further items.
fn next_record<'a, T>(
    cursor: &mut Cursor<'a>,
    remaining: &mut usize,
    finished: &mut bool,
    section: SectionTag,
    parse: impl FnOnce(&mut Cursor<'a>) -> Result<T, WireError>,
) -> Option<Result<T, WireError>> {
    if *finished {
        return None;
    }
    if *remaining == 0 {
        *finished = true;
        if !cursor.is_empty() {
            return Some(Err(WireError::BadRecord {
                section,
                detail: "trailing bytes in section",
            }));
        }
        return None;
    }
    *remaining -= 1;
    match parse(cursor) {
        Ok(record) => Some(Ok(record)),
        Err(e) => {
            *finished = true;
            Some(Err(e))
        }
    }
}

/// Skims a string list (validating framing, deferring UTF-8) and returns
/// a lazy iterator over its span.
fn skim_str_list<'a>(
    cursor: &mut Cursor<'a>,
    count_context: &'static str,
    item_context: &'static str,
) -> Result<StrList<'a>, WireError> {
    let count = cursor.count(count_context)?;
    let mark = *cursor;
    for _ in 0..count {
        cursor.skip_str(item_context)?;
    }
    let span = cursor.span_since(&mark);
    Ok(StrList::new(span, count, item_context))
}

/// Takes a fixed-width `f64` list and returns a lazy iterator over it.
fn skim_f64_list<'a>(
    cursor: &mut Cursor<'a>,
    count_context: &'static str,
    span_context: &'static str,
) -> Result<F64List<'a>, WireError> {
    let count = cursor.count(count_context)?;
    let span = cursor.take(count.saturating_mul(8), span_context)?;
    Ok(F64List::new(span, count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{put_u16, put_u32, put_u64, put_varint};
    use crate::encode::encode;
    use crate::snapshot::{DecisionGroupRow, DecisionRow, EvidenceRow, SnapshotProperty};

    /// A container holding the given `(tag, payload)` frames.
    fn container(sections: &[([u8; 4], Vec<u8>)]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, FORMAT_VERSION);
        put_u16(&mut out, 0);
        put_u32(&mut out, sections.len() as u32);
        for (tag, payload) in sections {
            out.extend_from_slice(tag);
            put_u64(&mut out, payload.len() as u64);
            put_u32(&mut out, crc32(payload));
            out.extend_from_slice(payload);
        }
        out
    }

    /// The seven canonical frames of an empty world.
    fn empty_sections() -> Vec<([u8; 4], Vec<u8>)> {
        vec![
            (*b"PROP", vec![0]),
            (*b"TYPE", vec![0]),
            (*b"ENTS", vec![0]),
            (*b"EVID", vec![0]),
            (*b"PROV", vec![0, 0]),
            (*b"MODL", vec![0]),
            (*b"DECN", vec![0]),
        ]
    }

    fn sample() -> Snapshot {
        Snapshot {
            properties: vec![
                SnapshotProperty {
                    adverbs: vec![],
                    adjective: "big".into(),
                },
                SnapshotProperty {
                    adverbs: vec!["very".into()],
                    adjective: "big".into(),
                },
            ],
            types: vec![SnapshotType {
                name: "city".into(),
                head_nouns: vec!["city".into(), "town".into()],
                context_cues: vec!["mayor".into()],
            }],
            entities: vec![SnapshotEntity {
                name: "Paris".into(),
                aliases: vec!["Lutetia".into()],
                type_index: 0,
                attributes: vec![("population".into(), 2.1e6)],
            }],
            evidence: vec![EvidenceRow {
                entity: 0,
                property: 0,
                positive: 12,
                negative: 3,
            }],
            provenance_sample_size: 16,
            provenance: vec![ProvenanceRow {
                entity: 0,
                property: 0,
                documents: vec![5, 900, 90_001],
            }],
            models: vec![ModelRow {
                type_index: 0,
                property: 0,
                p_agree: 0.9,
                rate_pos: 2.5,
                rate_neg: 0.25,
                iterations: 7,
                converged: 0,
                log_likelihood: -42.5,
                q_trace: vec![-50.0, -43.0],
                delta_trace: vec![0.5, 0.01],
            }],
            decisions: vec![DecisionGroupRow {
                type_index: 0,
                property: 0,
                decisions: vec![
                    DecisionRow {
                        entity: 0,
                        decision: DecisionCode::Positive,
                        probability: Some(0.97),
                    },
                    DecisionRow {
                        entity: 1,
                        decision: DecisionCode::Unsolved,
                        probability: None,
                    },
                ],
            }],
            incremental: None,
            fingerprints: vec![],
        }
    }

    /// The sample world with incremental state and fingerprints attached.
    fn incremental_sample() -> Snapshot {
        let mut snapshot = sample();
        snapshot.incremental = Some(IncrementalState {
            rho: 40,
            config_digest: 0xdead_beef_cafe_f00d,
            corpus_digest: 0x1234_5678_9abc_def0,
            ingested: vec![(0, 3), (5, 8)],
            pending: vec![3, 4],
        });
        snapshot.fingerprints = crate::snapshot::group_fingerprints(&snapshot);
        snapshot
    }

    #[test]
    fn round_trip_is_value_and_byte_identical() {
        let snapshot = sample();
        let bytes = encode(&snapshot);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
        assert_eq!(encode(&decoded), bytes);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snapshot = Snapshot::default();
        let bytes = encode(&snapshot);
        assert_eq!(decode(&bytes).unwrap(), snapshot);
        // The handcrafted empty container is the same thing.
        assert_eq!(bytes, container(&empty_sections()));
    }

    #[test]
    fn bad_magic_is_reported_with_what_was_found() {
        assert_eq!(
            SnapshotReader::new(b"NOTWIRE!rest").map(|_| ()),
            Err(WireError::BadMagic {
                found: *b"NOTWIRE!"
            })
        );
        // Shorter than the magic itself: zero-padded report.
        assert_eq!(
            SnapshotReader::new(b"SUR").map(|_| ()),
            Err(WireError::BadMagic {
                found: *b"SUR\0\0\0\0\0"
            })
        );
        assert_eq!(
            SnapshotReader::new(b"").map(|_| ()),
            Err(WireError::BadMagic { found: [0; 8] })
        );
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = encode(&Snapshot::default());
        bytes[8] = 0x63; // version 0x0063
        assert_eq!(
            SnapshotReader::new(&bytes).map(|_| ()),
            Err(WireError::UnsupportedVersion { found: 0x63 })
        );
    }

    #[test]
    fn truncation_at_every_prefix_is_a_typed_error() {
        let bytes = encode(&sample());
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).expect_err("prefix decoded");
            match err {
                WireError::BadMagic { .. }
                | WireError::Truncated { .. }
                | WireError::CrcMismatch { .. }
                | WireError::MissingSection { .. } => {}
                other => panic!("prefix of {len} bytes gave unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn crc_mismatch_names_the_section() {
        let bytes = encode(&sample());
        // Flip one byte inside the first section's payload (header is
        // 16 bytes, frame is 16 bytes, payload follows).
        let mut damaged = bytes.clone();
        damaged[32] ^= 0x01;
        match SnapshotReader::new(&damaged) {
            Err(WireError::CrcMismatch { tag, .. }) => assert_eq!(tag, TAG_PROPERTIES),
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_section_is_rejected() {
        let mut sections = empty_sections();
        sections.push((*b"DECN", vec![0]));
        assert_eq!(
            SnapshotReader::new(&container(&sections)).map(|_| ()),
            Err(WireError::DuplicateSection { tag: TAG_DECISIONS })
        );
    }

    #[test]
    fn missing_section_names_the_first_absent_tag() {
        let mut sections = empty_sections();
        sections.remove(4); // drop PROV
        assert_eq!(
            SnapshotReader::new(&container(&sections)).map(|_| ()),
            Err(WireError::OutOfOrderSection { tag: TAG_MODELS })
        );
        sections.truncate(4); // PROP..EVID only
        assert_eq!(
            SnapshotReader::new(&container(&sections)).map(|_| ()),
            Err(WireError::MissingSection {
                tag: TAG_PROVENANCE
            })
        );
        assert_eq!(
            SnapshotReader::new(&container(&[])).map(|_| ()),
            Err(WireError::MissingSection {
                tag: TAG_PROPERTIES
            })
        );
    }

    #[test]
    fn out_of_order_sections_are_rejected() {
        let mut sections = empty_sections();
        sections.swap(0, 1);
        assert_eq!(
            SnapshotReader::new(&container(&sections)).map(|_| ()),
            Err(WireError::OutOfOrderSection { tag: TAG_TYPES })
        );
    }

    #[test]
    fn trailing_bytes_after_last_section_are_rejected() {
        let mut bytes = container(&empty_sections());
        bytes.extend_from_slice(&[1, 2, 3]);
        // The header still says 7 sections, so the tail is garbage.
        assert_eq!(
            SnapshotReader::new(&bytes).map(|_| ()),
            Err(WireError::TrailingBytes { count: 3 })
        );
    }

    #[test]
    fn unknown_sections_are_skipped_for_forward_compat() {
        let mut sections = empty_sections();
        sections.insert(3, (*b"XTRA", vec![9, 9, 9]));
        sections.push((*b"ZEND", vec![]));
        let bytes = container(&sections);
        let reader = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(reader.to_snapshot().unwrap(), Snapshot::default());
    }

    #[test]
    fn section_trailing_bytes_are_a_bad_record() {
        let mut sections = empty_sections();
        sections[3].1.push(0xaa); // EVID declares 0 rows but has a byte
        let bytes = container(&sections);
        let reader = SnapshotReader::new(&bytes).unwrap();
        let err = reader.to_snapshot().expect_err("decoded");
        assert_eq!(
            err,
            WireError::BadRecord {
                section: TAG_EVIDENCE,
                detail: "trailing bytes in section",
            }
        );
    }

    #[test]
    fn impossible_record_count_is_rejected_without_allocating() {
        let mut sections = empty_sections();
        // EVID claims u64::MAX rows in a 10-byte payload.
        let mut payload = Vec::new();
        put_varint(&mut payload, u64::MAX);
        sections[3].1 = payload;
        assert_eq!(
            SnapshotReader::new(&container(&sections)).map(|_| ()),
            Err(WireError::BadVarint {
                context: "evidence row count"
            })
        );
    }

    #[test]
    fn unknown_decision_code_is_a_bad_record() {
        let mut sections = empty_sections();
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // one group
        put_u32(&mut payload, 0); // type index
        put_u32(&mut payload, 0); // property
        put_varint(&mut payload, 1); // one decision
        payload.push(0x03); // no such code
        put_u32(&mut payload, 0); // entity
        sections[6].1 = payload;
        let bytes = container(&sections);
        let reader = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(
            reader.to_snapshot().expect_err("decoded"),
            WireError::BadRecord {
                section: TAG_DECISIONS,
                detail: "unknown decision code",
            }
        );
    }

    #[test]
    fn invalid_utf8_is_deferred_to_string_access() {
        let mut sections = empty_sections();
        // One type whose sole head noun is invalid UTF-8; name is fine.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // one type
        let name = "city";
        put_varint(&mut payload, name.len() as u64);
        payload.extend_from_slice(name.as_bytes());
        put_varint(&mut payload, 1); // one head noun
        put_varint(&mut payload, 2);
        payload.extend_from_slice(&[0xff, 0xfe]);
        put_varint(&mut payload, 0); // no cues
        sections[1].1 = payload;
        let bytes = container(&sections);
        let reader = SnapshotReader::new(&bytes).unwrap();
        // The record itself parses (framing is sound)...
        let record = reader.types().next().unwrap().unwrap();
        assert_eq!(record.name, "city");
        // ...but reading the noun surfaces the typed error.
        assert_eq!(
            record.head_nouns.clone().next().unwrap(),
            Err(WireError::BadUtf8 {
                context: "head noun"
            })
        );
        assert_eq!(
            reader.to_snapshot().expect_err("materialized"),
            WireError::BadUtf8 {
                context: "head noun"
            }
        );
    }

    #[test]
    fn reader_exposes_header_fields_and_lazy_iterators() {
        let snapshot = sample();
        let bytes = encode(&snapshot);
        let reader = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(reader.version(), FORMAT_VERSION);
        assert_eq!(reader.provenance_sample_size(), 16);
        assert_eq!(reader.properties().count(), 2);
        let first = reader.properties().next().unwrap().unwrap();
        assert_eq!(first.adjective, "big");
        assert!(first.adverbs.is_empty());
        let entity = reader.entities().next().unwrap().unwrap();
        assert_eq!(entity.name, "Paris");
        assert_eq!(
            entity.aliases.collect::<Result<Vec<_>, _>>().unwrap(),
            vec!["Lutetia"]
        );
        let prov = reader.provenance().next().unwrap().unwrap();
        assert_eq!(prov.documents.collect::<Vec<_>>(), vec![5, 900, 90_001]);
        let model = reader.models().next().unwrap().unwrap();
        assert_eq!(model.q_trace.len(), 2);
        assert_eq!(model.q_trace.collect::<Vec<_>>(), vec![-50.0, -43.0]);
        let group = reader.decisions().next().unwrap().unwrap();
        assert_eq!(group.decisions.len(), 2);
        let rows: Vec<_> = group.decisions.collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(rows[0].decision, DecisionCode::Positive);
        assert_eq!(rows[0].probability, Some(0.97));
        assert_eq!(rows[1].probability, None);
    }

    #[test]
    fn incremental_snapshot_round_trips() {
        let snapshot = incremental_sample();
        let bytes = encode(&snapshot);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
        assert_eq!(encode(&decoded), bytes);

        let reader = SnapshotReader::new(&bytes).unwrap();
        assert!(reader.has_incremental());
        let state = reader.incremental().unwrap().unwrap();
        assert_eq!(state, snapshot.incremental.clone().unwrap());
        let rows: Vec<_> = reader
            .fingerprints()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(rows, snapshot.fingerprints);
    }

    #[test]
    fn plain_snapshot_still_encodes_seven_sections() {
        // Without incremental state the byte stream is the original
        // seven-section container — older readers stay compatible.
        let bytes = encode(&sample());
        assert_eq!(&bytes[12..16], &7u32.to_le_bytes());
        let reader = SnapshotReader::new(&bytes).unwrap();
        assert!(!reader.has_incremental());
        assert_eq!(reader.incremental().unwrap(), None);
        assert_eq!(reader.fingerprints().count(), 0);
    }

    #[test]
    fn optional_sections_may_appear_independently() {
        // INCR without GRPF.
        let mut snapshot = incremental_sample();
        snapshot.fingerprints.clear();
        assert_eq!(decode(&encode(&snapshot)).unwrap(), snapshot);
        // GRPF without INCR.
        let mut snapshot = incremental_sample();
        snapshot.incremental = None;
        assert_eq!(decode(&encode(&snapshot)).unwrap(), snapshot);
    }

    #[test]
    fn duplicate_and_misordered_optional_sections_are_rejected() {
        let bytes = encode(&incremental_sample());
        let reader = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(reader.version(), FORMAT_VERSION);

        // Rebuild the raw frames so they can be rearranged: required
        // seven from the empty world plus handcrafted INCR/GRPF.
        let incr_payload = || {
            let mut p = vec![0]; // rho = 0
            put_u64(&mut p, 0); // config digest
            put_u64(&mut p, 0); // corpus digest
            p.push(0); // no ingested ranges
            p.push(0); // no pending shards
            p
        };
        let grpf_payload = || vec![0]; // zero rows

        let mut sections = empty_sections();
        sections.push((*b"INCR", incr_payload()));
        sections.push((*b"INCR", incr_payload()));
        assert_eq!(
            SnapshotReader::new(&container(&sections)).map(|_| ()),
            Err(WireError::DuplicateSection {
                tag: TAG_INCREMENTAL
            })
        );

        // GRPF before INCR violates the canonical order.
        let mut sections = empty_sections();
        sections.push((*b"GRPF", grpf_payload()));
        sections.push((*b"INCR", incr_payload()));
        assert_eq!(
            SnapshotReader::new(&container(&sections)).map(|_| ()),
            Err(WireError::OutOfOrderSection {
                tag: TAG_INCREMENTAL
            })
        );

        // An optional section before the required seven is out of order
        // (it would skip every required section).
        let mut sections = empty_sections();
        sections.insert(0, (*b"INCR", incr_payload()));
        assert_eq!(
            SnapshotReader::new(&container(&sections)).map(|_| ()),
            Err(WireError::OutOfOrderSection {
                tag: TAG_INCREMENTAL
            })
        );
    }

    #[test]
    fn malformed_incremental_state_is_a_bad_record() {
        let build = |ranges: &[(u64, u64)], pending: &[u64], trailing: bool| {
            let mut p = vec![40]; // rho
            put_u64(&mut p, 1);
            put_u64(&mut p, 2);
            put_varint(&mut p, ranges.len() as u64);
            for &(s, e) in ranges {
                put_varint(&mut p, s);
                put_varint(&mut p, e);
            }
            put_varint(&mut p, pending.len() as u64);
            for &shard in pending {
                put_varint(&mut p, shard);
            }
            if trailing {
                p.push(0xaa);
            }
            let mut sections = empty_sections();
            sections.push((*b"INCR", p));
            container(&sections)
        };
        let detail_of = |bytes: &[u8]| {
            let reader = SnapshotReader::new(bytes).unwrap();
            match reader.incremental().expect_err("parsed") {
                WireError::BadRecord { section, detail } => {
                    assert_eq!(section, TAG_INCREMENTAL);
                    detail
                }
                other => panic!("expected BadRecord, got {other:?}"),
            }
        };
        assert_eq!(
            detail_of(&build(&[(3, 3)], &[], false)),
            "empty ingested range"
        );
        assert_eq!(
            detail_of(&build(&[(0, 2), (2, 4)], &[], false)),
            "ingested ranges not sorted, disjoint, and merged"
        );
        assert_eq!(
            detail_of(&build(&[(0, 2)], &[5, 5], false)),
            "pending shards not strictly increasing"
        );
        assert_eq!(
            detail_of(&build(&[(0, 2)], &[5], true)),
            "trailing bytes in section"
        );
        // Valid state parses.
        let reader_bytes = build(&[(0, 2), (4, 6)], &[2, 3], false);
        let reader = SnapshotReader::new(&reader_bytes).unwrap();
        let state = reader.incremental().unwrap().unwrap();
        assert_eq!(state.ingested, vec![(0, 2), (4, 6)]);
        assert_eq!(state.pending, vec![2, 3]);
        assert_eq!(state.ingested_count(), 4);
    }

    #[test]
    fn misordered_fingerprint_rows_are_a_bad_record() {
        let mut payload = Vec::new();
        put_varint(&mut payload, 2);
        for _ in 0..2 {
            put_u32(&mut payload, 0); // type index
            put_u32(&mut payload, 7); // property (repeated key)
            put_varint(&mut payload, 1);
            put_varint(&mut payload, 1);
            put_u64(&mut payload, 99);
        }
        let mut sections = empty_sections();
        sections.push((*b"GRPF", payload));
        let bytes = container(&sections);
        let reader = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(
            reader.to_snapshot().expect_err("decoded"),
            WireError::BadRecord {
                section: TAG_FINGERPRINTS,
                detail: "fingerprint rows out of order",
            }
        );
    }
}
