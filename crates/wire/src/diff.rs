//! Section-by-section comparison of two snapshots.
//!
//! `wire diff` answers the operational question "what changed between
//! these two `.swire` files?" without loading either into a pipeline:
//! every section is keyed by its *stable identity* (names and surface
//! forms, never dense table indexes), so re-ordering the entity table or
//! re-interning properties does not masquerade as a content change —
//! only genuinely added, removed, or changed rows report.
//!
//! The crate stays zero-dep: this module emits plain owned structures;
//! human and JSON rendering belong to the CLI.

use crate::snapshot::{Snapshot, SnapshotProperty};
use std::collections::BTreeMap;

/// The per-section comparison result. Key lists are sorted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SectionDelta {
    /// Section name (`properties`, `types`, `entities`, `evidence`,
    /// `provenance`, `models`, `decisions`, `incremental`,
    /// `fingerprints`).
    pub section: &'static str,
    /// Row count in the first snapshot.
    pub count_a: usize,
    /// Row count in the second snapshot.
    pub count_b: usize,
    /// Keys present only in the second snapshot.
    pub added: Vec<String>,
    /// Keys present only in the first snapshot.
    pub removed: Vec<String>,
    /// Keys present in both with different content.
    pub changed: Vec<String>,
}

impl SectionDelta {
    /// Whether the section is identical across the two snapshots.
    pub fn is_identical(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Total number of differing keys.
    pub fn difference_count(&self) -> usize {
        self.added.len() + self.removed.len() + self.changed.len()
    }
}

/// The full comparison of two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// Wire format version of the first snapshot.
    pub version_a: u16,
    /// Wire format version of the second snapshot.
    pub version_b: u16,
    /// Whether the provenance sample bounds differ.
    pub sample_size_changed: bool,
    /// One delta per section, in canonical section order.
    pub sections: Vec<SectionDelta>,
}

impl SnapshotDiff {
    /// Whether the two snapshots are semantically identical.
    pub fn is_identical(&self) -> bool {
        self.version_a == self.version_b
            && !self.sample_size_changed
            && self.sections.iter().all(SectionDelta::is_identical)
    }

    /// Total differing keys across all sections.
    pub fn difference_count(&self) -> usize {
        self.sections
            .iter()
            .map(SectionDelta::difference_count)
            .sum()
    }
}

fn property_display(p: &SnapshotProperty) -> String {
    let mut s = String::new();
    for adverb in &p.adverbs {
        s.push_str(adverb);
        s.push(' ');
    }
    s.push_str(&p.adjective);
    s
}

/// Index→name helpers resolved against one snapshot's own tables, so a
/// dangling index (possible in hand-built snapshots) renders as a
/// placeholder instead of failing the diff.
struct Names<'a> {
    snapshot: &'a Snapshot,
}

impl Names<'_> {
    fn entity(&self, index: u32) -> String {
        self.snapshot
            .entities
            .get(index as usize)
            .map(|e| e.name.clone())
            .unwrap_or_else(|| format!("#entity{index}"))
    }

    fn type_name(&self, index: u32) -> String {
        self.snapshot
            .types
            .get(index as usize)
            .map(|t| t.name.clone())
            .unwrap_or_else(|| format!("#type{index}"))
    }

    fn property(&self, index: u32) -> String {
        self.snapshot
            .properties
            .get(index as usize)
            .map(property_display)
            .unwrap_or_else(|| format!("#property{index}"))
    }
}

fn section_delta<V: PartialEq>(
    section: &'static str,
    a: BTreeMap<String, V>,
    b: BTreeMap<String, V>,
) -> SectionDelta {
    let mut delta = SectionDelta {
        section,
        count_a: a.len(),
        count_b: b.len(),
        ..SectionDelta::default()
    };
    for (key, value) in &a {
        match b.get(key) {
            None => delta.removed.push(key.clone()),
            Some(other) if other != value => delta.changed.push(key.clone()),
            Some(_) => {}
        }
    }
    for key in b.keys() {
        if !a.contains_key(key) {
            delta.added.push(key.clone());
        }
    }
    delta
}

/// Compares two decoded snapshots section by section.
pub fn diff_snapshots(a: &Snapshot, b: &Snapshot) -> SnapshotDiff {
    diff_with_versions(a, b, crate::FORMAT_VERSION, crate::FORMAT_VERSION)
}

/// Compares two snapshots, recording the wire versions their containers
/// declared (the CLI reads these off [`crate::SnapshotReader`]).
pub fn diff_with_versions(
    a: &Snapshot,
    b: &Snapshot,
    version_a: u16,
    version_b: u16,
) -> SnapshotDiff {
    let names_a = Names { snapshot: a };
    let names_b = Names { snapshot: b };

    let properties = section_delta(
        "properties",
        a.properties
            .iter()
            .map(|p| (property_display(p), ()))
            .collect(),
        b.properties
            .iter()
            .map(|p| (property_display(p), ()))
            .collect(),
    );
    let types = section_delta(
        "types",
        a.types
            .iter()
            .map(|t| {
                (
                    t.name.clone(),
                    (t.head_nouns.clone(), t.context_cues.clone()),
                )
            })
            .collect(),
        b.types
            .iter()
            .map(|t| {
                (
                    t.name.clone(),
                    (t.head_nouns.clone(), t.context_cues.clone()),
                )
            })
            .collect(),
    );
    let entities = section_delta(
        "entities",
        a.entities
            .iter()
            .map(|e| {
                (
                    e.name.clone(),
                    (
                        e.aliases.clone(),
                        names_a.type_name(e.type_index),
                        e.attributes.clone(),
                    ),
                )
            })
            .collect(),
        b.entities
            .iter()
            .map(|e| {
                (
                    e.name.clone(),
                    (
                        e.aliases.clone(),
                        names_b.type_name(e.type_index),
                        e.attributes.clone(),
                    ),
                )
            })
            .collect(),
    );
    let evidence = section_delta(
        "evidence",
        a.evidence
            .iter()
            .map(|row| {
                (
                    format!(
                        "{} × {}",
                        names_a.entity(row.entity),
                        names_a.property(row.property)
                    ),
                    (row.positive, row.negative),
                )
            })
            .collect(),
        b.evidence
            .iter()
            .map(|row| {
                (
                    format!(
                        "{} × {}",
                        names_b.entity(row.entity),
                        names_b.property(row.property)
                    ),
                    (row.positive, row.negative),
                )
            })
            .collect(),
    );
    let provenance = section_delta(
        "provenance",
        a.provenance
            .iter()
            .map(|row| {
                (
                    format!(
                        "{} × {}",
                        names_a.entity(row.entity),
                        names_a.property(row.property)
                    ),
                    row.documents.clone(),
                )
            })
            .collect(),
        b.provenance
            .iter()
            .map(|row| {
                (
                    format!(
                        "{} × {}",
                        names_b.entity(row.entity),
                        names_b.property(row.property)
                    ),
                    row.documents.clone(),
                )
            })
            .collect(),
    );
    // Model parameters compare bit-exact: snapshots round-trip floats
    // exactly, so any bit difference is a real content change.
    let models = section_delta(
        "models",
        a.models
            .iter()
            .map(|m| {
                (
                    format!(
                        "{} × {}",
                        names_a.type_name(m.type_index),
                        names_a.property(m.property)
                    ),
                    (
                        m.p_agree.to_bits(),
                        m.rate_pos.to_bits(),
                        m.rate_neg.to_bits(),
                        m.iterations,
                        m.converged,
                    ),
                )
            })
            .collect(),
        b.models
            .iter()
            .map(|m| {
                (
                    format!(
                        "{} × {}",
                        names_b.type_name(m.type_index),
                        names_b.property(m.property)
                    ),
                    (
                        m.p_agree.to_bits(),
                        m.rate_pos.to_bits(),
                        m.rate_neg.to_bits(),
                        m.iterations,
                        m.converged,
                    ),
                )
            })
            .collect(),
    );
    let decision_value = |names: &Names<'_>, group: &crate::DecisionGroupRow| {
        let mut rows: Vec<(String, u8, Option<u64>)> = group
            .decisions
            .iter()
            .map(|d| {
                (
                    names.entity(d.entity),
                    d.decision.code(),
                    d.probability.map(f64::to_bits),
                )
            })
            .collect();
        rows.sort();
        rows
    };
    let decisions = section_delta(
        "decisions",
        a.decisions
            .iter()
            .map(|g| {
                (
                    format!(
                        "{} × {}",
                        names_a.type_name(g.type_index),
                        names_a.property(g.property)
                    ),
                    decision_value(&names_a, g),
                )
            })
            .collect(),
        b.decisions
            .iter()
            .map(|g| {
                (
                    format!(
                        "{} × {}",
                        names_b.type_name(g.type_index),
                        names_b.property(g.property)
                    ),
                    decision_value(&names_b, g),
                )
            })
            .collect(),
    );

    // The optional incremental state compares field by field, so the
    // report names what moved (e.g. newly ingested ranges, a drained
    // replay queue) instead of a single opaque "changed".
    let incremental_value = |snapshot: &Snapshot| -> BTreeMap<String, String> {
        let Some(state) = &snapshot.incremental else {
            return BTreeMap::new();
        };
        BTreeMap::from([
            ("rho".to_string(), state.rho.to_string()),
            (
                "config digest".to_string(),
                format!("{:016x}", state.config_digest),
            ),
            (
                "corpus digest".to_string(),
                format!("{:016x}", state.corpus_digest),
            ),
            (
                "ingested shards".to_string(),
                state
                    .ingested
                    .iter()
                    .map(|(s, e)| format!("[{s}, {e})"))
                    .collect::<Vec<_>>()
                    .join(" "),
            ),
            ("pending shards".to_string(), format!("{:?}", state.pending)),
        ])
    };
    let incremental = section_delta("incremental", incremental_value(a), incremental_value(b));
    // Group fingerprints make "which groups did the delta dirty?" a
    // first-class diff answer: a changed key here is a dirtied group.
    let fingerprints = section_delta(
        "fingerprints",
        a.fingerprints
            .iter()
            .map(|row| {
                (
                    format!(
                        "{} × {}",
                        names_a.type_name(row.type_index),
                        names_a.property(row.property)
                    ),
                    (row.entities, row.total, row.fingerprint),
                )
            })
            .collect(),
        b.fingerprints
            .iter()
            .map(|row| {
                (
                    format!(
                        "{} × {}",
                        names_b.type_name(row.type_index),
                        names_b.property(row.property)
                    ),
                    (row.entities, row.total, row.fingerprint),
                )
            })
            .collect(),
    );

    SnapshotDiff {
        version_a,
        version_b,
        sample_size_changed: a.provenance_sample_size != b.provenance_sample_size,
        sections: vec![
            properties,
            types,
            entities,
            evidence,
            provenance,
            models,
            decisions,
            incremental,
            fingerprints,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{
        DecisionCode, DecisionGroupRow, DecisionRow, EvidenceRow, ModelRow, SnapshotEntity,
        SnapshotType,
    };

    fn world() -> Snapshot {
        Snapshot {
            properties: vec![
                SnapshotProperty {
                    adverbs: vec![],
                    adjective: "big".into(),
                },
                SnapshotProperty {
                    adverbs: vec!["very".into()],
                    adjective: "safe".into(),
                },
            ],
            types: vec![SnapshotType {
                name: "city".into(),
                head_nouns: vec!["city".into()],
                context_cues: vec![],
            }],
            entities: vec![
                SnapshotEntity {
                    name: "Springfield".into(),
                    aliases: vec![],
                    type_index: 0,
                    attributes: vec![("population".into(), 167_000.0)],
                },
                SnapshotEntity {
                    name: "Shelbyville".into(),
                    aliases: vec![],
                    type_index: 0,
                    attributes: vec![],
                },
            ],
            evidence: vec![EvidenceRow {
                entity: 0,
                property: 0,
                positive: 10,
                negative: 2,
            }],
            provenance_sample_size: 3,
            provenance: vec![],
            models: vec![ModelRow {
                type_index: 0,
                property: 0,
                p_agree: 0.9,
                rate_pos: 1.5,
                rate_neg: 0.2,
                iterations: 12,
                converged: 1,
                log_likelihood: -4.2,
                q_trace: vec![],
                delta_trace: vec![],
            }],
            decisions: vec![DecisionGroupRow {
                type_index: 0,
                property: 0,
                decisions: vec![DecisionRow {
                    entity: 0,
                    decision: DecisionCode::Positive,
                    probability: Some(0.97),
                }],
            }],
            incremental: None,
            fingerprints: vec![],
        }
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let a = world();
        let diff = diff_snapshots(&a, &a.clone());
        assert!(diff.is_identical());
        assert_eq!(diff.difference_count(), 0);
        assert_eq!(diff.sections.len(), 9);
    }

    #[test]
    fn dirtied_group_reports_in_fingerprints_section() {
        let mut a = world();
        a.fingerprints = crate::snapshot::group_fingerprints(&a);
        a.incremental = Some(crate::IncrementalState {
            rho: 40,
            config_digest: 1,
            corpus_digest: 2,
            ingested: vec![(0, 3)],
            pending: vec![],
        });
        // The updated snapshot ingested one more shard and grew the
        // evidence of the only group.
        let mut b = a.clone();
        b.evidence[0].positive += 5;
        b.fingerprints = crate::snapshot::group_fingerprints(&b);
        b.incremental.as_mut().unwrap().ingest_range(3, 4);

        let diff = diff_snapshots(&a, &b);
        assert!(!diff.is_identical());
        let fingerprints = &diff.sections[8];
        assert_eq!(fingerprints.section, "fingerprints");
        assert_eq!(fingerprints.changed, vec!["city × big"]);
        let incremental = &diff.sections[7];
        assert_eq!(incremental.section, "incremental");
        assert_eq!(incremental.changed, vec!["ingested shards"]);
    }

    #[test]
    fn added_entity_reports_in_entities_section() {
        let a = world();
        let mut b = world();
        b.entities.push(SnapshotEntity {
            name: "Ogdenville".into(),
            aliases: vec![],
            type_index: 0,
            attributes: vec![],
        });
        let diff = diff_snapshots(&a, &b);
        assert!(!diff.is_identical());
        let entities = &diff.sections[2];
        assert_eq!(entities.section, "entities");
        assert_eq!(entities.count_a, 2);
        assert_eq!(entities.count_b, 3);
        assert_eq!(entities.added, vec!["Ogdenville"]);
        assert!(entities.removed.is_empty());
    }

    #[test]
    fn changed_evidence_counts_report_as_changed() {
        let a = world();
        let mut b = world();
        b.evidence[0].positive = 99;
        let diff = diff_snapshots(&a, &b);
        let evidence = &diff.sections[3];
        assert_eq!(evidence.changed, vec!["Springfield × big"]);
        assert!(evidence.added.is_empty() && evidence.removed.is_empty());
    }

    #[test]
    fn model_parameter_drift_is_a_change() {
        let a = world();
        let mut b = world();
        b.models[0].p_agree = 0.91;
        let diff = diff_snapshots(&a, &b);
        let models = &diff.sections[5];
        assert_eq!(models.changed, vec!["city × big"]);
        // log-likelihood and traces are telemetry, not identity: a pure
        // trace difference does not flag the model row.
        let mut c = world();
        c.models[0].log_likelihood = -9.9;
        assert!(diff_snapshots(&a, &c).is_identical());
    }

    #[test]
    fn decision_flip_is_a_change() {
        let a = world();
        let mut b = world();
        b.decisions[0].decisions[0].decision = DecisionCode::Negative;
        let diff = diff_snapshots(&a, &b);
        assert_eq!(diff.sections[6].changed, vec!["city × big"]);
    }

    #[test]
    fn reordered_entity_table_is_not_a_difference() {
        let a = world();
        let mut b = world();
        // Swap the entity table and fix up every index reference; the
        // content is identical, only dense ids moved.
        b.entities.swap(0, 1);
        b.evidence[0].entity = 1;
        b.decisions[0].decisions[0].entity = 1;
        let diff = diff_snapshots(&a, &b);
        assert!(
            diff.is_identical(),
            "index renumbering must not report: {diff:?}"
        );
    }

    #[test]
    fn version_and_sample_size_mismatches_flag() {
        let a = world();
        let diff = diff_with_versions(&a, &a.clone(), 1, 2);
        assert!(!diff.is_identical());
        let mut b = world();
        b.provenance_sample_size = 9;
        let diff = diff_snapshots(&a, &b);
        assert!(diff.sample_size_changed);
        assert!(!diff.is_identical());
    }
}
