//! Typed decode failures. Every way arbitrary bytes can fail to be a
//! snapshot maps to exactly one variant here — the decoder never panics.

use crate::section::SectionTag;
use std::fmt;

/// Why a byte buffer is not a valid snapshot.
///
/// The variants partition the failure space: framing problems
/// ([`BadMagic`](Self::BadMagic) through
/// [`TrailingBytes`](Self::TrailingBytes)) are detected while walking the
/// container, payload problems ([`BadVarint`](Self::BadVarint) through
/// [`BadRecord`](Self::BadRecord)) while parsing records inside a
/// CRC-verified section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The first eight bytes are not the `SURVWIRE` magic.
    BadMagic {
        /// What the buffer held instead (zero-padded if shorter).
        found: [u8; 8],
    },
    /// The header names a format version this decoder does not speak.
    UnsupportedVersion {
        /// The version the header carries.
        found: u16,
    },
    /// The buffer ended before a fixed-size field or a length-prefixed
    /// span was complete — a short section, a cut-off header, or a string
    /// whose length prefix overruns its section.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A section's payload does not hash to the CRC-32 its frame carries.
    CrcMismatch {
        /// The section whose payload is damaged.
        tag: SectionTag,
        /// The checksum stored in the frame.
        stored: u32,
        /// The checksum computed over the payload.
        computed: u32,
    },
    /// The same known section appears twice.
    DuplicateSection {
        /// The repeated tag.
        tag: SectionTag,
    },
    /// A required section is absent.
    MissingSection {
        /// The missing tag.
        tag: SectionTag,
    },
    /// Known sections appear out of their canonical order.
    OutOfOrderSection {
        /// The tag that arrived early.
        tag: SectionTag,
    },
    /// Bytes remain after the last section frame the header announced.
    TrailingBytes {
        /// How many bytes are left over.
        count: usize,
    },
    /// A varint ran past its 10-byte maximum or past the buffer.
    BadVarint {
        /// What the varint was encoding.
        context: &'static str,
    },
    /// A string field is not valid UTF-8.
    BadUtf8 {
        /// Which field failed to decode.
        context: &'static str,
    },
    /// A record inside a structurally sound section is semantically
    /// malformed (an impossible count, an unknown enum code, a dangling
    /// table index).
    BadRecord {
        /// The section holding the record.
        section: SectionTag,
        /// What is wrong with it.
        detail: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { found } => {
                write!(f, "bad magic: expected `SURVWIRE`, found {found:?}")
            }
            Self::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this decoder speaks version {})",
                crate::FORMAT_VERSION
            ),
            Self::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated snapshot: {context} needs {needed} bytes, {available} available"
            ),
            Self::CrcMismatch {
                tag,
                stored,
                computed,
            } => write!(
                f,
                "CRC mismatch in section {tag}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::DuplicateSection { tag } => write!(f, "duplicate section {tag}"),
            Self::MissingSection { tag } => write!(f, "missing required section {tag}"),
            Self::OutOfOrderSection { tag } => {
                write!(f, "section {tag} out of canonical order")
            }
            Self::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the last section")
            }
            Self::BadVarint { context } => write!(f, "malformed varint while reading {context}"),
            Self::BadUtf8 { context } => write!(f, "invalid UTF-8 in {context}"),
            Self::BadRecord { section, detail } => {
                write!(f, "malformed record in section {section}: {detail}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::TAG_EVIDENCE;

    #[test]
    fn display_names_the_failure() {
        let cases: Vec<(WireError, &str)> = vec![
            (WireError::BadMagic { found: [0; 8] }, "bad magic"),
            (
                WireError::UnsupportedVersion { found: 9 },
                "unsupported snapshot version 9",
            ),
            (
                WireError::Truncated {
                    context: "section frame",
                    needed: 16,
                    available: 3,
                },
                "needs 16 bytes, 3 available",
            ),
            (
                WireError::CrcMismatch {
                    tag: TAG_EVIDENCE,
                    stored: 1,
                    computed: 2,
                },
                "CRC mismatch in section EVID",
            ),
            (
                WireError::DuplicateSection { tag: TAG_EVIDENCE },
                "duplicate section EVID",
            ),
            (
                WireError::MissingSection { tag: TAG_EVIDENCE },
                "missing required section EVID",
            ),
            (
                WireError::OutOfOrderSection { tag: TAG_EVIDENCE },
                "out of canonical order",
            ),
            (WireError::TrailingBytes { count: 5 }, "5 trailing bytes"),
            (
                WireError::BadVarint { context: "count" },
                "malformed varint",
            ),
            (WireError::BadUtf8 { context: "name" }, "invalid UTF-8"),
            (
                WireError::BadRecord {
                    section: TAG_EVIDENCE,
                    detail: "count exceeds payload",
                },
                "malformed record in section EVID",
            ),
        ];
        for (error, needle) in cases {
            let text = error.to_string();
            assert!(text.contains(needle), "{text:?} misses {needle:?}");
        }
    }
}
