//! The snapshot encoder.
//!
//! Encoding is infallible and deterministic: the same [`Snapshot`] value
//! always produces the same bytes, because every collection in the model
//! carries an explicit, sorted order (see the invariants on [`Snapshot`]).

use crate::crc32::crc32;
use crate::cursor::{put_f64, put_str, put_u16, put_u32, put_u64, put_varint};
use crate::section::{
    SectionTag, TAG_DECISIONS, TAG_ENTITIES, TAG_EVIDENCE, TAG_FINGERPRINTS, TAG_INCREMENTAL,
    TAG_MODELS, TAG_PROPERTIES, TAG_PROVENANCE, TAG_TYPES,
};
use crate::snapshot::Snapshot;
use crate::{FORMAT_VERSION, MAGIC};

/// Encodes a snapshot into the version-1 wire format.
///
/// The seven required sections are always emitted; the optional `INCR`
/// and `GRPF` sections follow only when [`Snapshot::incremental`] is set
/// or [`Snapshot::fingerprints`] is non-empty, so a snapshot without
/// incremental state encodes to the exact original seven-section stream.
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    let mut sections: Vec<(SectionTag, Vec<u8>)> = vec![
        (TAG_PROPERTIES, encode_properties(snapshot)),
        (TAG_TYPES, encode_types(snapshot)),
        (TAG_ENTITIES, encode_entities(snapshot)),
        (TAG_EVIDENCE, encode_evidence(snapshot)),
        (TAG_PROVENANCE, encode_provenance(snapshot)),
        (TAG_MODELS, encode_models(snapshot)),
        (TAG_DECISIONS, encode_decisions(snapshot)),
    ];
    if snapshot.incremental.is_some() {
        sections.push((TAG_INCREMENTAL, encode_incremental(snapshot)));
    }
    if !snapshot.fingerprints.is_empty() {
        sections.push((TAG_FINGERPRINTS, encode_fingerprints(snapshot)));
    }
    let payload_total: usize = sections.iter().map(|(_, p)| p.len()).sum();
    // Header (16) + one 16-byte frame per section + payloads.
    let mut out = Vec::with_capacity(16 + sections.len() * 16 + payload_total);
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, FORMAT_VERSION);
    put_u16(&mut out, 0); // reserved
    put_u32(&mut out, sections.len() as u32);
    for (tag, payload) in &sections {
        out.extend_from_slice(&tag.0);
        put_u64(&mut out, payload.len() as u64);
        put_u32(&mut out, crc32(payload));
        out.extend_from_slice(payload);
    }
    out
}

fn encode_properties(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, snapshot.properties.len() as u64);
    for property in &snapshot.properties {
        put_varint(&mut buf, property.adverbs.len() as u64);
        for adverb in &property.adverbs {
            put_str(&mut buf, adverb);
        }
        put_str(&mut buf, &property.adjective);
    }
    buf
}

fn encode_types(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, snapshot.types.len() as u64);
    for t in &snapshot.types {
        put_str(&mut buf, &t.name);
        put_varint(&mut buf, t.head_nouns.len() as u64);
        for noun in &t.head_nouns {
            put_str(&mut buf, noun);
        }
        put_varint(&mut buf, t.context_cues.len() as u64);
        for cue in &t.context_cues {
            put_str(&mut buf, cue);
        }
    }
    buf
}

fn encode_entities(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, snapshot.entities.len() as u64);
    for entity in &snapshot.entities {
        put_str(&mut buf, &entity.name);
        put_varint(&mut buf, entity.aliases.len() as u64);
        for alias in &entity.aliases {
            put_str(&mut buf, alias);
        }
        put_u32(&mut buf, entity.type_index);
        put_varint(&mut buf, entity.attributes.len() as u64);
        for (key, value) in &entity.attributes {
            put_str(&mut buf, key);
            put_f64(&mut buf, *value);
        }
    }
    buf
}

fn encode_evidence(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, snapshot.evidence.len() as u64);
    for row in &snapshot.evidence {
        put_u32(&mut buf, row.entity);
        put_u32(&mut buf, row.property);
        put_varint(&mut buf, row.positive);
        put_varint(&mut buf, row.negative);
    }
    buf
}

fn encode_provenance(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, snapshot.provenance_sample_size);
    put_varint(&mut buf, snapshot.provenance.len() as u64);
    for row in &snapshot.provenance {
        put_u32(&mut buf, row.entity);
        put_u32(&mut buf, row.property);
        put_varint(&mut buf, row.documents.len() as u64);
        for &doc in &row.documents {
            put_varint(&mut buf, doc);
        }
    }
    buf
}

fn encode_models(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, snapshot.models.len() as u64);
    for row in &snapshot.models {
        put_u32(&mut buf, row.type_index);
        put_u32(&mut buf, row.property);
        put_f64(&mut buf, row.p_agree);
        put_f64(&mut buf, row.rate_pos);
        put_f64(&mut buf, row.rate_neg);
        put_varint(&mut buf, row.iterations);
        buf.push(row.converged);
        put_f64(&mut buf, row.log_likelihood);
        put_varint(&mut buf, row.q_trace.len() as u64);
        for &q in &row.q_trace {
            put_f64(&mut buf, q);
        }
        put_varint(&mut buf, row.delta_trace.len() as u64);
        for &d in &row.delta_trace {
            put_f64(&mut buf, d);
        }
    }
    buf
}

fn encode_incremental(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    let Some(state) = &snapshot.incremental else {
        // Unreachable in practice: the caller gates on `is_some`.
        return buf;
    };
    put_varint(&mut buf, state.rho);
    put_u64(&mut buf, state.config_digest);
    put_u64(&mut buf, state.corpus_digest);
    put_varint(&mut buf, state.ingested.len() as u64);
    for &(start, end) in &state.ingested {
        put_varint(&mut buf, start);
        put_varint(&mut buf, end);
    }
    put_varint(&mut buf, state.pending.len() as u64);
    for &shard in &state.pending {
        put_varint(&mut buf, shard);
    }
    buf
}

fn encode_fingerprints(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, snapshot.fingerprints.len() as u64);
    for row in &snapshot.fingerprints {
        put_u32(&mut buf, row.type_index);
        put_u32(&mut buf, row.property);
        put_varint(&mut buf, row.entities);
        put_varint(&mut buf, row.total);
        put_u64(&mut buf, row.fingerprint);
    }
    buf
}

fn encode_decisions(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, snapshot.decisions.len() as u64);
    for group in &snapshot.decisions {
        put_u32(&mut buf, group.type_index);
        put_u32(&mut buf, group.property);
        put_varint(&mut buf, group.decisions.len() as u64);
        for row in &group.decisions {
            match row.probability {
                Some(p) => {
                    buf.push(0x80 | row.decision.code());
                    put_f64(&mut buf, p);
                }
                None => buf.push(row.decision.code()),
            }
            put_u32(&mut buf, row.entity);
        }
    }
    buf
}
