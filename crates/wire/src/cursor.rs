//! A bounds-checked read cursor over a byte span, plus the little-endian
//! primitive and varint codecs both the encoder and decoder share.
//!
//! All multi-byte integers on the wire are **little-endian**; open-ended
//! counts and lengths are **LEB128 varints** (7 data bits per byte, high
//! bit = continuation, at most 10 bytes for a `u64`); floats are the IEEE
//! 754 bit pattern of an `f64` as a little-endian `u64`. Strings are a
//! varint byte length followed by UTF-8 bytes.

use crate::error::WireError;

/// Longest legal LEB128 encoding of a `u64`.
const MAX_VARINT_BYTES: usize = 10;

/// A read position inside a borrowed byte span. Every read is
/// bounds-checked and returns a typed [`WireError`] on overrun — the
/// cursor cannot panic on any input.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `n` bytes, or reports what was missing.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let available = self.remaining();
        if n > available {
            return Err(WireError::Truncated {
                context,
                needed: n,
                available,
            });
        }
        let span = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(span)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let span = self.take(2, context)?;
        Ok(u16::from_le_bytes([span[0], span[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let span = self.take(4, context)?;
        Ok(u32::from_le_bytes([span[0], span[1], span[2], span[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let span = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            span[0], span[1], span[2], span[3], span[4], span[5], span[6], span[7],
        ]))
    }

    /// Reads an `f64` stored as the little-endian bits of its IEEE 754
    /// representation — bit-exact round trips, NaN payloads included.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self, context: &'static str) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        for i in 0..MAX_VARINT_BYTES {
            let Some(&byte) = self.buf.get(self.pos + i) else {
                return Err(WireError::BadVarint { context });
            };
            let data = u64::from(byte & 0x7f);
            // The 10th byte may only contribute the final bit of a u64.
            if i == MAX_VARINT_BYTES - 1 && byte > 0x01 {
                return Err(WireError::BadVarint { context });
            }
            value |= data << (7 * i);
            if byte & 0x80 == 0 {
                self.pos += i + 1;
                return Ok(value);
            }
        }
        Err(WireError::BadVarint { context })
    }

    /// Reads a varint and narrows it to a count no larger than the bytes
    /// still available — a cheap structural bound (every record is at
    /// least one byte) that keeps hostile counts from driving huge
    /// allocations downstream.
    pub fn count(&mut self, context: &'static str) -> Result<usize, WireError> {
        let raw = self.varint(context)?;
        let available = self.remaining() as u64;
        if raw > available {
            return Err(WireError::BadVarint { context });
        }
        // `raw <= available <= usize::MAX` on every supported target.
        Ok(raw as usize)
    }

    /// Reads a length-prefixed UTF-8 string as a borrowed span.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, WireError> {
        let len = self.count(context)?;
        let span = self.take(len, context)?;
        std::str::from_utf8(span).map_err(|_| WireError::BadUtf8 { context })
    }

    /// Skips a length-prefixed string without validating its UTF-8 (used
    /// to delimit records before their string lists are iterated).
    pub fn skip_str(&mut self, context: &'static str) -> Result<(), WireError> {
        let len = self.count(context)?;
        self.take(len, context)?;
        Ok(())
    }

    /// The span between `mark` (an earlier clone of this cursor) and the
    /// current position.
    pub fn span_since(&self, mark: &Cursor<'a>) -> &'a [u8] {
        &self.buf[mark.pos.min(self.pos)..self.pos]
    }
}

/// Appends a little-endian `u16`.
pub fn put_u16(buf: &mut Vec<u8>, value: u16) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends an `f64` as the little-endian bytes of its bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, value: f64) {
    put_u64(buf, value.to_bits());
}

/// Appends a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a varint-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, value: &str) {
    put_varint(buf, value.len() as u64);
    buf.extend_from_slice(value.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xbeef);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.125);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u16("a").unwrap(), 0xbeef);
        assert_eq!(c.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(c.u64("c").unwrap(), u64::MAX - 7);
        assert_eq!(c.f64("d").unwrap(), -0.125);
        assert!(c.is_empty());
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for value in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, value);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.varint("v").unwrap(), value, "value {value}");
            assert!(c.is_empty());
        }
    }

    #[test]
    fn varint_rejects_unterminated_and_overlong() {
        // Continuation bit set on every byte: never terminates.
        let unterminated = [0x80u8; 12];
        assert_eq!(
            Cursor::new(&unterminated).varint("v"),
            Err(WireError::BadVarint { context: "v" })
        );
        // Ten bytes whose tenth contributes more than the final bit.
        let overlong = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert_eq!(
            Cursor::new(&overlong).varint("v"),
            Err(WireError::BadVarint { context: "v" })
        );
        // u64::MAX itself still decodes: tenth byte is exactly 0x01.
        let mut max = Vec::new();
        put_varint(&mut max, u64::MAX);
        assert_eq!(max.len(), 10);
        assert_eq!(Cursor::new(&max).varint("v").unwrap(), u64::MAX);
    }

    #[test]
    fn truncated_reads_report_context_and_sizes() {
        let mut c = Cursor::new(&[1, 2]);
        assert_eq!(
            c.u32("field"),
            Err(WireError::Truncated {
                context: "field",
                needed: 4,
                available: 2
            })
        );
    }

    #[test]
    fn count_is_bounded_by_remaining_bytes() {
        // A count of 1000 with only a handful of bytes behind it is
        // structurally impossible and must be rejected, not allocated.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1000);
        buf.extend_from_slice(&[0; 4]);
        assert_eq!(
            Cursor::new(&buf).count("rows"),
            Err(WireError::BadVarint { context: "rows" })
        );
        let mut ok = Vec::new();
        put_varint(&mut ok, 3);
        ok.extend_from_slice(&[0; 3]);
        assert_eq!(Cursor::new(&ok).count("rows").unwrap(), 3);
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() {
        let mut buf = Vec::new();
        put_str(&mut buf, "très big");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.str("s").unwrap(), "très big");

        let bad = [2u8, 0xff, 0xfe];
        assert_eq!(
            Cursor::new(&bad).str("s"),
            Err(WireError::BadUtf8 { context: "s" })
        );
        // skip_str does not care about UTF-8, only framing.
        assert!(Cursor::new(&bad).skip_str("s").is_ok());
    }

    #[test]
    fn span_since_recovers_the_consumed_range() {
        let buf = [9u8, 8, 7, 6];
        let mut c = Cursor::new(&buf);
        let mark = c;
        c.u8("a").unwrap();
        c.u8("b").unwrap();
        assert_eq!(c.span_since(&mark), &[9, 8]);
        assert_eq!(c.remaining(), 2);
    }
}
