//! Section tags and the canonical section order.

use std::fmt;

/// A four-byte ASCII section tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SectionTag(pub [u8; 4]);

impl fmt::Display for SectionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        Ok(())
    }
}

/// Snapshot-local property table (deduplicated, sorted).
pub const TAG_PROPERTIES: SectionTag = SectionTag(*b"PROP");
/// Entity types of the knowledge base.
pub const TAG_TYPES: SectionTag = SectionTag(*b"TYPE");
/// Entities of the knowledge base.
pub const TAG_ENTITIES: SectionTag = SectionTag(*b"ENTS");
/// Evidence counters per (entity, property) pair.
pub const TAG_EVIDENCE: SectionTag = SectionTag(*b"EVID");
/// Supporting-document samples per (entity, property) pair.
pub const TAG_PROVENANCE: SectionTag = SectionTag(*b"PROV");
/// Fitted model parameters + EM telemetry per (type, property).
pub const TAG_MODELS: SectionTag = SectionTag(*b"MODL");
/// Entity decisions per (type, property) combination.
pub const TAG_DECISIONS: SectionTag = SectionTag(*b"DECN");
/// Optional: incremental-mining state (ingested shard ranges, replay
/// queue, configuration digests).
pub const TAG_INCREMENTAL: SectionTag = SectionTag(*b"INCR");
/// Optional: per-(type, property) group fingerprints for dirty-group
/// detection between snapshots.
pub const TAG_FINGERPRINTS: SectionTag = SectionTag(*b"GRPF");

/// Every required section, in the canonical on-disk order. A version-1
/// writer emits exactly these; a version-1 reader requires all of them,
/// in this order, and skips unknown tags in between (the forward-compat
/// hook for additive revisions).
pub const CANONICAL_ORDER: [SectionTag; 7] = [
    TAG_PROPERTIES,
    TAG_TYPES,
    TAG_ENTITIES,
    TAG_EVIDENCE,
    TAG_PROVENANCE,
    TAG_MODELS,
    TAG_DECISIONS,
];

/// Every section this reader understands, required and optional, in the
/// canonical on-disk order. Optional sections follow the required seven;
/// a reader accepts any subset of the optional tail as long as relative
/// order is preserved.
pub const KNOWN_ORDER: [SectionTag; 9] = [
    TAG_PROPERTIES,
    TAG_TYPES,
    TAG_ENTITIES,
    TAG_EVIDENCE,
    TAG_PROVENANCE,
    TAG_MODELS,
    TAG_DECISIONS,
    TAG_INCREMENTAL,
    TAG_FINGERPRINTS,
];

/// How many leading entries of [`KNOWN_ORDER`] are required. Positions at
/// or past this index are optional: a decoder skips them without error
/// when absent.
pub const REQUIRED_SECTIONS: usize = 7;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_render_as_ascii() {
        assert_eq!(TAG_PROPERTIES.to_string(), "PROP");
        assert_eq!(TAG_DECISIONS.to_string(), "DECN");
        assert_eq!(
            SectionTag([0x41, 0x00, 0x42, 0xff]).to_string(),
            "A\\x00B\\xff"
        );
    }

    #[test]
    fn canonical_order_is_duplicate_free() {
        for (i, a) in CANONICAL_ORDER.iter().enumerate() {
            for b in &CANONICAL_ORDER[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn known_order_extends_canonical_order() {
        assert_eq!(&KNOWN_ORDER[..REQUIRED_SECTIONS], &CANONICAL_ORDER[..]);
        for (i, a) in KNOWN_ORDER.iter().enumerate() {
            for b in &KNOWN_ORDER[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(KNOWN_ORDER[REQUIRED_SECTIONS], TAG_INCREMENTAL);
        assert_eq!(KNOWN_ORDER[REQUIRED_SECTIONS + 1], TAG_FINGERPRINTS);
    }
}
