//! CRC-32 (IEEE 802.3, the polynomial used by zip/gzip/PNG), table-driven.
//!
//! Each section frame carries the checksum of its payload so a damaged
//! snapshot is rejected with [`crate::WireError::CrcMismatch`] instead of
//! decoding into garbage. The 256-entry table is computed at compile time —
//! no runtime initialization, no dependencies.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xedb8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes` (initial value `0xffff_ffff`, final XOR-out).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        let index = ((crc ^ u32::from(b)) & 0xff) as usize;
        crc = (crc >> 8) ^ TABLE[index];
    }
    crc ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC-32/ISO-HDLC check value from the catalogue of
        // parametrised CRC algorithms.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn one_bit_flips_change_the_sum() {
        let base = crc32(b"surveyor wire");
        let mut bytes = b"surveyor wire".to_vec();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x01;
            assert_ne!(crc32(&bytes), base, "flip at byte {i} went unnoticed");
            bytes[i] ^= 0x01;
        }
    }
}
