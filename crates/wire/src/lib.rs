//! `surveyor-wire` — the versioned binary snapshot format for mined
//! Surveyor worlds.
//!
//! A snapshot captures everything the pipeline mined — the knowledge
//! base, the evidence counters, the provenance samples, the fitted
//! per-(type, property) models, and the decided pairs — in one
//! self-describing byte buffer that can be written to disk and loaded
//! back without re-mining. The format is fully specified in `FORMAT.md`
//! at the repository root; this crate is its reference implementation
//! and has **zero dependencies**.
//!
//! # Shape of the format
//!
//! A snapshot is a 16-byte header (the [`MAGIC`] `SURVWIRE`, a
//! little-endian [`FORMAT_VERSION`], a reserved word, and a section
//! count) followed by framed sections. Each frame carries a four-byte
//! tag, a payload length, and a CRC-32 of the payload, so damage is
//! detected before any record is parsed. Version-1 writers emit seven
//! required sections in [`CANONICAL_ORDER`], optionally followed by the
//! incremental-mining sections `INCR` and `GRPF`; readers skip unknown
//! tags, which is the forward-compatibility hook for additive revisions.
//!
//! Inside a payload, integers are little-endian, open-ended counts are
//! LEB128 varints, floats are IEEE 754 bit patterns (bit-exact round
//! trips), and strings are length-prefixed UTF-8. Property references
//! are indexes into the snapshot's own sorted property table — never
//! process-local interner ids, which depend on thread interleaving.
//!
//! # Encoding and decoding
//!
//! ```
//! use surveyor_wire::{decode, encode, Snapshot, SnapshotProperty, SnapshotReader};
//!
//! let mut snapshot = Snapshot::default();
//! snapshot.properties.push(SnapshotProperty {
//!     adverbs: vec!["very".to_string()],
//!     adjective: "big".to_string(),
//! });
//!
//! let bytes = encode(&snapshot);
//! assert_eq!(&bytes[..8], b"SURVWIRE");
//!
//! // One-call decode materializes the owned form...
//! assert_eq!(decode(&bytes).unwrap(), snapshot);
//!
//! // ...while the reader streams records without per-record allocation.
//! let reader = SnapshotReader::new(&bytes).unwrap();
//! let property = reader.properties().next().unwrap().unwrap();
//! assert_eq!(property.adjective, "big"); // borrowed from `bytes`
//! ```
//!
//! Encoding is deterministic: equal snapshots produce identical bytes,
//! which is what makes `mine → save → load` verifiable by byte
//! comparison downstream.
//!
//! # Hostile input
//!
//! The decoder never panics. Every malformed buffer maps to a typed
//! [`WireError`]:
//!
//! ```
//! use surveyor_wire::{SnapshotReader, WireError};
//!
//! let err = SnapshotReader::new(b"not a snapshot").map(|_| ()).unwrap_err();
//! assert!(matches!(err, WireError::BadMagic { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc32;
mod cursor;
mod decode;
mod diff;
mod encode;
mod error;
mod section;
mod snapshot;

pub use decode::{
    decode, AttrList, DecisionGroupIter, DecisionGroupRecord, DecisionList, EntityIter,
    EntityRecord, EvidenceIter, F64List, FingerprintIter, ModelIter, ModelRecord, PropertyIter,
    PropertyRecord, ProvenanceIter, ProvenanceRecord, SnapshotReader, StrList, TypeIter,
    TypeRecord, U64List,
};
pub use diff::{diff_snapshots, diff_with_versions, SectionDelta, SnapshotDiff};
pub use encode::encode;
pub use error::WireError;
pub use section::{
    SectionTag, CANONICAL_ORDER, KNOWN_ORDER, REQUIRED_SECTIONS, TAG_DECISIONS, TAG_ENTITIES,
    TAG_EVIDENCE, TAG_FINGERPRINTS, TAG_INCREMENTAL, TAG_MODELS, TAG_PROPERTIES, TAG_PROVENANCE,
    TAG_TYPES,
};
pub use snapshot::{
    group_fingerprints, DecisionCode, DecisionGroupRow, DecisionRow, EvidenceRow, Fnv64,
    GroupFingerprintRow, IncrementalState, ModelRow, ProvenanceRow, Snapshot, SnapshotEntity,
    SnapshotProperty, SnapshotType,
};

/// The eight magic bytes every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"SURVWIRE";

/// The format version this crate reads and writes.
pub const FORMAT_VERSION: u16 = 1;
