//! Property-based suites for the wire format: valid snapshots round-trip
//! byte-identically, and no byte buffer — random, mutated, or truncated —
//! can make the decoder panic.

use proptest::prelude::*;
use surveyor_wire::{
    decode, encode, DecisionCode, DecisionGroupRow, DecisionRow, EvidenceRow, GroupFingerprintRow,
    IncrementalState, ModelRow, ProvenanceRow, Snapshot, SnapshotEntity, SnapshotProperty,
    SnapshotType, MAGIC,
};

fn word() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{0,9}",
        Just("très grand".to_string()),
        Just("ぴかぴか".to_string()),
        Just(String::new()),
    ]
}

fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e6f64..1.0e6,
        Just(0.0),
        Just(-0.0),
        Just(f64::MIN_POSITIVE),
        Just(f64::MAX),
    ]
}

fn property_s() -> impl Strategy<Value = SnapshotProperty> {
    (prop::collection::vec(word(), 0..3), word())
        .prop_map(|(adverbs, adjective)| SnapshotProperty { adverbs, adjective })
}

fn type_s() -> impl Strategy<Value = SnapshotType> {
    (
        word(),
        prop::collection::vec(word(), 0..3),
        prop::collection::vec(word(), 0..3),
    )
        .prop_map(|(name, head_nouns, context_cues)| SnapshotType {
            name,
            head_nouns,
            context_cues,
        })
}

fn entity_s() -> impl Strategy<Value = SnapshotEntity> {
    (
        word(),
        prop::collection::vec(word(), 0..3),
        0u32..8,
        prop::collection::vec((word(), finite_f64()), 0..3),
    )
        .prop_map(|(name, aliases, type_index, attributes)| SnapshotEntity {
            name,
            aliases,
            type_index,
            attributes,
        })
}

fn evidence_s() -> impl Strategy<Value = EvidenceRow> {
    (0u32..64, 0u32..16, 0u64..10_000, 0u64..10_000).prop_map(
        |(entity, property, positive, negative)| EvidenceRow {
            entity,
            property,
            positive,
            negative,
        },
    )
}

fn provenance_s() -> impl Strategy<Value = ProvenanceRow> {
    (
        0u32..64,
        0u32..16,
        prop::collection::vec(0u64..u64::MAX, 0..5),
    )
        .prop_map(|(entity, property, documents)| ProvenanceRow {
            entity,
            property,
            documents,
        })
}

fn model_s() -> impl Strategy<Value = ModelRow> {
    (
        (0u32..8, 0u32..16),
        (finite_f64(), finite_f64(), finite_f64(), finite_f64()),
        (0u64..500, 0u8..3),
        (
            prop::collection::vec(finite_f64(), 0..4),
            prop::collection::vec(finite_f64(), 0..4),
        ),
    )
        .prop_map(
            |(
                (type_index, property),
                (p_agree, rate_pos, rate_neg, log_likelihood),
                (iterations, converged),
                (q_trace, delta_trace),
            )| ModelRow {
                type_index,
                property,
                p_agree,
                rate_pos,
                rate_neg,
                iterations,
                converged,
                log_likelihood,
                q_trace,
                delta_trace,
            },
        )
}

fn decision_s() -> impl Strategy<Value = DecisionRow> {
    (0u32..64, 0u8..3, prop::bool::ANY, finite_f64()).prop_map(
        |(entity, code, with_probability, p)| DecisionRow {
            entity,
            decision: DecisionCode::from_code(code).unwrap_or(DecisionCode::Unsolved),
            probability: if with_probability { Some(p) } else { None },
        },
    )
}

fn group_s() -> impl Strategy<Value = DecisionGroupRow> {
    (0u32..8, 0u32..16, prop::collection::vec(decision_s(), 0..5)).prop_map(
        |(type_index, property, decisions)| DecisionGroupRow {
            type_index,
            property,
            decisions,
        },
    )
}

/// Canonical ingested ranges: strictly increasing, disjoint, and
/// non-adjacent, built from (gap, length) pairs so the invariant holds
/// by construction.
fn incremental_s() -> impl Strategy<Value = Option<IncrementalState>> {
    let state = (
        0u64..1000,
        0u64..u64::MAX,
        0u64..u64::MAX,
        prop::collection::vec((1u64..5, 1u64..5), 0..4),
        prop::collection::vec(0u64..64, 0..4),
    )
        .prop_map(|(rho, config_digest, corpus_digest, pieces, mut pending)| {
            let mut ingested = Vec::with_capacity(pieces.len());
            let mut cursor = 0u64;
            for (gap, len) in pieces {
                let start = cursor + gap;
                ingested.push((start, start + len));
                cursor = start + len;
            }
            pending.sort_unstable();
            pending.dedup();
            IncrementalState {
                rho,
                config_digest,
                corpus_digest,
                ingested,
                pending,
            }
        });
    (prop::bool::ANY, state).prop_map(|(present, state)| present.then_some(state))
}

/// Fingerprint rows sorted by `(type_index, property)` by construction.
fn fingerprints_s() -> impl Strategy<Value = Vec<GroupFingerprintRow>> {
    prop::collection::vec(
        (
            (0u32..8, 0u32..16),
            (0u64..64, 0u64..10_000, 0u64..u64::MAX),
        ),
        0..4,
    )
    .prop_map(|rows| {
        let sorted: std::collections::BTreeMap<(u32, u32), (u64, u64, u64)> =
            rows.into_iter().collect();
        sorted
            .into_iter()
            .map(
                |((type_index, property), (entities, total, fingerprint))| GroupFingerprintRow {
                    type_index,
                    property,
                    entities,
                    total,
                    fingerprint,
                },
            )
            .collect()
    })
}

fn snapshot_s() -> impl Strategy<Value = Snapshot> {
    (
        (
            prop::collection::vec(property_s(), 0..4),
            prop::collection::vec(type_s(), 0..3),
            prop::collection::vec(entity_s(), 0..4),
        ),
        (
            prop::collection::vec(evidence_s(), 0..6),
            0u64..64,
            prop::collection::vec(provenance_s(), 0..4),
        ),
        (
            prop::collection::vec(model_s(), 0..3),
            prop::collection::vec(group_s(), 0..3),
        ),
        (incremental_s(), fingerprints_s()),
    )
        .prop_map(
            |(
                (properties, types, entities),
                (evidence, provenance_sample_size, provenance),
                (models, decisions),
                (incremental, fingerprints),
            )| Snapshot {
                properties,
                types,
                entities,
                evidence,
                provenance_sample_size,
                provenance,
                models,
                decisions,
                incremental,
                fingerprints,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// encode → decode → encode is the identity on both the value and
    /// the bytes.
    #[test]
    fn round_trips_are_byte_identical(snapshot in snapshot_s()) {
        let bytes = encode(&snapshot);
        let decoded = decode(&bytes).map_err(|e| {
            TestCaseError::Fail(format!("decode failed: {e}"))
        })?;
        prop_assert_eq!(&decoded, &snapshot);
        prop_assert_eq!(encode(&decoded), bytes);
    }

    /// Arbitrary bytes decode to `Ok` or a typed error — never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = decode(&data);
        // Also past the magic gate, so section walking sees the fuzz.
        let mut framed = MAGIC.to_vec();
        framed.extend_from_slice(&data);
        let _ = decode(&framed);
    }

    /// Single-byte corruptions of a valid snapshot decode to `Ok` or a
    /// typed error — never a panic. (CRC catches payload damage; header
    /// damage maps to framing errors.)
    #[test]
    fn mutated_snapshots_never_panic(
        snapshot in snapshot_s(),
        position in 0u64..u64::MAX,
        mask in 1u8..=255,
    ) {
        let mut bytes = encode(&snapshot);
        let index = (position % bytes.len() as u64) as usize;
        bytes[index] ^= mask;
        let _ = decode(&bytes);
    }

    /// Every strict prefix of a valid snapshot is rejected with an error.
    #[test]
    fn truncated_snapshots_are_typed_errors(
        snapshot in snapshot_s(),
        cut in 0u64..u64::MAX,
    ) {
        let bytes = encode(&snapshot);
        let len = (cut % bytes.len() as u64) as usize;
        prop_assert!(decode(&bytes[..len]).is_err(), "prefix of {len} decoded");
    }

    /// Floats survive the wire bit-exactly, NaN payloads included.
    #[test]
    fn floats_round_trip_bit_exact(bits in 0u64..=u64::MAX) {
        let value = f64::from_bits(bits);
        let snapshot = Snapshot {
            models: vec![ModelRow {
                p_agree: value,
                q_trace: vec![value],
                ..ModelRow::default()
            }],
            ..Snapshot::default()
        };
        let decoded = decode(&encode(&snapshot)).map_err(|e| {
            TestCaseError::Fail(format!("decode failed: {e}"))
        })?;
        prop_assert_eq!(decoded.models[0].p_agree.to_bits(), bits);
        prop_assert_eq!(decoded.models[0].q_trace[0].to_bits(), bits);
    }
}
