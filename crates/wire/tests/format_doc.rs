//! FORMAT.md's worked example is executable: the hexdump printed in the
//! spec must be byte-for-byte what the encoder produces for the example
//! snapshot, and decoding the spec's bytes must reproduce the example.
//! If the encoder changes, this test fails until the spec is updated —
//! the byte tables in FORMAT.md can never silently drift.

use surveyor_wire::{
    decode, encode, DecisionCode, DecisionGroupRow, DecisionRow, EvidenceRow, ModelRow,
    ProvenanceRow, Snapshot, SnapshotEntity, SnapshotProperty, SnapshotType,
};

/// The snapshot FORMAT.md walks through byte by byte. Every float is
/// exactly representable so the dump is stable across platforms.
fn worked_example() -> Snapshot {
    Snapshot {
        properties: vec![SnapshotProperty {
            adverbs: vec!["very".into()],
            adjective: "cute".into(),
        }],
        types: vec![SnapshotType {
            name: "animal".into(),
            head_nouns: vec!["animal".into()],
            context_cues: vec![],
        }],
        entities: vec![
            SnapshotEntity {
                name: "Kitten".into(),
                aliases: vec!["kitty".into()],
                type_index: 0,
                attributes: vec![("legs".into(), 4.0)],
            },
            SnapshotEntity {
                name: "Tiger".into(),
                aliases: vec![],
                type_index: 0,
                attributes: vec![],
            },
        ],
        evidence: vec![EvidenceRow {
            entity: 0,
            property: 0,
            positive: 3,
            negative: 1,
        }],
        provenance_sample_size: 2,
        provenance: vec![ProvenanceRow {
            entity: 0,
            property: 0,
            documents: vec![7],
        }],
        models: vec![ModelRow {
            type_index: 0,
            property: 0,
            p_agree: 0.9,
            rate_pos: 4.0,
            rate_neg: 1.0,
            iterations: 2,
            converged: 0,
            log_likelihood: -1.5,
            q_trace: vec![],
            delta_trace: vec![],
        }],
        decisions: vec![DecisionGroupRow {
            type_index: 0,
            property: 0,
            decisions: vec![
                DecisionRow {
                    entity: 0,
                    decision: DecisionCode::Positive,
                    probability: Some(0.96875),
                },
                DecisionRow {
                    entity: 1,
                    decision: DecisionCode::Negative,
                    probability: None,
                },
            ],
        }],
        incremental: None,
        fingerprints: vec![],
    }
}

/// Canonical `offset  hex-bytes  |ascii|` dump, 16 bytes per line —
/// the exact text FORMAT.md embeds.
fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (line, chunk) in bytes.chunks(16).enumerate() {
        out.push_str(&format!("{:08x}  ", line * 16));
        for (i, byte) in chunk.iter().enumerate() {
            out.push_str(&format!("{byte:02x} "));
            if i == 7 {
                out.push(' ');
            }
        }
        for i in chunk.len()..16 {
            out.push_str("   ");
            if i == 7 {
                out.push(' ');
            }
        }
        out.push_str(" |");
        for &byte in chunk {
            out.push(if (0x20..0x7f).contains(&byte) {
                byte as char
            } else {
                '.'
            });
        }
        out.push_str("|\n");
    }
    out
}

/// The hexdump block between the spec's `hexdump` markers.
fn doc_hexdump() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../FORMAT.md");
    let doc = std::fs::read_to_string(path).expect("FORMAT.md exists beside the workspace root");
    let start = doc
        .find("<!-- hexdump:start -->")
        .expect("FORMAT.md has a hexdump:start marker");
    let end = doc
        .find("<!-- hexdump:end -->")
        .expect("FORMAT.md has a hexdump:end marker");
    let block = &doc[start..end];
    let fence_open = block.find("```text").expect("hexdump is a ```text fence") + "```text\n".len();
    let fence_close = block[fence_open..]
        .find("```")
        .expect("hexdump fence closes");
    block[fence_open..fence_open + fence_close].to_owned()
}

/// Parses the dump back into bytes (drops offsets and the ASCII gutter).
fn parse_hexdump(dump: &str) -> Vec<u8> {
    let mut bytes = Vec::new();
    for line in dump.lines() {
        let Some(rest) = line.split_once("  ").map(|(_, r)| r) else {
            continue;
        };
        let hex = rest.split('|').next().unwrap_or("");
        for token in hex.split_whitespace() {
            bytes.push(u8::from_str_radix(token, 16).expect("hex byte"));
        }
    }
    bytes
}

#[test]
fn doc_hexdump_is_exactly_what_the_encoder_produces() {
    let expected = hexdump(&encode(&worked_example()));
    let documented = doc_hexdump();
    assert_eq!(
        documented, expected,
        "FORMAT.md's worked hexdump no longer matches the encoder — \
         update the spec's example (and its byte tables) together with \
         the format change"
    );
}

#[test]
fn doc_hexdump_decodes_back_to_the_worked_example() {
    let bytes = parse_hexdump(&doc_hexdump());
    let snapshot = decode(&bytes).expect("the spec's bytes are a valid snapshot");
    assert_eq!(snapshot, worked_example());
    // And the example exercises both decision encodings the spec
    // documents: with and without a probability.
    let group = &snapshot.decisions[0];
    assert!(group.decisions[0].probability.is_some());
    assert!(group.decisions[1].probability.is_none());
}
