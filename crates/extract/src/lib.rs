//! Evidence extraction pipeline (paper §4 and Appendix B).
//!
//! Turns annotated documents into per-(entity, property) counts of positive
//! and negative statements:
//!
//! - [`config`]: which dependency patterns run, which verb class the
//!   adjectival-complement pattern admits, and whether the intrinsicness
//!   filters are active — including the four pattern versions of Table 4.
//! - [`patterns`]: the three extraction patterns of Figure 4 (adjectival
//!   modifier, adjectival complement, conjunction) over dependency trees.
//! - [`polarity`]: statement polarity via the negation-counting walk from
//!   the property token to the tree root (Figure 5), handling double
//!   negation.
//! - [`evidence`]: statements, evidence counters, and merge-able tables
//!   keyed by entity-property pairs, plus grouping by (type, property).
//! - [`runner`]: a sharded, multi-threaded extraction driver (the
//!   reproduction's stand-in for the paper's 5000-node MapReduce cluster).
//! - [`fault`]: the fault-tolerance layer — typed shard errors, the
//!   fallible source trait, retry/quarantine policies, and a seeded
//!   chaos injector for tests and the bench harness.
//! - [`antonyms`]: the antonym-as-negation alternative the paper rejected
//!   in §4, implemented so the ablation can measure why.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antonyms;
pub mod config;
pub mod evidence;
pub mod fault;
pub mod patterns;
pub mod polarity;
pub mod provenance;
pub mod runner;

pub use antonyms::AntonymLexicon;
pub use config::{ExtractionConfig, PatternVersion, VerbSet};
pub use evidence::{
    EvidenceCounts, EvidenceEntry, EvidenceTable, GroupKey, GroupedEvidence, Polarity, Statement,
};
pub use fault::{
    FailurePolicy, FallibleShardSource, Fault, FaultInjector, FaultPlan, QuarantinedShard,
    RetryPolicy, RunError, RunOutcome, ShardCoverage, ShardError, ShardSubset,
};
pub use patterns::{
    extract_sentence, extract_sentence_counted, extract_sentence_into, ExtractContext,
    PatternCounts,
};
pub use provenance::{ProvenanceEntry, ProvenanceTable};
pub use runner::{
    extract_documents, extract_documents_ctx, extract_documents_full, extract_documents_stats,
    run_sharded, run_sharded_fault_tolerant, run_sharded_full, run_sharded_observed, ExtractStats,
    ExtractionOutput, ShardSource,
};
