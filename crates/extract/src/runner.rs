//! Sharded, multi-threaded extraction driver.
//!
//! The paper ran extraction "on up to 5000 nodes" over a 40 TB snapshot
//! (§7.1). The reproduction's corpus is sharded the same way; this module
//! fans shards out over worker threads (crossbeam scoped threads), each
//! producing a local [`EvidenceTable`] that is merged reduce-style — merge
//! is associative and commutative, so completion order is irrelevant and
//! the result is deterministic.
//!
//! All entry points funnel into [`run_sharded_fault_tolerant`], the
//! hardened driver: per-shard work runs under `catch_unwind` so a
//! poisoned shard cannot take down the run, transient failures retry with
//! capped exponential backoff, and shards that exhaust their attempt
//! budget are quarantined (see [`crate::fault`]). The legacy infallible
//! wrappers use a one-attempt budget and re-raise the first panic, so
//! their behavior — and their output, bit for bit — is unchanged.

use crate::config::ExtractionConfig;
use crate::evidence::{EvidenceTable, Statement};
use crate::fault::{
    FailurePolicy, FallibleShardSource, QuarantinedShard, RetryPolicy, RunError, RunOutcome,
    ShardCoverage, ShardError,
};
use crate::patterns::{extract_sentence_into, ExtractContext, PatternCounts};
use crate::provenance::ProvenanceTable;
use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use surveyor_kb::{CacheStats, KnowledgeBase};
use surveyor_nlp::AnnotatedDocument;
use surveyor_obs::MetricsRegistry;

/// A source of document shards that worker threads can pull from.
///
/// Implementations generate or load shard `i` on demand; the corpus crate's
/// generator implements this so documents never need to be materialized all
/// at once.
pub trait ShardSource: Sync {
    /// Number of shards available.
    fn shard_count(&self) -> usize;
    /// Materializes shard `index` (`0 <= index < shard_count`). Sources that
    /// already hold annotated documents in memory return borrowed shards;
    /// generating/loading sources return owned ones.
    fn shard(&self, index: usize) -> Cow<'_, [AnnotatedDocument]>;
}

/// A pre-materialized slice shards itself by reference: one borrowed chunk
/// per available core, so every worker gets work and nothing is cloned.
/// (This used to deep-clone the entire slice as a single shard, serializing
/// the whole batch onto one worker.)
impl ShardSource for &[AnnotatedDocument] {
    fn shard_count(&self) -> usize {
        let chunk = slice_chunk_size(self.len());
        self.len().div_ceil(chunk)
    }

    fn shard(&self, index: usize) -> Cow<'_, [AnnotatedDocument]> {
        let chunk = slice_chunk_size(self.len());
        let start = index * chunk;
        Cow::Borrowed(&self[start..(start + chunk).min(self.len())])
    }
}

/// Chunk size that splits `len` documents into at most one shard per
/// available core (minimum one document per shard).
fn slice_chunk_size(len: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    len.div_ceil(cores).max(1)
}

/// Extraction results: the counters plus supporting-document samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExtractionOutput {
    /// Evidence counters per entity-property pair.
    pub evidence: EvidenceTable,
    /// Bounded supporting-document samples per pair.
    pub provenance: ProvenanceTable,
}

impl ExtractionOutput {
    fn merge(&mut self, other: ExtractionOutput) {
        self.evidence.merge(other.evidence);
        self.provenance.merge(other.provenance);
    }
}

/// Worker-local extraction tallies. Plain integers incremented on the
/// hot path; flushed into a [`MetricsRegistry`] once per worker when the
/// worker finishes, so observation adds no per-document synchronization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Documents processed.
    pub documents: u64,
    /// Sentences scanned.
    pub sentences: u64,
    /// Statements extracted (post-dedup).
    pub statements: u64,
    /// Raw per-pattern hits (pre-dedup).
    pub patterns: PatternCounts,
}

impl ExtractStats {
    fn merge(&mut self, other: ExtractStats) {
        self.documents += other.documents;
        self.sentences += other.sentences;
        self.statements += other.statements;
        self.patterns.merge(other.patterns);
    }

    /// Flushes the tallies into `extract.*` counters.
    fn flush(&self, obs: &MetricsRegistry) {
        obs.add("extract.documents", self.documents);
        obs.add("extract.sentences", self.sentences);
        obs.add("extract.statements", self.statements);
        obs.add("extract.pattern_hits.acomp", self.patterns.acomp);
        obs.add("extract.pattern_hits.amod", self.patterns.amod);
    }
}

/// Extracts evidence from a document batch sequentially.
pub fn extract_documents(
    docs: &[AnnotatedDocument],
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
) -> EvidenceTable {
    extract_documents_full(docs, kb, config).evidence
}

/// Like [`extract_documents`], also tracking provenance: which documents
/// support each pair ("offer links to supporting content on the Web as
/// query result", §2).
pub fn extract_documents_full(
    docs: &[AnnotatedDocument],
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
) -> ExtractionOutput {
    extract_documents_stats(docs, kb, config, &mut ExtractStats::default())
}

/// Like [`extract_documents_full`], also tallying throughput counters
/// into `stats`.
pub fn extract_documents_stats(
    docs: &[AnnotatedDocument],
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    stats: &mut ExtractStats,
) -> ExtractionOutput {
    extract_documents_ctx(docs, kb, config, stats, &mut ExtractContext::new())
}

/// The worker loop: like [`extract_documents_stats`] but threading a
/// long-lived [`ExtractContext`] through every sentence, so statement
/// buffers and the interner cache persist across documents (and across
/// shards, when the caller reuses the context).
pub fn extract_documents_ctx(
    docs: &[AnnotatedDocument],
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    stats: &mut ExtractStats,
    cx: &mut ExtractContext,
) -> ExtractionOutput {
    let mut output = ExtractionOutput::default();
    let mut statements: Vec<Statement> = Vec::new();
    for doc in docs {
        stats.documents += 1;
        for sentence in &doc.sentences {
            stats.sentences += 1;
            extract_sentence_into(
                sentence,
                kb,
                config,
                &mut stats.patterns,
                cx,
                &mut statements,
            );
            for statement in &statements {
                stats.statements += 1;
                output.evidence.add(statement);
                output.provenance.record(statement, doc.id);
            }
        }
    }
    output
}

/// Runs extraction over all shards of `source` on `num_threads` workers and
/// returns the merged evidence table.
///
/// Work distribution is dynamic (an atomic shard cursor), so skewed shard
/// sizes — which the Zipf-popularity corpus produces — still balance.
///
/// # Panics
/// Panics if `num_threads == 0`.
pub fn run_sharded<S: ShardSource>(
    source: &S,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    num_threads: usize,
) -> EvidenceTable {
    run_sharded_full(source, kb, config, num_threads).evidence
}

/// Like [`run_sharded`], also collecting provenance.
///
/// # Panics
/// Panics if `num_threads == 0`.
pub fn run_sharded_full<S: ShardSource>(
    source: &S,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    num_threads: usize,
) -> ExtractionOutput {
    run_sharded_impl(source, kb, config, num_threads, None)
}

/// Like [`run_sharded_full`], flushing per-worker [`ExtractStats`] into
/// `obs` as `extract.*` counters when the workers join. The extracted
/// evidence is identical to the unobserved run.
///
/// # Panics
/// Panics if `num_threads == 0`.
pub fn run_sharded_observed<S: ShardSource>(
    source: &S,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    num_threads: usize,
    obs: &MetricsRegistry,
) -> ExtractionOutput {
    run_sharded_impl(source, kb, config, num_threads, Some(obs))
}

fn run_sharded_impl<S: ShardSource>(
    source: &S,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    num_threads: usize,
    obs: Option<&MetricsRegistry>,
) -> ExtractionOutput {
    match run_sharded_fault_tolerant(
        source,
        kb,
        config,
        num_threads,
        &RetryPolicy::no_retries(),
        &FailurePolicy::FailFast,
        obs,
    ) {
        Ok(outcome) => outcome.output,
        // Preserve the historical contract of the infallible API: a
        // panicking shard panics the run (isolation is opt-in via
        // `run_sharded_fault_tolerant`).
        Err(RunError::ShardFailed { shard, error, .. }) => {
            let msg = format!(
                "extraction worker panicked on shard {shard}: {}",
                error.message()
            );
            panic!("{msg}") // lint:allow(no-panic-in-lib): documented: the legacy entry point propagates shard panics
        }
        // Infallible sources cannot produce shard errors and FailFast
        // never checks a coverage floor.
        Err(e) => panic!("extraction failed: {e}"), // lint:allow(no-panic-in-lib): infallible sources cannot fail and FailFast checks no floor
    }
}

/// One attempt at materializing and extracting a shard, with panics
/// caught and classified as [`ShardError::Panicked`]. Stats and output
/// are produced fresh per attempt so a failed attempt leaves no residue.
/// The context survives across attempts: its cache only holds mappings
/// the global interner handed out, so an unwound attempt cannot leave it
/// inconsistent.
fn attempt_shard<F: FallibleShardSource>(
    source: &F,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    index: usize,
    attempt: u32,
    cx: &mut ExtractContext,
) -> Result<(ExtractionOutput, ExtractStats), ShardError> {
    let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        source.try_shard(index, attempt).map(|docs| {
            let mut stats = ExtractStats::default();
            let output = extract_documents_ctx(&docs, kb, config, &mut stats, cx);
            (output, stats)
        })
    }));
    match unwind {
        Ok(result) => result,
        Err(payload) => Err(ShardError::Panicked(panic_message(&payload))),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs extraction over all shards of a fallible `source` with panic
/// isolation, retry, and quarantine — the hardened driver behind every
/// `run_sharded*` entry point.
///
/// Per shard: up to `retry.max_attempts` attempts, each under
/// `catch_unwind`. Transient errors retry after a capped-exponential
/// backoff ([`RetryPolicy::backoff`]); permanent errors and panics fail
/// the shard immediately. A shard that exhausts its budget is handled per
/// `policy`:
///
/// - [`FailurePolicy::FailFast`] — workers stop pulling new shards and
///   the run returns [`RunError::ShardFailed`] naming the lowest-indexed
///   failed shard. (The shard cursor is monotonic, so every shard below
///   the first faulty one was already pulled and clean — the lowest
///   observed failure is deterministic for a deterministic source.)
/// - [`FailurePolicy::Degrade`] — the shard is quarantined and the run
///   continues; once all shards are settled the coverage fraction is
///   checked against the floor and the run either returns
///   [`RunError::CoverageBelowFloor`] or the merged output of every
///   surviving shard, plus the full [`ShardCoverage`] accounting.
///
/// Dropping or retrying shards is semantically safe because evidence
/// merge is associative and commutative: the output over the surviving
/// shard set is bit-identical to a clean run over only those shards, for
/// any worker count and completion order. Observation (`obs`) flushes
/// stats from surviving shards only, and only on success.
///
/// # Panics
/// Panics if `num_threads == 0`.
pub fn run_sharded_fault_tolerant<F: FallibleShardSource>(
    source: &F,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    num_threads: usize,
    retry: &RetryPolicy,
    policy: &FailurePolicy,
    obs: Option<&MetricsRegistry>,
) -> Result<RunOutcome, RunError> {
    assert!(num_threads > 0, "need at least one worker thread");
    let max_attempts = retry.max_attempts.max(1);
    let fail_fast = matches!(policy, FailurePolicy::FailFast);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let timed = obs.is_some();
    let shard_count = source.shard_count();

    // Workers share nothing but the two atomics above. Everything they
    // accumulate comes back by value over the join handle and is merged
    // here, on the calling thread, ordered by each worker's lowest shard
    // index — so the merge sequence is a function of shard assignment,
    // never of completion order. (Evidence merge is commutative, so this
    // ordering is belt and braces for bit-identity across thread counts.)
    let mut outcomes = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..num_threads.min(shard_count.max(1)))
            .map(|_| {
                scope.spawn(|_| {
                    let mut outcome = WorkerOutcome::default();
                    let mut cx = ExtractContext::new();
                    let started = timed.then(Instant::now); // lint:allow(no-wall-clock): feeds the obs straggler histograms only, never the output
                    'shards: loop {
                        if fail_fast && abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= shard_count {
                            break;
                        }
                        outcome.first_shard = outcome.first_shard.min(idx);
                        let shard_started = timed.then(Instant::now); // lint:allow(no-wall-clock): feeds the obs straggler histograms only, never the output
                        let mut attempt = 0u32;
                        let failure = loop {
                            match attempt_shard(source, kb, config, idx, attempt, &mut cx) {
                                Ok((output, attempt_stats)) => {
                                    outcome.output.merge(output);
                                    outcome.stats.merge(attempt_stats);
                                    outcome.succeeded += 1;
                                    if let Some(s) = shard_started {
                                        outcome.work += s.elapsed();
                                    }
                                    continue 'shards;
                                }
                                Err(error)
                                    if error.is_transient() && attempt + 1 < max_attempts =>
                                {
                                    let delay = retry.backoff(attempt);
                                    if !delay.is_zero() {
                                        std::thread::sleep(delay);
                                    }
                                    outcome.retries += 1;
                                    attempt += 1;
                                }
                                Err(error) => break (attempt + 1, error),
                            }
                        };
                        let (attempts, error) = failure;
                        if let Some(s) = shard_started {
                            outcome.work += s.elapsed();
                        }
                        if fail_fast {
                            outcome.first_failure = Some((idx, attempts, error));
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                        outcome.quarantined.push(QuarantinedShard {
                            shard: idx,
                            attempts,
                            error,
                        });
                    }
                    if let Some(started) = started {
                        outcome.wait = started.elapsed().saturating_sub(outcome.work);
                    }
                    outcome.cache = cx.cache_stats();
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("fault-tolerant workers never unwind")) // lint:allow(no-panic-in-lib): every shard attempt runs under catch_unwind, so workers never unwind
            .collect::<Vec<WorkerOutcome>>()
    })
    .expect("fault-tolerant workers never unwind"); // lint:allow(no-panic-in-lib): every shard attempt runs under catch_unwind, so workers never unwind

    outcomes.sort_by_key(|o| o.first_shard);
    let first_failure = outcomes
        .iter()
        .enumerate()
        .filter_map(|(i, o)| o.first_failure.as_ref().map(|f| (f.0, i)))
        .min()
        .map(|(_, i)| i);
    if let Some(i) = first_failure {
        // Take the lowest-indexed failure by value; the cursor is
        // monotonic, so for a deterministic source this shard is the same
        // for every worker count.
        let (shard, attempts, error) = outcomes
            .swap_remove(i)
            .first_failure
            .expect("selected outcome carries a failure"); // lint:allow(no-panic-in-lib): the index was selected from outcomes with first_failure set
        return Err(RunError::ShardFailed {
            shard,
            attempts,
            error,
        });
    }

    let mut result = ExtractionOutput::default();
    let mut stats = ExtractStats::default();
    let mut cache = CacheStats::default();
    let mut succeeded = 0usize;
    let mut retries = 0u64;
    let mut quarantined: Vec<QuarantinedShard> = Vec::new();
    for outcome in outcomes {
        result.merge(outcome.output);
        stats.merge(outcome.stats);
        cache.merge(outcome.cache);
        succeeded += outcome.succeeded;
        retries += outcome.retries;
        quarantined.extend(outcome.quarantined);
        if let Some(obs) = obs {
            obs.observe("extract.worker.work_seconds", outcome.work.as_secs_f64());
            obs.observe(
                "extract.worker.queue_wait_seconds",
                outcome.wait.as_secs_f64(),
            );
        }
    }
    quarantined.sort_by_key(|q| q.shard);
    let coverage = ShardCoverage {
        shard_count,
        succeeded,
        retries,
        quarantined,
    };
    if let FailurePolicy::Degrade { min_shard_coverage } = policy {
        if coverage.fraction() < *min_shard_coverage {
            return Err(RunError::CoverageBelowFloor {
                succeeded: coverage.succeeded,
                shard_count: coverage.shard_count,
                min_shard_coverage: *min_shard_coverage,
                quarantined: coverage.quarantined_shards(),
            });
        }
    }
    if let Some(obs) = obs {
        stats.flush(obs);
        obs.add("extract.intern.cache_hits", cache.hits);
        obs.add("extract.intern.global_lookups", cache.global_lookups);
    }
    Ok(RunOutcome {
        output: result,
        coverage,
    })
}

/// Everything one worker accumulated, handed back by value over the join
/// handle — the shared-`Mutex` merge path this replaced serialized every
/// worker's exit on one lock.
struct WorkerOutcome {
    /// Lowest shard index this worker pulled (`usize::MAX` if none): the
    /// deterministic merge-order key.
    first_shard: usize,
    output: ExtractionOutput,
    stats: ExtractStats,
    cache: CacheStats,
    succeeded: usize,
    retries: u64,
    quarantined: Vec<QuarantinedShard>,
    /// Under `FailFast`, the lowest-indexed shard this worker saw fail.
    first_failure: Option<(usize, u32, ShardError)>,
    /// Time inside shard attempts, when an observer requested timing.
    work: Duration,
    /// Worker lifetime minus `work`: scheduling plus cursor waits — the
    /// straggler signal surfaced as `extract.worker.queue_wait_seconds`.
    wait: Duration,
}

impl Default for WorkerOutcome {
    fn default() -> Self {
        Self {
            first_shard: usize::MAX,
            output: ExtractionOutput::default(),
            stats: ExtractStats::default(),
            cache: CacheStats::default(),
            succeeded: 0,
            retries: 0,
            quarantined: Vec::new(),
            first_failure: None,
            work: Duration::ZERO,
            wait: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_kb::{KnowledgeBaseBuilder, Property};
    use surveyor_nlp::{annotate, Lexicon};

    struct TextShards {
        shards: Vec<Vec<String>>,
        kb: KnowledgeBase,
        lexicon: Lexicon,
    }

    impl ShardSource for TextShards {
        fn shard_count(&self) -> usize {
            self.shards.len()
        }

        fn shard(&self, index: usize) -> Cow<'_, [AnnotatedDocument]> {
            Cow::Owned(
                self.shards[index]
                    .iter()
                    .enumerate()
                    .map(|(i, text)| {
                        annotate((index * 1000 + i) as u64, text, &self.kb, &self.lexicon)
                    })
                    .collect(),
            )
        }
    }

    fn kb() -> KnowledgeBase {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        b.add_entity("Kitten", animal).finish();
        b.add_entity("Tiger", animal).finish();
        b.build()
    }

    fn source(kb: KnowledgeBase) -> TextShards {
        let mut shards = Vec::new();
        for s in 0..8 {
            let mut docs = Vec::new();
            for d in 0..5 {
                if (s + d) % 3 == 0 {
                    docs.push("Kittens are cute. Tigers are not cute.".to_owned());
                } else {
                    docs.push("Kittens are cute animals.".to_owned());
                }
            }
            shards.push(docs);
        }
        TextShards {
            shards,
            kb,
            lexicon: Lexicon::new(),
        }
    }

    #[test]
    fn sequential_extraction_counts() {
        let kb = kb();
        let lex = Lexicon::new();
        let docs = vec![
            annotate(0, "Kittens are cute. Tigers are not cute.", &kb, &lex),
            annotate(1, "Kittens are cute animals.", &kb, &lex),
        ];
        let table = extract_documents(&docs, &kb, &ExtractionConfig::paper_final());
        let cute = Property::adjective("cute");
        let kitten = kb.entity_by_name("Kitten").unwrap();
        let tiger = kb.entity_by_name("Tiger").unwrap();
        assert_eq!(table.counts(kitten, &cute).positive, 2);
        assert_eq!(table.counts(tiger, &cute).negative, 1);
        assert_eq!(table.total_statements(), 3);
    }

    #[test]
    fn parallel_matches_sequential() {
        let kb = kb();
        let src = source(kb.clone());
        let config = ExtractionConfig::paper_final();
        let seq = run_sharded(&src, &kb, &config, 1);
        for threads in [2, 4, 8] {
            let par = run_sharded(&src, &kb, &config, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn observed_run_matches_and_fills_counters() {
        let kb = kb();
        let src = source(kb.clone());
        let config = ExtractionConfig::paper_final();
        let plain = run_sharded_full(&src, &kb, &config, 4);
        let obs = MetricsRegistry::new();
        let observed = run_sharded_observed(&src, &kb, &config, 4, &obs);
        assert_eq!(plain, observed);
        assert_eq!(obs.counter_value("extract.documents"), 40);
        assert!(obs.counter_value("extract.sentences") >= 40);
        assert_eq!(
            obs.counter_value("extract.statements"),
            observed.evidence.total_statements()
        );
        // Every statement in this fixture comes from the acomp pattern
        // ("Kittens are cute"), none from amod.
        assert!(obs.counter_value("extract.pattern_hits.acomp") > 0);
    }

    #[test]
    fn more_threads_than_shards_is_fine() {
        let kb = kb();
        let src = source(kb.clone());
        let table = run_sharded(&src, &kb, &ExtractionConfig::paper_final(), 64);
        assert!(table.total_statements() > 0);
    }

    #[test]
    fn slice_shard_source() {
        let kb = kb();
        let lex = Lexicon::new();
        let docs = vec![annotate(0, "Kittens are cute.", &kb, &lex)];
        let slice: &[AnnotatedDocument] = &docs;
        let table = run_sharded(&slice, &kb, &ExtractionConfig::paper_final(), 2);
        assert_eq!(table.total_statements(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let kb = kb();
        let docs: Vec<AnnotatedDocument> = Vec::new();
        let slice: &[AnnotatedDocument] = &docs;
        let _ = run_sharded(&slice, &kb, &ExtractionConfig::paper_final(), 0);
    }

    mod fault_tolerance {
        use super::*;
        use crate::fault::{FailurePolicy, Fault, FaultInjector, FaultPlan, RetryPolicy, RunError};

        fn chaotic(plan: FaultPlan) -> (KnowledgeBase, FaultInjector<TextShards>) {
            let kb = kb();
            let src = source(kb.clone());
            (kb, FaultInjector::new(src, plan))
        }

        #[test]
        fn zero_faults_output_is_bit_identical_to_plain_runner() {
            let kb = kb();
            let src = source(kb.clone());
            let config = ExtractionConfig::paper_final();
            let plain = run_sharded_full(&src, &kb, &config, 4);
            for threads in [1, 4] {
                let outcome = run_sharded_fault_tolerant(
                    &src,
                    &kb,
                    &config,
                    threads,
                    &RetryPolicy::default(),
                    &FailurePolicy::Degrade {
                        min_shard_coverage: 1.0,
                    },
                    None,
                )
                .unwrap();
                assert_eq!(outcome.output, plain);
                assert_eq!(outcome.coverage.succeeded, ShardSource::shard_count(&src));
                assert_eq!(outcome.coverage.retries, 0);
                assert!(outcome.coverage.quarantined.is_empty());
                assert_eq!(outcome.coverage.fraction(), 1.0);
            }
        }

        #[test]
        fn panicking_shard_is_isolated_and_quarantined() {
            let (kb, src) = chaotic(FaultPlan::none().with(3, Fault::Panic));
            let config = ExtractionConfig::paper_final();
            let outcome = run_sharded_fault_tolerant(
                &src,
                &kb,
                &config,
                4,
                &RetryPolicy::immediate(),
                &FailurePolicy::degrade_unchecked(),
                None,
            )
            .unwrap();
            assert_eq!(outcome.coverage.quarantined_shards(), vec![3]);
            assert_eq!(outcome.coverage.succeeded, 7);
            assert_eq!(outcome.coverage.attempted(), 8);
            // Panics do not burn retries.
            assert_eq!(outcome.coverage.quarantined[0].attempts, 1);
            assert!(matches!(
                outcome.coverage.quarantined[0].error,
                crate::fault::ShardError::Panicked(_)
            ));
            // The surviving output equals a clean run over the other shards.
            let full = run_sharded_full(src.inner(), &kb, &config, 4);
            assert!(outcome.output.evidence.total_statements() < full.evidence.total_statements());
        }

        #[test]
        fn transient_faults_recover_via_retry_with_identical_output() {
            let plan = FaultPlan::none()
                .with(1, Fault::Transient { failures: 1 })
                .with(5, Fault::Transient { failures: 2 });
            let (kb, src) = chaotic(plan);
            let config = ExtractionConfig::paper_final();
            let outcome = run_sharded_fault_tolerant(
                &src,
                &kb,
                &config,
                4,
                &RetryPolicy::immediate(),
                &FailurePolicy::Degrade {
                    min_shard_coverage: 1.0,
                },
                None,
            )
            .unwrap();
            assert_eq!(outcome.coverage.succeeded, 8);
            assert_eq!(outcome.coverage.retries, 3);
            assert!(outcome.coverage.quarantined.is_empty());
            assert_eq!(
                outcome.output,
                run_sharded_full(src.inner(), &kb, &config, 4)
            );
        }

        #[test]
        fn exhausted_transient_shard_is_quarantined_with_attempt_budget() {
            let (kb, src) = chaotic(FaultPlan::none().with(2, Fault::Transient { failures: 99 }));
            let outcome = run_sharded_fault_tolerant(
                &src,
                &kb,
                &ExtractionConfig::paper_final(),
                2,
                &RetryPolicy::immediate(),
                &FailurePolicy::degrade_unchecked(),
                None,
            )
            .unwrap();
            assert_eq!(outcome.coverage.quarantined_shards(), vec![2]);
            assert_eq!(
                outcome.coverage.quarantined[0].attempts,
                RetryPolicy::immediate().max_attempts
            );
            assert_eq!(
                outcome.coverage.retries,
                u64::from(RetryPolicy::immediate().max_attempts - 1)
            );
        }

        #[test]
        fn fail_fast_names_the_lowest_failed_shard() {
            let plan = FaultPlan::none()
                .with(2, Fault::Permanent)
                .with(6, Fault::Panic);
            let (kb, src) = chaotic(plan);
            for threads in [1, 4] {
                let err = run_sharded_fault_tolerant(
                    &src,
                    &kb,
                    &ExtractionConfig::paper_final(),
                    threads,
                    &RetryPolicy::immediate(),
                    &FailurePolicy::FailFast,
                    None,
                )
                .unwrap_err();
                match err {
                    RunError::ShardFailed { shard, .. } => assert_eq!(shard, 2),
                    other => panic!("unexpected error: {other:?}"),
                }
            }
        }

        #[test]
        fn coverage_floor_rejects_too_degraded_runs() {
            let plan = FaultPlan::none()
                .with(0, Fault::Permanent)
                .with(1, Fault::Permanent)
                .with(2, Fault::Permanent);
            let (kb, src) = chaotic(plan);
            let err = run_sharded_fault_tolerant(
                &src,
                &kb,
                &ExtractionConfig::paper_final(),
                4,
                &RetryPolicy::immediate(),
                &FailurePolicy::Degrade {
                    min_shard_coverage: 0.9,
                },
                None,
            )
            .unwrap_err();
            match err {
                RunError::CoverageBelowFloor {
                    succeeded,
                    shard_count,
                    quarantined,
                    ..
                } => {
                    assert_eq!((succeeded, shard_count), (5, 8));
                    assert_eq!(quarantined, vec![0, 1, 2]);
                }
                other => panic!("unexpected error: {other:?}"),
            }
        }

        #[test]
        #[should_panic(expected = "extraction worker panicked on shard")]
        fn legacy_api_still_panics_on_poisoned_shard() {
            struct Poisoned;
            impl ShardSource for Poisoned {
                fn shard_count(&self) -> usize {
                    2
                }
                fn shard(&self, index: usize) -> Cow<'_, [AnnotatedDocument]> {
                    if index == 1 {
                        panic!("poisoned shard");
                    }
                    Cow::Owned(Vec::new())
                }
            }
            let kb = kb();
            let _ = run_sharded(&Poisoned, &kb, &ExtractionConfig::paper_final(), 2);
        }

        #[test]
        fn slow_shard_still_succeeds() {
            let (kb, src) = chaotic(FaultPlan::none().with(4, Fault::Slow { millis: 1 }));
            let config = ExtractionConfig::paper_final();
            let outcome = run_sharded_fault_tolerant(
                &src,
                &kb,
                &config,
                4,
                &RetryPolicy::immediate(),
                &FailurePolicy::Degrade {
                    min_shard_coverage: 1.0,
                },
                None,
            )
            .unwrap();
            assert_eq!(outcome.coverage.succeeded, 8);
            assert_eq!(
                outcome.output,
                run_sharded_full(src.inner(), &kb, &config, 4)
            );
        }
    }
}
