//! Sharded, multi-threaded extraction driver.
//!
//! The paper ran extraction "on up to 5000 nodes" over a 40 TB snapshot
//! (§7.1). The reproduction's corpus is sharded the same way; this module
//! fans shards out over worker threads (crossbeam scoped threads), each
//! producing a local [`EvidenceTable`] that is merged reduce-style — merge
//! is associative and commutative, so completion order is irrelevant and
//! the result is deterministic.

use crate::config::ExtractionConfig;
use crate::evidence::EvidenceTable;
use crate::patterns::{extract_sentence_counted, PatternCounts};
use crate::provenance::ProvenanceTable;
use parking_lot::Mutex;
use std::borrow::Cow;
use std::sync::atomic::{AtomicUsize, Ordering};
use surveyor_kb::KnowledgeBase;
use surveyor_nlp::AnnotatedDocument;
use surveyor_obs::MetricsRegistry;

/// A source of document shards that worker threads can pull from.
///
/// Implementations generate or load shard `i` on demand; the corpus crate's
/// generator implements this so documents never need to be materialized all
/// at once.
pub trait ShardSource: Sync {
    /// Number of shards available.
    fn shard_count(&self) -> usize;
    /// Materializes shard `index` (`0 <= index < shard_count`). Sources that
    /// already hold annotated documents in memory return borrowed shards;
    /// generating/loading sources return owned ones.
    fn shard(&self, index: usize) -> Cow<'_, [AnnotatedDocument]>;
}

/// A pre-materialized slice shards itself by reference: one borrowed chunk
/// per available core, so every worker gets work and nothing is cloned.
/// (This used to deep-clone the entire slice as a single shard, serializing
/// the whole batch onto one worker.)
impl ShardSource for &[AnnotatedDocument] {
    fn shard_count(&self) -> usize {
        let chunk = slice_chunk_size(self.len());
        self.len().div_ceil(chunk)
    }

    fn shard(&self, index: usize) -> Cow<'_, [AnnotatedDocument]> {
        let chunk = slice_chunk_size(self.len());
        let start = index * chunk;
        Cow::Borrowed(&self[start..(start + chunk).min(self.len())])
    }
}

/// Chunk size that splits `len` documents into at most one shard per
/// available core (minimum one document per shard).
fn slice_chunk_size(len: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    len.div_ceil(cores).max(1)
}

/// Extraction results: the counters plus supporting-document samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExtractionOutput {
    /// Evidence counters per entity-property pair.
    pub evidence: EvidenceTable,
    /// Bounded supporting-document samples per pair.
    pub provenance: ProvenanceTable,
}

impl ExtractionOutput {
    fn merge(&mut self, other: ExtractionOutput) {
        self.evidence.merge(other.evidence);
        self.provenance.merge(other.provenance);
    }
}

/// Worker-local extraction tallies. Plain integers incremented on the
/// hot path; flushed into a [`MetricsRegistry`] once per worker when the
/// worker finishes, so observation adds no per-document synchronization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Documents processed.
    pub documents: u64,
    /// Sentences scanned.
    pub sentences: u64,
    /// Statements extracted (post-dedup).
    pub statements: u64,
    /// Raw per-pattern hits (pre-dedup).
    pub patterns: PatternCounts,
}

impl ExtractStats {
    fn merge(&mut self, other: ExtractStats) {
        self.documents += other.documents;
        self.sentences += other.sentences;
        self.statements += other.statements;
        self.patterns.merge(other.patterns);
    }

    /// Flushes the tallies into `extract.*` counters.
    fn flush(&self, obs: &MetricsRegistry) {
        obs.add("extract.documents", self.documents);
        obs.add("extract.sentences", self.sentences);
        obs.add("extract.statements", self.statements);
        obs.add("extract.pattern_hits.acomp", self.patterns.acomp);
        obs.add("extract.pattern_hits.amod", self.patterns.amod);
    }
}

/// Extracts evidence from a document batch sequentially.
pub fn extract_documents(
    docs: &[AnnotatedDocument],
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
) -> EvidenceTable {
    extract_documents_full(docs, kb, config).evidence
}

/// Like [`extract_documents`], also tracking provenance: which documents
/// support each pair ("offer links to supporting content on the Web as
/// query result", §2).
pub fn extract_documents_full(
    docs: &[AnnotatedDocument],
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
) -> ExtractionOutput {
    extract_documents_stats(docs, kb, config, &mut ExtractStats::default())
}

/// Like [`extract_documents_full`], also tallying throughput counters
/// into `stats`.
pub fn extract_documents_stats(
    docs: &[AnnotatedDocument],
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    stats: &mut ExtractStats,
) -> ExtractionOutput {
    let mut output = ExtractionOutput::default();
    for doc in docs {
        stats.documents += 1;
        for sentence in &doc.sentences {
            stats.sentences += 1;
            for statement in extract_sentence_counted(sentence, kb, config, &mut stats.patterns) {
                stats.statements += 1;
                output.evidence.add(&statement);
                output.provenance.record(&statement, doc.id);
            }
        }
    }
    output
}

/// Runs extraction over all shards of `source` on `num_threads` workers and
/// returns the merged evidence table.
///
/// Work distribution is dynamic (an atomic shard cursor), so skewed shard
/// sizes — which the Zipf-popularity corpus produces — still balance.
///
/// # Panics
/// Panics if `num_threads == 0`.
pub fn run_sharded<S: ShardSource>(
    source: &S,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    num_threads: usize,
) -> EvidenceTable {
    run_sharded_full(source, kb, config, num_threads).evidence
}

/// Like [`run_sharded`], also collecting provenance.
///
/// # Panics
/// Panics if `num_threads == 0`.
pub fn run_sharded_full<S: ShardSource>(
    source: &S,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    num_threads: usize,
) -> ExtractionOutput {
    run_sharded_impl(source, kb, config, num_threads, None)
}

/// Like [`run_sharded_full`], flushing per-worker [`ExtractStats`] into
/// `obs` as `extract.*` counters when the workers join. The extracted
/// evidence is identical to the unobserved run.
///
/// # Panics
/// Panics if `num_threads == 0`.
pub fn run_sharded_observed<S: ShardSource>(
    source: &S,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    num_threads: usize,
    obs: &MetricsRegistry,
) -> ExtractionOutput {
    run_sharded_impl(source, kb, config, num_threads, Some(obs))
}

fn run_sharded_impl<S: ShardSource>(
    source: &S,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    num_threads: usize,
    obs: Option<&MetricsRegistry>,
) -> ExtractionOutput {
    assert!(num_threads > 0, "need at least one worker thread");
    let cursor = AtomicUsize::new(0);
    let result = Mutex::new(ExtractionOutput::default());
    let stats = Mutex::new(ExtractStats::default());
    let shard_count = source.shard_count();

    crossbeam::scope(|scope| {
        for _ in 0..num_threads.min(shard_count.max(1)) {
            scope.spawn(|_| {
                let mut local = ExtractionOutput::default();
                let mut local_stats = ExtractStats::default();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= shard_count {
                        break;
                    }
                    let docs = source.shard(idx);
                    local.merge(extract_documents_stats(&docs, kb, config, &mut local_stats));
                }
                result.lock().merge(local);
                if obs.is_some() {
                    stats.lock().merge(local_stats);
                }
            });
        }
    })
    .expect("extraction worker panicked");

    if let Some(obs) = obs {
        stats.into_inner().flush(obs);
    }
    result.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_kb::{KnowledgeBaseBuilder, Property};
    use surveyor_nlp::{annotate, Lexicon};

    struct TextShards {
        shards: Vec<Vec<String>>,
        kb: KnowledgeBase,
        lexicon: Lexicon,
    }

    impl ShardSource for TextShards {
        fn shard_count(&self) -> usize {
            self.shards.len()
        }

        fn shard(&self, index: usize) -> Cow<'_, [AnnotatedDocument]> {
            Cow::Owned(
                self.shards[index]
                    .iter()
                    .enumerate()
                    .map(|(i, text)| {
                        annotate((index * 1000 + i) as u64, text, &self.kb, &self.lexicon)
                    })
                    .collect(),
            )
        }
    }

    fn kb() -> KnowledgeBase {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        b.add_entity("Kitten", animal).finish();
        b.add_entity("Tiger", animal).finish();
        b.build()
    }

    fn source(kb: KnowledgeBase) -> TextShards {
        let mut shards = Vec::new();
        for s in 0..8 {
            let mut docs = Vec::new();
            for d in 0..5 {
                if (s + d) % 3 == 0 {
                    docs.push("Kittens are cute. Tigers are not cute.".to_owned());
                } else {
                    docs.push("Kittens are cute animals.".to_owned());
                }
            }
            shards.push(docs);
        }
        TextShards {
            shards,
            kb,
            lexicon: Lexicon::new(),
        }
    }

    #[test]
    fn sequential_extraction_counts() {
        let kb = kb();
        let lex = Lexicon::new();
        let docs = vec![
            annotate(0, "Kittens are cute. Tigers are not cute.", &kb, &lex),
            annotate(1, "Kittens are cute animals.", &kb, &lex),
        ];
        let table = extract_documents(&docs, &kb, &ExtractionConfig::paper_final());
        let cute = Property::adjective("cute");
        let kitten = kb.entity_by_name("Kitten").unwrap();
        let tiger = kb.entity_by_name("Tiger").unwrap();
        assert_eq!(table.counts(kitten, &cute).positive, 2);
        assert_eq!(table.counts(tiger, &cute).negative, 1);
        assert_eq!(table.total_statements(), 3);
    }

    #[test]
    fn parallel_matches_sequential() {
        let kb = kb();
        let src = source(kb.clone());
        let config = ExtractionConfig::paper_final();
        let seq = run_sharded(&src, &kb, &config, 1);
        for threads in [2, 4, 8] {
            let par = run_sharded(&src, &kb, &config, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn observed_run_matches_and_fills_counters() {
        let kb = kb();
        let src = source(kb.clone());
        let config = ExtractionConfig::paper_final();
        let plain = run_sharded_full(&src, &kb, &config, 4);
        let obs = MetricsRegistry::new();
        let observed = run_sharded_observed(&src, &kb, &config, 4, &obs);
        assert_eq!(plain, observed);
        assert_eq!(obs.counter_value("extract.documents"), 40);
        assert!(obs.counter_value("extract.sentences") >= 40);
        assert_eq!(
            obs.counter_value("extract.statements"),
            observed.evidence.total_statements()
        );
        // Every statement in this fixture comes from the acomp pattern
        // ("Kittens are cute"), none from amod.
        assert!(obs.counter_value("extract.pattern_hits.acomp") > 0);
    }

    #[test]
    fn more_threads_than_shards_is_fine() {
        let kb = kb();
        let src = source(kb.clone());
        let table = run_sharded(&src, &kb, &ExtractionConfig::paper_final(), 64);
        assert!(table.total_statements() > 0);
    }

    #[test]
    fn slice_shard_source() {
        let kb = kb();
        let lex = Lexicon::new();
        let docs = vec![annotate(0, "Kittens are cute.", &kb, &lex)];
        let slice: &[AnnotatedDocument] = &docs;
        let table = run_sharded(&slice, &kb, &ExtractionConfig::paper_final(), 2);
        assert_eq!(table.total_statements(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let kb = kb();
        let docs: Vec<AnnotatedDocument> = Vec::new();
        let slice: &[AnnotatedDocument] = &docs;
        let _ = run_sharded(&slice, &kb, &ExtractionConfig::paper_final(), 0);
    }
}
