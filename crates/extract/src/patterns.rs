//! The extraction patterns of paper Figure 4.
//!
//! Three patterns connect an entity mention to a property over the
//! dependency tree:
//!
//! - **Adjectival complement** (Fig. 4b): the entity is `nsubj` of a
//!   predicate adjective with a copula ("Chicago is very big"). The verb
//!   class of the copula is configurable (Table 4: full copula class vs.
//!   "to be"); in copula-class mode, small clauses ("I find kittens cute")
//!   also qualify.
//! - **Adjectival modifier** (Fig. 4a): an `amod` edge onto a noun that
//!   either corefers with an entity mention ("Snakes are dangerous
//!   *animals*") or is the mention itself ("I love the cute *kitten*").
//!   With intrinsicness checks on, the direct-mention variant is rejected
//!   when the mention is a clause subject — this is what filters the
//!   part-of reading "southern France is warm" while keeping "Greece is a
//!   southern country" (§4).
//! - **Conjunction** (Fig. 4c): conjoined adjectives inherit the match
//!   ("Soccer is a fast and *exciting* sport").
//!
//! Intrinsicness constriction: with checks on, a prepositional sub-tree on
//! the pattern's top node rejects the match ("New York is bad *for
//! parking*").

use crate::config::{ExtractionConfig, VerbSet};
use crate::evidence::Statement;
use crate::polarity::statement_polarity;
use surveyor_kb::{CacheStats, EntityId, InternCache, KnowledgeBase, PropertyId};
use surveyor_nlp::coref::predicate_nominal_corefs;
use surveyor_nlp::{AnnotatedSentence, DepRel, DepTree, Pos};

/// Forms of "to be" admitted by the restrictive verb set.
const TO_BE_FORMS: &[&str] = &["is", "are", "was", "were", "be", "been", "being", "am"];

fn is_to_be(word: &str) -> bool {
    TO_BE_FORMS.contains(&word)
}

/// Reusable per-worker extraction state: the property-surface scratch
/// buffer plus the worker-local [`InternCache`].
///
/// One context lives for a whole worker's run and is threaded through
/// every sentence, so the steady-state hot path (a repeat property
/// surface) costs one local hash probe — no allocation, no locks, no
/// shared memory.
#[derive(Debug, Default)]
pub struct ExtractContext {
    /// Scratch for assembling the canonical property surface.
    surface: String,
    /// Worker-local surface → id and id → property cache.
    cache: InternCache,
}

impl ExtractContext {
    /// A fresh context with a cold cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The interner cache's hit/fallback tallies so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Interns the property at an adjective token: its adverb modifiers
/// (surface order) plus the adjective itself. The surface form is assembled
/// in the context's scratch buffer and interned through the worker-local
/// cache, so a property seen before costs no allocation and no locks.
fn property_at(sentence: &AnnotatedSentence, adj: usize, cx: &mut ExtractContext) -> PropertyId {
    let tokens = &sentence.tokens;
    let tree = &sentence.tree;
    let mut adverbs: Vec<usize> = tree
        .children_with_rel(adj, DepRel::Advmod)
        .into_iter()
        .filter(|&i| tokens[i].pos == Pos::Adverb)
        .collect();
    adverbs.sort_unstable();
    cx.surface.clear();
    for &i in &adverbs {
        cx.surface.push_str(tokens.lower_of(i));
        cx.surface.push(' ');
    }
    cx.surface.push_str(tokens.lower_of(adj));
    let id = cx.cache.intern_surface(&cx.surface);
    id.expect("adjective surface is non-empty") // lint:allow(no-panic-in-lib): the tokenizer never yields an empty adjective token
}

/// Whether the pattern's top node carries a prepositional constriction
/// sub-tree (non-intrinsic statement, §4).
fn has_constriction(tree: &DepTree, top: usize) -> bool {
    tree.has_child_with_rel(top, DepRel::Prep)
}

/// Emits a statement for adjective `adj` about `entity`, plus conjunction
/// expansions, respecting the constriction check on conjuncts.
fn emit_matches(
    sentence: &AnnotatedSentence,
    entity: EntityId,
    adj: usize,
    config: &ExtractionConfig,
    cx: &mut ExtractContext,
    out: &mut Vec<Statement>,
) {
    let tokens = &sentence.tokens;
    let tree = &sentence.tree;
    out.push(Statement {
        entity,
        property: property_at(sentence, adj, cx),
        polarity: statement_polarity(tree, adj),
    });
    if config.conj {
        for conj in tree.children_with_rel(adj, DepRel::Conj) {
            if tokens[conj].pos != Pos::Adjective {
                continue;
            }
            if config.intrinsic_checks && has_constriction(tree, conj) {
                continue;
            }
            out.push(Statement {
                entity,
                property: property_at(sentence, conj, cx),
                polarity: statement_polarity(tree, conj),
            });
        }
    }
}

/// Adjectival-complement matches for one sentence.
fn match_acomp(
    sentence: &AnnotatedSentence,
    config: &ExtractionConfig,
    cx: &mut ExtractContext,
    out: &mut Vec<Statement>,
) {
    let tokens = &sentence.tokens;
    let tree = &sentence.tree;
    for mention in &sentence.mentions {
        let head = mention.head();
        if tree.rel(head) != DepRel::Nsubj {
            continue;
        }
        let Some(pred) = tree.head(head) else {
            continue;
        };
        if tokens[pred].pos != Pos::Adjective {
            continue;
        }
        // Governor admissibility.
        let cops = tree.children_with_rel(pred, DepRel::Cop);
        let admissible = if let Some(&cop) = cops.first() {
            match config.verbs {
                VerbSet::ToBe => is_to_be(tokens.lower_of(cop)),
                VerbSet::CopulaClass => true,
            }
        } else {
            // Cop-less adjectival small clause ("I find kittens cute"):
            // admitted only by the extended verb class.
            config.verbs == VerbSet::CopulaClass && tree.rel(pred) == DepRel::Ccomp
        };
        if !admissible {
            continue;
        }
        if config.intrinsic_checks && has_constriction(tree, pred) {
            continue;
        }
        emit_matches(sentence, mention.entity, pred, config, cx, out);
    }
}

/// Adjectival-modifier matches for one sentence.
fn match_amod(
    sentence: &AnnotatedSentence,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    cx: &mut ExtractContext,
    out: &mut Vec<Statement>,
) {
    let tokens = &sentence.tokens;
    let tree = &sentence.tree;

    // (a) Predicate-nominal coreference: amod on a type noun coreferent
    // with the mention.
    for link in predicate_nominal_corefs(tokens, tree, &sentence.mentions, kb) {
        if config.intrinsic_checks && has_constriction(tree, link.noun) {
            continue;
        }
        let entity = sentence.mentions[link.mention].entity;
        // Attributive modifiers plus relative-clause predicates ("a city
        // that is big") — both assert the property of the coreferent noun.
        for rel in [DepRel::Amod, DepRel::Rcmod] {
            for adj in tree.children_with_rel(link.noun, rel) {
                if tokens[adj].pos != Pos::Adjective {
                    continue;
                }
                emit_matches(sentence, entity, adj, config, cx, out);
            }
        }
    }

    // (b) Direct modification of the mention head.
    for mention in &sentence.mentions {
        let head = mention.head();
        let amods = tree.children_with_rel(head, DepRel::Amod);
        if amods.is_empty() {
            continue;
        }
        if config.intrinsic_checks {
            // Part-of filter: an attributive adjective on a *subject*
            // mention modifies a part or aspect ("southern France is
            // warm"), not the entity as a whole.
            if tree.rel(head) == DepRel::Nsubj {
                continue;
            }
            if has_constriction(tree, head) {
                continue;
            }
        }
        for adj in amods {
            if tokens[adj].pos != Pos::Adjective {
                continue;
            }
            // Skip adjectives inside the mention span itself ("White shark"
            // must not yield (shark, white)).
            if mention.covers(adj) {
                continue;
            }
            emit_matches(sentence, mention.entity, adj, config, cx, out);
        }
    }
}

/// Per-pattern hit counters for one extraction pass. Hits are counted
/// before deduplication — they measure how often each Figure 4 pattern
/// fires, which the observability layer surfaces as
/// `extract.pattern_hits.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternCounts {
    /// Statements produced by the adjectival-complement pattern (4b).
    pub acomp: u64,
    /// Statements produced by the adjectival-modifier pattern (4a).
    pub amod: u64,
}

impl PatternCounts {
    /// Merges another tally into this one.
    pub fn merge(&mut self, other: PatternCounts) {
        self.acomp += other.acomp;
        self.amod += other.amod;
    }
}

/// Extracts all evidence statements from one annotated sentence under a
/// configuration. Duplicate (entity, property, polarity) triples within a
/// sentence are deduplicated.
pub fn extract_sentence(
    sentence: &AnnotatedSentence,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
) -> Vec<Statement> {
    extract_sentence_counted(sentence, kb, config, &mut PatternCounts::default())
}

/// Like [`extract_sentence`], also tallying which pattern produced each
/// raw match into `counts`.
pub fn extract_sentence_counted(
    sentence: &AnnotatedSentence,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    counts: &mut PatternCounts,
) -> Vec<Statement> {
    let mut out = Vec::new();
    extract_sentence_into(
        sentence,
        kb,
        config,
        counts,
        &mut ExtractContext::new(),
        &mut out,
    );
    out
}

/// The worker entry point: like [`extract_sentence_counted`] but writing
/// into a caller-owned buffer through a long-lived [`ExtractContext`], so
/// a worker pays no per-sentence allocation and — once the context's cache
/// is warm — no locks.
pub fn extract_sentence_into(
    sentence: &AnnotatedSentence,
    kb: &KnowledgeBase,
    config: &ExtractionConfig,
    counts: &mut PatternCounts,
    cx: &mut ExtractContext,
    out: &mut Vec<Statement>,
) {
    out.clear();
    if config.acomp {
        match_acomp(sentence, config, cx, out);
        counts.acomp += out.len() as u64;
    }
    if config.amod {
        let before = out.len();
        match_amod(sentence, kb, config, cx, out);
        counts.amod += (out.len() - before) as u64;
    }
    if out.len() > 1 {
        // Order on the resolved property (ids reflect discovery order), so
        // per-sentence statement order is reproducible across runs. Only
        // multi-statement sentences — the rare case — pay the resolution,
        // and the context's cache makes repeat resolutions lock-free.
        for s in out.iter() {
            cx.cache.ensure_resolved(s.property);
        }
        let cache = &cx.cache;
        out.sort_by(|a, b| {
            let key = |s: &Statement| {
                (
                    s.entity,
                    cache.peek(s.property),
                    s.polarity == crate::Polarity::Negative,
                )
            };
            key(a).cmp(&key(b))
        });
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PatternVersion;
    use crate::Polarity;
    use surveyor_kb::KnowledgeBaseBuilder;
    use surveyor_nlp::{annotate, Lexicon};

    fn kb() -> KnowledgeBase {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        let city = b.add_type("city", &["city"], &[]);
        let sport = b.add_type("sport", &["sport"], &[]);
        let country = b.add_type("country", &["country"], &[]);
        b.add_entity("Snake", animal).finish();
        b.add_entity("Kitten", animal).finish();
        b.add_entity("Chicago", city).finish();
        b.add_entity("New York", city).finish();
        b.add_entity("Soccer", sport).finish();
        b.add_entity("France", country).finish();
        b.add_entity("Greece", country).finish();
        b.build()
    }

    fn extract_with(text: &str, config: &ExtractionConfig) -> Vec<(String, String, Polarity)> {
        let kb = kb();
        let lex = Lexicon::new();
        let doc = annotate(0, text, &kb, &lex);
        let mut out = Vec::new();
        for s in &doc.sentences {
            for st in extract_sentence(s, &kb, config) {
                out.push((
                    kb.entity(st.entity).name().to_owned(),
                    st.property.resolve().to_string(),
                    st.polarity,
                ));
            }
        }
        out
    }

    fn extract_v4(text: &str) -> Vec<(String, String, Polarity)> {
        extract_with(text, &ExtractionConfig::paper_final())
    }

    #[test]
    fn table1_row1_amod_with_coref() {
        let got = extract_v4("Snakes are dangerous animals.");
        assert_eq!(
            got,
            vec![("Snake".into(), "dangerous".into(), Polarity::Positive)]
        );
    }

    #[test]
    fn table1_row2_acomp_with_adverb() {
        let got = extract_v4("Chicago is very big.");
        assert_eq!(
            got,
            vec![("Chicago".into(), "very big".into(), Polarity::Positive)]
        );
    }

    #[test]
    fn table1_row3_conjunction() {
        let got = extract_v4("Soccer is a fast and exciting sport.");
        // Both "fast" (amod) and "exciting" (conj) extract, per the paper's
        // note on the third example.
        assert_eq!(got.len(), 2);
        assert!(got.contains(&("Soccer".into(), "fast".into(), Polarity::Positive)));
        assert!(got.contains(&("Soccer".into(), "exciting".into(), Polarity::Positive)));
    }

    #[test]
    fn negative_statement() {
        let got = extract_v4("Chicago is not big.");
        assert_eq!(
            got,
            vec![("Chicago".into(), "big".into(), Polarity::Negative)]
        );
        let got = extract_v4("New York is not a big city.");
        assert_eq!(
            got,
            vec![("New York".into(), "big".into(), Polarity::Negative)]
        );
    }

    #[test]
    fn double_negation_positive() {
        let got = extract_v4("I don't think that snakes are never dangerous.");
        assert_eq!(
            got,
            vec![("Snake".into(), "dangerous".into(), Polarity::Positive)]
        );
    }

    #[test]
    fn constriction_filtered_in_v4_not_v2() {
        let text = "New York is bad for parking.";
        assert!(extract_v4(text).is_empty());
        let v2 = extract_with(text, &PatternVersion::V2.config());
        assert_eq!(
            v2,
            vec![("New York".into(), "bad".into(), Polarity::Positive)]
        );
    }

    #[test]
    fn part_of_amod_filtered_in_v4_not_v1() {
        let text = "southern France is warm.";
        let v4 = extract_v4(text);
        // "warm" extracts via acomp; "southern" must NOT extract.
        assert_eq!(
            v4,
            vec![("France".into(), "warm".into(), Polarity::Positive)]
        );
        let v1 = extract_with(text, &PatternVersion::V1.config());
        // V1 has no checks: the spurious (France, southern) appears, and no
        // acomp pattern runs.
        assert_eq!(
            v1,
            vec![("France".into(), "southern".into(), Polarity::Positive)]
        );
    }

    #[test]
    fn greece_southern_country_extracts_via_coref() {
        let got = extract_v4("Greece is a southern country.");
        assert_eq!(
            got,
            vec![("Greece".into(), "southern".into(), Polarity::Positive)]
        );
    }

    #[test]
    fn attributive_object_mention_extracts_in_v4() {
        let got = extract_v4("I love the cute kitten.");
        assert_eq!(
            got,
            vec![("Kitten".into(), "cute".into(), Polarity::Positive)]
        );
    }

    #[test]
    fn small_clause_only_with_copula_class() {
        let text = "I find kittens cute.";
        assert!(extract_v4(text).is_empty());
        let v2 = extract_with(text, &PatternVersion::V2.config());
        assert_eq!(
            v2,
            vec![("Kitten".into(), "cute".into(), Polarity::Positive)]
        );
    }

    #[test]
    fn extended_copula_only_with_copula_class() {
        let text = "Chicago seems big.";
        assert!(extract_v4(text).is_empty());
        let v2 = extract_with(text, &PatternVersion::V2.config());
        assert_eq!(
            v2,
            vec![("Chicago".into(), "big".into(), Polarity::Positive)]
        );
    }

    #[test]
    fn v3_has_no_amod() {
        let v3 = extract_with(
            "Snakes are dangerous animals.",
            &PatternVersion::V3.config(),
        );
        assert!(v3.is_empty());
        let v3 = extract_with("Chicago is big.", &PatternVersion::V3.config());
        assert_eq!(v3.len(), 1);
    }

    #[test]
    fn no_extraction_without_mention() {
        assert!(extract_v4("The weather is nice.").is_empty());
    }

    #[test]
    fn no_extraction_for_objective_only_sentences() {
        assert!(extract_v4("Chicago has parks.").is_empty());
    }

    #[test]
    fn mention_internal_adjective_is_not_extracted() {
        // "White shark" as an entity name must not yield (shark, white); we
        // approximate with a lowercase attributive over a mention.
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        b.add_entity("White shark", animal).finish();
        let kb = b.build();
        let lex = Lexicon::new();
        let doc = annotate(0, "I love the white shark.", &kb, &lex);
        let stmts = extract_sentence(&doc.sentences[0], &kb, &ExtractionConfig::paper_final());
        assert!(stmts.is_empty(), "got {stmts:?}");
    }

    #[test]
    fn relative_clause_extracts_like_amod() {
        let got = extract_v4("Chicago is a city that is very big.");
        assert_eq!(
            got,
            vec![("Chicago".into(), "very big".into(), Polarity::Positive)]
        );
        let got = extract_v4("Chicago is a city that is not big.");
        assert_eq!(
            got,
            vec![("Chicago".into(), "big".into(), Polarity::Negative)]
        );
        // V3 (acomp-only) does not use the relative-clause reading.
        let v3 = extract_with(
            "Chicago is a city that is big.",
            &PatternVersion::V3.config(),
        );
        assert!(v3.is_empty(), "{v3:?}");
    }

    #[test]
    fn passive_report_only_with_copula_class() {
        let text = "Chicago is considered big.";
        assert!(extract_v4(text).is_empty());
        let v2 = extract_with(text, &PatternVersion::V2.config());
        assert_eq!(
            v2,
            vec![("Chicago".into(), "big".into(), Polarity::Positive)]
        );
        // Negated report flips polarity.
        let v2 = extract_with(
            "Chicago is not considered big.",
            &PatternVersion::V2.config(),
        );
        assert_eq!(
            v2,
            vec![("Chicago".into(), "big".into(), Polarity::Negative)]
        );
    }

    #[test]
    fn dedup_within_sentence() {
        // A sentence matching both coref-amod and direct paths must not
        // double-count the same triple.
        let got = extract_v4("Soccer is a fast and fast sport.");
        let fast_count = got.iter().filter(|(_, p, _)| p == "fast").count();
        assert_eq!(fast_count, 1);
    }
}
