//! Statements, evidence counters, and grouping (paper §3).
//!
//! "We group evidence by the entity-property pair it refers to. For each
//! pair, we compute two counters: the total number of positive statements
//! and the total number of negative statements." Groups are then keyed by
//! (type, property) so each combination can learn its own model.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use surveyor_kb::{EntityId, KnowledgeBase, Property, PropertyId, TypeId};

/// Polarity of an evidence statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Polarity {
    /// The statement claims the property applies.
    Positive,
    /// The statement claims the property does not apply.
    Negative,
}

/// One extracted evidence statement.
///
/// The property is carried as an interned [`PropertyId`]: statements are
/// emitted once per matched pattern on the per-sentence hot path, and the
/// id keeps them `Copy`-cheap all the way into the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Statement {
    /// The entity the statement is about.
    pub entity: EntityId,
    /// The subjective property (adjective + adverbs), interned.
    pub property: PropertyId,
    /// Whether the statement affirms or denies the property.
    pub polarity: Polarity,
}

impl Statement {
    /// A statement over a not-yet-interned property (test and tooling
    /// convenience; the extraction patterns intern directly from token
    /// surfaces).
    pub fn new(entity: EntityId, property: &Property, polarity: Polarity) -> Self {
        Self {
            entity,
            property: PropertyId::intern(property),
            polarity,
        }
    }
}

/// Positive/negative statement counters for one entity-property pair — the
/// evidence tuple `⟨C+_i, C-_i⟩` of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EvidenceCounts {
    /// Count of positive statements (`C+`).
    pub positive: u64,
    /// Count of negative statements (`C-`).
    pub negative: u64,
}

impl EvidenceCounts {
    /// A pair of explicit counts.
    pub fn new(positive: u64, negative: u64) -> Self {
        Self { positive, negative }
    }

    /// Total statements.
    pub fn total(&self) -> u64 {
        self.positive + self.negative
    }

    /// Records one statement of the given polarity.
    pub fn add(&mut self, polarity: Polarity) {
        match polarity {
            Polarity::Positive => self.positive += 1,
            Polarity::Negative => self.negative += 1,
        }
    }

    /// Adds another counter pair.
    pub fn merge(&mut self, other: EvidenceCounts) {
        self.positive += other.positive;
        self.negative += other.negative;
    }
}

/// Evidence counters keyed by entity-property pair; the map-side output of
/// the extraction phase. Merging tables is associative and commutative, so
/// shards can reduce in any order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvidenceTable {
    map: FxHashMap<(EntityId, PropertyId), EvidenceCounts>,
    statements: u64,
}

impl EvidenceTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one statement. Allocation-free: the key is two `u32` ids.
    pub fn add(&mut self, statement: &Statement) {
        self.map
            .entry((statement.entity, statement.property))
            .or_default()
            .add(statement.polarity);
        self.statements += 1;
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: EvidenceTable) {
        for (key, counts) in other.map {
            self.map.entry(key).or_default().merge(counts);
        }
        self.statements += other.statements;
    }

    /// Counts for an entity-property pair (zero if never seen).
    ///
    /// Never-interned properties short-circuit to zero without touching the
    /// intern table.
    pub fn counts(&self, entity: EntityId, property: &Property) -> EvidenceCounts {
        PropertyId::lookup(property)
            .map(|id| self.counts_id(entity, id))
            .unwrap_or_default()
    }

    /// Counts for an entity and an already-interned property.
    pub fn counts_id(&self, entity: EntityId, property: PropertyId) -> EvidenceCounts {
        self.map
            .get(&(entity, property))
            .copied()
            .unwrap_or_default()
    }

    /// Number of distinct entity-property pairs with evidence.
    pub fn pair_count(&self) -> usize {
        self.map.len()
    }

    /// Total statements recorded.
    pub fn total_statements(&self) -> u64 {
        self.statements
    }

    /// Iterates over all pairs and their counts (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&(EntityId, PropertyId), &EvidenceCounts)> {
        self.map.iter()
    }

    /// Corpus-wide `(positive, negative)` statement totals — the input of
    /// the scaled-majority-vote baseline's global polarity ratio.
    pub fn polarity_totals(&self) -> (u64, u64) {
        self.map
            .values()
            .fold((0, 0), |(p, n), c| (p + c.positive, n + c.negative))
    }

    /// Total statements per entity across all properties — the
    /// mention-count signal the WebChild baseline's KB membership uses.
    pub fn mention_totals(&self) -> rustc_hash::FxHashMap<EntityId, u64> {
        let mut totals: rustc_hash::FxHashMap<EntityId, u64> = rustc_hash::FxHashMap::default();
        for ((entity, _), counts) in self.map.iter() {
            *totals.entry(*entity).or_default() += counts.total();
        }
        totals
    }

    /// Dumps the table to a stable, sorted entry list for persistence
    /// (extraction is the expensive pipeline phase; the paper's
    /// architecture stores counter tables between the extraction and
    /// interpretation passes).
    pub fn to_entries(&self) -> Vec<EvidenceEntry> {
        // Ids are process-local, so entries resolve to the full property and
        // sort on the resolved form — output order is reproducible across
        // runs no matter what order extraction discovered properties in.
        let mut entries: Vec<EvidenceEntry> = self
            .map
            .iter()
            .map(|((entity, property), counts)| EvidenceEntry {
                entity: *entity,
                property: property.resolve(),
                positive: counts.positive,
                negative: counts.negative,
            })
            .collect();
        entries.sort_by(|a, b| (a.entity, &a.property).cmp(&(b.entity, &b.property)));
        entries
    }

    /// Rebuilds a table from persisted entries.
    pub fn from_entries(entries: Vec<EvidenceEntry>) -> Self {
        let mut table = Self::new();
        for entry in entries {
            let counts = table
                .map
                .entry((entry.entity, PropertyId::intern(&entry.property)))
                .or_default();
            counts.positive += entry.positive;
            counts.negative += entry.negative;
            table.statements += entry.positive + entry.negative;
        }
        table
    }

    /// Serializes the table to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_entries()).expect("entries serialize") // lint:allow(no-panic-in-lib): evidence entries hold only serializable primitives
    }

    /// Restores a table from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        Ok(Self::from_entries(serde_json::from_str(json)?))
    }
}

/// One persisted entity-property counter row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvidenceEntry {
    /// The entity.
    pub entity: EntityId,
    /// The property.
    pub property: Property,
    /// Positive statement count.
    pub positive: u64,
    /// Negative statement count.
    pub negative: u64,
}

/// Key of an evidence group: one (entity type, property) combination.
///
/// Two `u32` ids — `Copy`, hashable in a few cycles. Deliberately not `Ord`:
/// property ids reflect discovery order, so deterministic group ordering is
/// produced by sorting on the *resolved* property instead (see
/// [`GroupedEvidence::from_table`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupKey {
    /// The entity type.
    pub type_id: TypeId,
    /// The subjective property, interned.
    pub property: PropertyId,
}

/// Per-entity evidence for one (type, property) combination.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Group {
    counts: FxHashMap<EntityId, EvidenceCounts>,
    total: u64,
}

impl Group {
    /// Counts for one entity (zero if never mentioned with the property).
    pub fn counts(&self, entity: EntityId) -> EvidenceCounts {
        self.counts.get(&entity).copied().unwrap_or_default()
    }

    /// Total statements extracted for this combination — compared against
    /// the occurrence threshold ρ of Algorithm 1.
    pub fn total_statements(&self) -> u64 {
        self.total
    }

    /// Number of entities with at least one statement.
    pub fn mentioned_entities(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over mentioned entities.
    pub fn iter(&self) -> impl Iterator<Item = (&EntityId, &EvidenceCounts)> {
        self.counts.iter()
    }
}

/// Evidence grouped by (type, property), deterministic iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupedEvidence {
    /// Sorted by `(type_id, resolved property)` — the same order the old
    /// `BTreeMap<GroupKey, Group>` produced, independent of property-id
    /// discovery order.
    groups: Vec<(GroupKey, Group)>,
    index: FxHashMap<GroupKey, usize>,
}

impl GroupedEvidence {
    /// Groups a flat evidence table using the knowledge base's notable
    /// types (§3: "The knowledge base associates each entity with an entity
    /// type … we use only the most notable type").
    pub fn from_table(table: &EvidenceTable, kb: &KnowledgeBase) -> Self {
        let mut by_key: FxHashMap<GroupKey, Group> = FxHashMap::default();
        for ((entity, property), counts) in table.iter() {
            let type_id = kb.entity(*entity).notable_type();
            let group = by_key
                .entry(GroupKey {
                    type_id,
                    property: *property,
                })
                .or_default();
            group.counts.entry(*entity).or_default().merge(*counts);
            group.total += counts.total();
        }
        Self::finish(by_key)
    }

    /// [`from_table`](Self::from_table) fanned over `workers` threads.
    ///
    /// Follows the extraction runner's worker pattern: the pair list is
    /// split into fixed-size ranges claimed off an atomic cursor; each
    /// worker aggregates its ranges into a private partial map handed back
    /// by value over the join (no lock anywhere in the loop). Partials are
    /// merged on the calling thread in first-claimed-range order — group
    /// merging is commutative, so the ordering is belt and braces — and the
    /// merged map feeds the same property-resolved sort as the serial
    /// path. The result equals [`from_table`](Self::from_table) exactly,
    /// for any worker count.
    pub fn from_table_parallel(table: &EvidenceTable, kb: &KnowledgeBase, workers: usize) -> Self {
        /// Pairs per claimed range: small enough to balance skew, large
        /// enough that cursor traffic is negligible.
        const RANGE: usize = 512;
        let ranges = table.pair_count().div_ceil(RANGE);
        let workers = workers.clamp(1, ranges.max(1));
        if workers == 1 {
            return Self::from_table(table, kb);
        }
        let pairs: Vec<(&(EntityId, PropertyId), &EvidenceCounts)> = table.iter().collect();
        let cursor = AtomicUsize::new(0);
        let mut partials = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut first_range = usize::MAX;
                        let mut by_key: FxHashMap<GroupKey, Group> = FxHashMap::default();
                        loop {
                            let range = cursor.fetch_add(1, Ordering::Relaxed);
                            if range >= ranges {
                                break;
                            }
                            first_range = first_range.min(range);
                            let lo = range * RANGE;
                            let hi = (lo + RANGE).min(pairs.len());
                            for &(&(entity, property), counts) in &pairs[lo..hi] {
                                let type_id = kb.entity(entity).notable_type();
                                let group =
                                    by_key.entry(GroupKey { type_id, property }).or_default();
                                group.counts.entry(entity).or_default().merge(*counts);
                                group.total += counts.total();
                            }
                        }
                        (first_range, by_key)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("grouping worker panicked")) // lint:allow(no-panic-in-lib): a worker panic is a grouping bug; the infallible API propagates it
                .collect::<Vec<(usize, FxHashMap<GroupKey, Group>)>>()
        })
        .expect("grouping worker panicked"); // lint:allow(no-panic-in-lib): a worker panic is a grouping bug; the infallible API propagates it
        partials.sort_by_key(|&(first_range, _)| first_range);
        let mut merged: FxHashMap<GroupKey, Group> = FxHashMap::default();
        for (_, partial) in partials {
            for (key, group) in partial {
                let target = merged.entry(key).or_default();
                for (entity, counts) in group.counts {
                    target.counts.entry(entity).or_default().merge(counts);
                }
                target.total += group.total;
            }
        }
        Self::finish(merged)
    }

    /// The shared tail of both grouping paths: deterministic sort plus the
    /// lookup index.
    fn finish(by_key: FxHashMap<GroupKey, Group>) -> Self {
        let mut groups: Vec<(GroupKey, Group)> = by_key.into_iter().collect();
        // Ids reflect discovery order; resolve once per combination and sort
        // on the property itself for cross-run determinism.
        groups.sort_by_cached_key(|(key, _)| (key.type_id, key.property.resolve()));
        let index = groups
            .iter()
            .enumerate()
            .map(|(i, (key, _))| (*key, i))
            .collect();
        Self { groups, index }
    }

    /// Number of distinct (type, property) combinations.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group for a combination, if any evidence exists.
    pub fn group(&self, key: &GroupKey) -> Option<&Group> {
        self.index.get(key).map(|&i| &self.groups[i].1)
    }

    /// Iterates over all combinations in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, &Group)> {
        self.groups.iter().map(|(key, group)| (key, group))
    }

    /// Iterates over combinations whose total statement count reaches the
    /// occurrence threshold `rho` (Algorithm 1 line 5).
    pub fn above_threshold(&self, rho: u64) -> impl Iterator<Item = (&GroupKey, &Group)> {
        self.iter().filter(move |(_, g)| g.total >= rho)
    }

    /// Merges a delta's groups into this table — the grouped-table half of
    /// incremental ingestion.
    ///
    /// Both sides hold their groups sorted by `(type_id, resolved
    /// property)` (the internal `finish` invariant), so this is a
    /// linear two-pointer merge: each side's sort key is resolved once per
    /// group, groups present on both sides merge their per-entity
    /// counters, and the result needs no re-sort. Equivalent to grouping
    /// the concatenated evidence from scratch:
    /// `a.merge(b) == from_table(a_table ∪ b_table)` (the vendored
    /// proptest suite pins exactly that).
    pub fn merge(&mut self, delta: GroupedEvidence) {
        if delta.groups.is_empty() {
            return;
        }
        if self.groups.is_empty() {
            *self = delta;
            return;
        }
        // Resolve each key once; ids are process-local, the resolved
        // property is the deterministic sort key both sides share.
        let resolve = |groups: Vec<(GroupKey, Group)>| {
            groups
                .into_iter()
                .map(|(key, group)| ((key.type_id, key.property.resolve()), key, group))
                .collect::<Vec<_>>()
        };
        let left = resolve(std::mem::take(&mut self.groups));
        let right = resolve(delta.groups);
        let mut merged: Vec<(GroupKey, Group)> = Vec::with_capacity(left.len() + right.len());
        let mut left = left.into_iter().peekable();
        let mut right = right.into_iter().peekable();
        loop {
            let take_left = match (left.peek(), right.peek()) {
                (Some((a, ..)), Some((b, ..))) => {
                    if a == b {
                        // Same combination on both sides: fold the delta's
                        // per-entity counters into the base group.
                        let (_, key, mut group) = left.next().expect("peeked"); // lint:allow(no-panic-in-lib): peek returned Some
                        let (_, _, addition) = right.next().expect("peeked"); // lint:allow(no-panic-in-lib): peek returned Some
                        for (entity, counts) in addition.counts {
                            group.counts.entry(entity).or_default().merge(counts);
                        }
                        group.total += addition.total;
                        merged.push((key, group));
                        continue;
                    }
                    a < b
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (_, key, group) = if take_left {
                left.next().expect("peeked") // lint:allow(no-panic-in-lib): peek returned Some
            } else {
                right.next().expect("peeked") // lint:allow(no-panic-in-lib): peek returned Some
            };
            merged.push((key, group));
        }
        self.index = merged
            .iter()
            .enumerate()
            .map(|(i, (key, _))| (*key, i))
            .collect();
        self.groups = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_kb::KnowledgeBaseBuilder;

    fn kb() -> KnowledgeBase {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        let city = b.add_type("city", &["city"], &[]);
        b.add_entity("Kitten", animal).finish();
        b.add_entity("Tiger", animal).finish();
        b.add_entity("Paris", city).finish();
        b.build()
    }

    fn stmt(entity: u32, prop: &str, polarity: Polarity) -> Statement {
        Statement::new(EntityId(entity), &Property::parse(prop).unwrap(), polarity)
    }

    #[test]
    fn counts_accumulate() {
        let mut t = EvidenceTable::new();
        t.add(&stmt(0, "cute", Polarity::Positive));
        t.add(&stmt(0, "cute", Polarity::Positive));
        t.add(&stmt(0, "cute", Polarity::Negative));
        let c = t.counts(EntityId(0), &Property::adjective("cute"));
        assert_eq!(c, EvidenceCounts::new(2, 1));
        assert_eq!(c.total(), 3);
        assert_eq!(t.total_statements(), 3);
        assert_eq!(t.pair_count(), 1);
    }

    #[test]
    fn unseen_pair_is_zero() {
        let t = EvidenceTable::new();
        assert_eq!(
            t.counts(EntityId(5), &Property::adjective("big")),
            EvidenceCounts::default()
        );
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = EvidenceTable::new();
        a.add(&stmt(0, "cute", Polarity::Positive));
        a.add(&stmt(1, "big", Polarity::Negative));
        let mut b = EvidenceTable::new();
        b.add(&stmt(0, "cute", Polarity::Negative));
        b.add(&stmt(2, "big", Polarity::Positive));

        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_statements(), 4);
        assert_eq!(ab.pair_count(), 3);
    }

    #[test]
    fn grouping_by_type_and_property() {
        let kb = kb();
        let mut t = EvidenceTable::new();
        t.add(&stmt(0, "cute", Polarity::Positive)); // Kitten (animal)
        t.add(&stmt(1, "cute", Polarity::Negative)); // Tiger (animal)
        t.add(&stmt(2, "big", Polarity::Positive)); // Paris (city)
        let grouped = GroupedEvidence::from_table(&t, &kb);
        assert_eq!(grouped.len(), 2);
        let animal = kb.type_by_name("animal").unwrap();
        let key = GroupKey {
            type_id: animal,
            property: surveyor_kb::PropertyId::intern(&Property::adjective("cute")),
        };
        let g = grouped.group(&key).unwrap();
        assert_eq!(g.total_statements(), 2);
        assert_eq!(g.mentioned_entities(), 2);
        assert_eq!(g.counts(EntityId(0)), EvidenceCounts::new(1, 0));
        assert_eq!(g.counts(EntityId(2)), EvidenceCounts::default());
    }

    #[test]
    fn parallel_grouping_matches_serial() {
        let kb = kb();
        let mut t = EvidenceTable::new();
        // Enough distinct pairs to span several claim ranges, so the
        // worker loop genuinely engages.
        for i in 0..1500u32 {
            let prop = Property::adjective(&format!("prop{i}"));
            t.add(&Statement::new(EntityId(i % 3), &prop, Polarity::Positive));
            if i % 2 == 0 {
                t.add(&Statement::new(
                    EntityId((i + 1) % 3),
                    &prop,
                    Polarity::Negative,
                ));
            }
        }
        let serial = GroupedEvidence::from_table(&t, &kb);
        for workers in [1, 2, 4, 8] {
            assert_eq!(
                serial,
                GroupedEvidence::from_table_parallel(&t, &kb, workers),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn grouped_merge_matches_from_scratch_grouping() {
        let kb = kb();
        let mut base_table = EvidenceTable::new();
        base_table.add(&stmt(0, "cute", Polarity::Positive));
        base_table.add(&stmt(1, "cute", Polarity::Negative));
        base_table.add(&stmt(2, "big", Polarity::Positive));
        let mut delta_table = EvidenceTable::new();
        delta_table.add(&stmt(0, "cute", Polarity::Positive)); // dirties animal × cute
        delta_table.add(&stmt(1, "fierce", Polarity::Positive)); // new group
        delta_table.add(&stmt(2, "big", Polarity::Negative)); // dirties city × big

        let mut merged = GroupedEvidence::from_table(&base_table, &kb);
        merged.merge(GroupedEvidence::from_table(&delta_table, &kb));

        let mut combined = base_table.clone();
        combined.merge(delta_table);
        assert_eq!(merged, GroupedEvidence::from_table(&combined, &kb));
        // The lookup index is rebuilt consistently.
        let animal = kb.type_by_name("animal").unwrap();
        let key = GroupKey {
            type_id: animal,
            property: surveyor_kb::PropertyId::intern(&Property::adjective("fierce")),
        };
        assert_eq!(merged.group(&key).unwrap().total_statements(), 1);
    }

    #[test]
    fn grouped_merge_with_empty_sides_is_identity() {
        let kb = kb();
        let mut t = EvidenceTable::new();
        t.add(&stmt(0, "cute", Polarity::Positive));
        let grouped = GroupedEvidence::from_table(&t, &kb);

        let mut left = grouped.clone();
        left.merge(GroupedEvidence::default());
        assert_eq!(left, grouped);

        let mut empty = GroupedEvidence::default();
        empty.merge(grouped.clone());
        assert_eq!(empty, grouped);
    }

    #[test]
    fn threshold_filters_groups() {
        let kb = kb();
        let mut t = EvidenceTable::new();
        for _ in 0..5 {
            t.add(&stmt(0, "cute", Polarity::Positive));
        }
        t.add(&stmt(2, "big", Polarity::Positive));
        let grouped = GroupedEvidence::from_table(&t, &kb);
        assert_eq!(grouped.above_threshold(1).count(), 2);
        assert_eq!(grouped.above_threshold(5).count(), 1);
        assert_eq!(grouped.above_threshold(6).count(), 0);
    }

    #[test]
    fn persistence_round_trip() {
        let mut t = EvidenceTable::new();
        t.add(&stmt(0, "cute", Polarity::Positive));
        t.add(&stmt(0, "cute", Polarity::Negative));
        t.add(&stmt(2, "very big", Polarity::Positive));
        let restored = EvidenceTable::from_json(&t.to_json()).unwrap();
        assert_eq!(t, restored);
        assert_eq!(restored.total_statements(), 3);
    }

    #[test]
    fn entries_are_sorted_and_stable() {
        let mut t = EvidenceTable::new();
        t.add(&stmt(2, "big", Polarity::Positive));
        t.add(&stmt(0, "cute", Polarity::Positive));
        t.add(&stmt(0, "big", Polarity::Negative));
        let entries = t.to_entries();
        assert_eq!(entries.len(), 3);
        assert!(entries
            .windows(2)
            .all(|w| { (w[0].entity, &w[0].property) <= (w[1].entity, &w[1].property) }));
        // Same table serialized twice yields identical bytes.
        assert_eq!(t.to_json(), t.to_json());
    }

    #[test]
    fn from_entries_merges_duplicates() {
        let e = |p: u64, n: u64| EvidenceEntry {
            entity: EntityId(1),
            property: Property::adjective("big"),
            positive: p,
            negative: n,
        };
        let t = EvidenceTable::from_entries(vec![e(2, 1), e(3, 0)]);
        assert_eq!(
            t.counts(EntityId(1), &Property::adjective("big")),
            EvidenceCounts::new(5, 1)
        );
        assert_eq!(t.total_statements(), 6);
    }

    #[test]
    fn adverb_properties_group_separately() {
        let kb = kb();
        let mut t = EvidenceTable::new();
        t.add(&stmt(2, "big", Polarity::Positive));
        t.add(&stmt(2, "very big", Polarity::Positive));
        let grouped = GroupedEvidence::from_table(&t, &kb);
        assert_eq!(grouped.len(), 2);
    }
}
