//! Statement provenance: which documents support each association.
//!
//! The paper's application "can exploit high-confidence entity-property
//! associations and offer links to supporting content on the Web as query
//! result" (§2). This module tracks, per entity-property pair, a bounded
//! sample of supporting document ids. The sample keeps the *smallest* K
//! ids, which makes merging commutative and associative — shard order
//! cannot change the result, preserving the pipeline's determinism.

use crate::evidence::Statement;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use surveyor_kb::{EntityId, Property, PropertyId};

/// Default number of supporting documents retained per pair.
pub const DEFAULT_SAMPLE: usize = 5;

/// Bounded supporting-document samples per entity-property pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceTable {
    sample_size: usize,
    #[serde(with = "entries_codec")]
    map: FxHashMap<(EntityId, PropertyId), Vec<u64>>,
}

impl Default for ProvenanceTable {
    fn default() -> Self {
        Self::new(DEFAULT_SAMPLE)
    }
}

impl ProvenanceTable {
    /// An empty table keeping up to `sample_size` documents per pair.
    pub fn new(sample_size: usize) -> Self {
        Self {
            sample_size: sample_size.max(1),
            map: FxHashMap::default(),
        }
    }

    /// Records that `document` contains a statement for the pair.
    /// Allocation-free on the key: two `u32` ids.
    pub fn record(&mut self, statement: &Statement, document: u64) {
        let ids = self
            .map
            .entry((statement.entity, statement.property))
            .or_default();
        insert_bounded(ids, document, self.sample_size);
    }

    /// Merges another table (order-independent).
    pub fn merge(&mut self, other: ProvenanceTable) {
        for (key, ids) in other.map {
            let slot = self.map.entry(key).or_default();
            for id in ids {
                insert_bounded(slot, id, self.sample_size);
            }
        }
    }

    /// Supporting documents for a pair, smallest ids first (empty when the
    /// pair was never seen). Never-interned properties short-circuit.
    pub fn documents(&self, entity: EntityId, property: &Property) -> &[u64] {
        PropertyId::lookup(property)
            .map(|id| self.documents_id(entity, id))
            .unwrap_or(&[])
    }

    /// Supporting documents for an entity and an already-interned property.
    pub fn documents_id(&self, entity: EntityId, property: PropertyId) -> &[u64] {
        self.map
            .get(&(entity, property))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of pairs tracked.
    pub fn pair_count(&self) -> usize {
        self.map.len()
    }

    /// The configured sample bound.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }
}

/// Inserts `id` into a sorted, deduplicated, bounded id list.
fn insert_bounded(ids: &mut Vec<u64>, id: u64, bound: usize) {
    match ids.binary_search(&id) {
        Ok(_) => {}
        Err(pos) => {
            if pos < bound {
                ids.insert(pos, id);
                ids.truncate(bound);
            }
        }
    }
}

/// Serde codec: the tuple-keyed map serializes as an entry list.
mod entries_codec {
    use super::*;

    type ProvenanceMap = FxHashMap<(EntityId, PropertyId), Vec<u64>>;

    #[derive(Serialize, Deserialize)]
    struct Entry {
        entity: EntityId,
        property: Property,
        documents: Vec<u64>,
    }

    pub fn to_value(map: &ProvenanceMap) -> serde::Value {
        // Resolve ids before sorting: id values are process-local, the
        // serialized order must not be.
        let mut entries: Vec<Entry> = map
            .iter()
            .map(|((entity, property), documents)| Entry {
                entity: *entity,
                property: property.resolve(),
                documents: documents.clone(),
            })
            .collect();
        entries.sort_by(|a, b| (a.entity, &a.property).cmp(&(b.entity, &b.property)));
        serde::Serialize::to_value(&entries)
    }

    pub fn from_value(value: &serde::Value) -> Result<ProvenanceMap, serde::Error> {
        let entries: Vec<Entry> = serde::Deserialize::from_value(value)?;
        Ok(entries
            .into_iter()
            .map(|e| ((e.entity, PropertyId::intern(&e.property)), e.documents))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::Polarity;

    fn stmt(entity: u32, prop: &str) -> Statement {
        Statement::new(
            EntityId(entity),
            &Property::adjective(prop),
            Polarity::Positive,
        )
    }

    #[test]
    fn keeps_smallest_ids_up_to_bound() {
        let mut t = ProvenanceTable::new(3);
        for doc in [9, 2, 7, 1, 8, 3] {
            t.record(&stmt(0, "cute"), doc);
        }
        assert_eq!(
            t.documents(EntityId(0), &Property::adjective("cute")),
            [1, 2, 3]
        );
        assert!(t
            .documents(EntityId(1), &Property::adjective("cute"))
            .is_empty());
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut t = ProvenanceTable::new(3);
        t.record(&stmt(0, "cute"), 5);
        t.record(&stmt(0, "cute"), 5);
        assert_eq!(t.documents(EntityId(0), &Property::adjective("cute")), [5]);
    }

    #[test]
    fn merge_is_order_independent() {
        let build = |docs: &[u64]| {
            let mut t = ProvenanceTable::new(3);
            for &d in docs {
                t.record(&stmt(0, "cute"), d);
            }
            t
        };
        let a = build(&[10, 4]);
        let b = build(&[1, 7, 12]);
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab, ba);
        assert_eq!(
            ab.documents(EntityId(0), &Property::adjective("cute")),
            [1, 4, 7]
        );
    }

    #[test]
    fn serde_round_trip() {
        let mut t = ProvenanceTable::new(2);
        t.record(&stmt(0, "cute"), 3);
        t.record(&stmt(1, "big"), 9);
        let json = serde_json::to_string(&t).unwrap();
        let back: ProvenanceTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
