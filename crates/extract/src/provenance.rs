//! Statement provenance: which documents support each association.
//!
//! The paper's application "can exploit high-confidence entity-property
//! associations and offer links to supporting content on the Web as query
//! result" (§2). This module tracks, per entity-property pair, a bounded
//! sample of supporting document ids. The sample keeps the *smallest* K
//! ids, which makes merging commutative and associative — shard order
//! cannot change the result, preserving the pipeline's determinism.

use crate::evidence::Statement;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use surveyor_kb::{EntityId, Property, PropertyId};

/// Default number of supporting documents retained per pair.
pub const DEFAULT_SAMPLE: usize = 5;

/// Bounded supporting-document samples per entity-property pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceTable {
    sample_size: usize,
    #[serde(with = "entries_codec")]
    map: FxHashMap<(EntityId, PropertyId), Vec<u64>>,
}

impl Default for ProvenanceTable {
    fn default() -> Self {
        Self::new(DEFAULT_SAMPLE)
    }
}

impl ProvenanceTable {
    /// An empty table keeping up to `sample_size` documents per pair.
    pub fn new(sample_size: usize) -> Self {
        Self {
            sample_size: sample_size.max(1),
            map: FxHashMap::default(),
        }
    }

    /// Records that `document` contains a statement for the pair.
    /// Allocation-free on the key: two `u32` ids.
    pub fn record(&mut self, statement: &Statement, document: u64) {
        let ids = self
            .map
            .entry((statement.entity, statement.property))
            .or_default();
        insert_bounded(ids, document, self.sample_size);
    }

    /// Merges another table (order-independent).
    pub fn merge(&mut self, other: ProvenanceTable) {
        for (key, ids) in other.map {
            let slot = self.map.entry(key).or_default();
            for id in ids {
                insert_bounded(slot, id, self.sample_size);
            }
        }
    }

    /// Supporting documents for a pair, smallest ids first (empty when the
    /// pair was never seen). Never-interned properties short-circuit.
    pub fn documents(&self, entity: EntityId, property: &Property) -> &[u64] {
        PropertyId::lookup(property)
            .map(|id| self.documents_id(entity, id))
            .unwrap_or(&[])
    }

    /// Supporting documents for an entity and an already-interned property.
    pub fn documents_id(&self, entity: EntityId, property: PropertyId) -> &[u64] {
        self.map
            .get(&(entity, property))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of pairs tracked.
    pub fn pair_count(&self) -> usize {
        self.map.len()
    }

    /// The configured sample bound.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// The table as a portable entry list, sorted by `(entity, property)`
    /// with properties resolved to their surface form — the same shape the
    /// serde codec and the binary snapshot format use.
    pub fn to_entries(&self) -> Vec<ProvenanceEntry> {
        // Resolve ids before sorting: id values are process-local, the
        // exported order must not be.
        let mut entries: Vec<ProvenanceEntry> = self
            .map
            .iter()
            .map(|((entity, property), documents)| ProvenanceEntry {
                entity: *entity,
                property: property.resolve(),
                documents: documents.clone(),
            })
            .collect();
        entries.sort_by(|a, b| (a.entity, &a.property).cmp(&(b.entity, &b.property)));
        entries
    }

    /// Rebuilds a table from an entry list, re-interning the properties in
    /// this process. Inverse of [`to_entries`](Self::to_entries).
    pub fn from_entries(sample_size: usize, entries: Vec<ProvenanceEntry>) -> Self {
        Self {
            sample_size: sample_size.max(1),
            map: entries
                .into_iter()
                .map(|e| ((e.entity, PropertyId::intern(&e.property)), e.documents))
                .collect(),
        }
    }
}

/// One portable provenance entry: the pair plus its document sample, with
/// the property resolved so nothing process-local leaks out.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceEntry {
    /// The entity.
    pub entity: EntityId,
    /// The property, resolved to its surface form.
    pub property: Property,
    /// Supporting document ids, ascending.
    pub documents: Vec<u64>,
}

/// Inserts `id` into a sorted, deduplicated, bounded id list.
fn insert_bounded(ids: &mut Vec<u64>, id: u64, bound: usize) {
    match ids.binary_search(&id) {
        Ok(_) => {}
        Err(pos) => {
            if pos < bound {
                ids.insert(pos, id);
                ids.truncate(bound);
            }
        }
    }
}

/// Serde codec: the tuple-keyed map serializes as the sorted entry list
/// of [`ProvenanceTable::to_entries`].
mod entries_codec {
    use super::*;

    type ProvenanceMap = FxHashMap<(EntityId, PropertyId), Vec<u64>>;

    pub fn to_value(map: &ProvenanceMap) -> serde::Value {
        let mut entries: Vec<ProvenanceEntry> = map
            .iter()
            .map(|((entity, property), documents)| ProvenanceEntry {
                entity: *entity,
                property: property.resolve(),
                documents: documents.clone(),
            })
            .collect();
        entries.sort_by(|a, b| (a.entity, &a.property).cmp(&(b.entity, &b.property)));
        serde::Serialize::to_value(&entries)
    }

    pub fn from_value(value: &serde::Value) -> Result<ProvenanceMap, serde::Error> {
        let entries: Vec<ProvenanceEntry> = serde::Deserialize::from_value(value)?;
        Ok(entries
            .into_iter()
            .map(|e| ((e.entity, PropertyId::intern(&e.property)), e.documents))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::Polarity;

    fn stmt(entity: u32, prop: &str) -> Statement {
        Statement::new(
            EntityId(entity),
            &Property::adjective(prop),
            Polarity::Positive,
        )
    }

    #[test]
    fn keeps_smallest_ids_up_to_bound() {
        let mut t = ProvenanceTable::new(3);
        for doc in [9, 2, 7, 1, 8, 3] {
            t.record(&stmt(0, "cute"), doc);
        }
        assert_eq!(
            t.documents(EntityId(0), &Property::adjective("cute")),
            [1, 2, 3]
        );
        assert!(t
            .documents(EntityId(1), &Property::adjective("cute"))
            .is_empty());
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut t = ProvenanceTable::new(3);
        t.record(&stmt(0, "cute"), 5);
        t.record(&stmt(0, "cute"), 5);
        assert_eq!(t.documents(EntityId(0), &Property::adjective("cute")), [5]);
    }

    #[test]
    fn merge_is_order_independent() {
        let build = |docs: &[u64]| {
            let mut t = ProvenanceTable::new(3);
            for &d in docs {
                t.record(&stmt(0, "cute"), d);
            }
            t
        };
        let a = build(&[10, 4]);
        let b = build(&[1, 7, 12]);
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab, ba);
        assert_eq!(
            ab.documents(EntityId(0), &Property::adjective("cute")),
            [1, 4, 7]
        );
    }

    #[test]
    fn entries_round_trip_and_are_sorted() {
        let mut t = ProvenanceTable::new(2);
        t.record(&stmt(1, "big"), 9);
        t.record(&stmt(0, "cute"), 3);
        t.record(&stmt(0, "big"), 7);
        let entries = t.to_entries();
        let keys: Vec<_> = entries
            .iter()
            .map(|e| (e.entity, e.property.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let back = ProvenanceTable::from_entries(t.sample_size(), entries);
        assert_eq!(back, t);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = ProvenanceTable::new(2);
        t.record(&stmt(0, "cute"), 3);
        t.record(&stmt(1, "big"), 9);
        let json = serde_json::to_string(&t).unwrap();
        let back: ProvenanceTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
