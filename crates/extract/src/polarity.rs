//! Statement polarity (paper Figure 5).
//!
//! "We decide the polarity by following the path in the dependency tree
//! from the property token to the root: starting with a polarity of +1, we
//! change the sign every time we encounter a negated token on that path (a
//! negated token has a negation as child element)."

use crate::evidence::Polarity;
use surveyor_nlp::{DepRel, DepTree};

/// Computes the polarity of a statement whose property token is
/// `property_token`, by counting negated tokens on the path to the root.
///
/// An even count (including zero) is positive; an odd count negative —
/// which makes double negations like "I don't think that snakes are never
/// dangerous" come out positive, as the paper requires.
pub fn statement_polarity(tree: &DepTree, property_token: usize) -> Polarity {
    let mut negations = 0usize;
    for node in tree.path_to_root(property_token) {
        if tree.has_child_with_rel(node, DepRel::Neg) {
            negations += 1;
        }
    }
    if negations % 2 == 0 {
        Polarity::Positive
    } else {
        Polarity::Negative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_nlp::{parse, tokenize, Lexicon};

    fn polarity_of(sentence: &str, property_word: &str) -> Polarity {
        let lex = Lexicon::new();
        let mut toks = tokenize(sentence);
        lex.tag(&mut toks);
        let tree = parse(&toks).unwrap();
        let idx = (0..toks.len())
            .position(|i| toks.lower_of(i) == property_word)
            .expect("property word present");
        statement_polarity(&tree, idx)
    }

    #[test]
    fn plain_positive() {
        assert_eq!(polarity_of("Chicago is big", "big"), Polarity::Positive);
        assert_eq!(
            polarity_of("San Francisco is a big city", "big"),
            Polarity::Positive
        );
    }

    #[test]
    fn simple_negation() {
        assert_eq!(polarity_of("Chicago is not big", "big"), Polarity::Negative);
        assert_eq!(
            polarity_of("San Francisco is not a big city", "big"),
            Polarity::Negative
        );
        assert_eq!(
            polarity_of("Snakes are never dangerous", "dangerous"),
            Polarity::Negative
        );
    }

    #[test]
    fn negated_matrix_verb() {
        assert_eq!(
            polarity_of("I don't think that Chicago is big", "big"),
            Polarity::Negative
        );
        assert_eq!(
            polarity_of("I do not believe snakes are dangerous", "dangerous"),
            Polarity::Negative
        );
    }

    #[test]
    fn figure5_double_negation_is_positive() {
        assert_eq!(
            polarity_of("I don't think that snakes are never dangerous", "dangerous"),
            Polarity::Positive
        );
    }

    #[test]
    fn positive_embedding_stays_positive() {
        assert_eq!(
            polarity_of("I think that Chicago is big", "big"),
            Polarity::Positive
        );
    }

    #[test]
    fn negation_on_amod_head_noun() {
        // "X is not a big city": the negation hangs off "city", which lies
        // on big's path to the root.
        assert_eq!(
            polarity_of("Oakville is not a big city", "big"),
            Polarity::Negative
        );
    }
}
