//! Antonym folding — the §4 design alternative the paper rejected.
//!
//! "We considered taking into account antonym relationships between
//! adjectives when identifying negations, e.g., interpreting the statement
//! *Palo Alto is small* as negation of *Palo Alto is big*. We decided
//! against it … even if two adjectives are registered as antonyms, they
//! usually do not represent the exact opposite of each other. Users who
//! consider a city as not big do not necessarily consider it small."
//!
//! This module implements the rejected alternative so its cost can be
//! *measured*: an antonym lexicon, statement canonicalization (a statement
//! about the negative pole becomes a flipped-polarity statement about the
//! canonical pole), and table-level folding. The evaluation crate's
//! ablation shows exactly the failure mode the paper predicted.

use crate::evidence::{EvidenceEntry, EvidenceTable, Polarity, Statement};
use rustc_hash::FxHashMap;
use surveyor_kb::Property;

/// A directed antonym lexicon: each negative-pole adjective maps to its
/// canonical positive-pole partner.
#[derive(Debug, Clone, Default)]
pub struct AntonymLexicon {
    /// negative pole → canonical pole.
    to_canonical: FxHashMap<String, String>,
}

/// WordNet-style core antonym pairs `(canonical, opposite)`.
const CORE_PAIRS: &[(&str, &str)] = &[
    ("big", "small"),
    ("big", "tiny"),
    ("dangerous", "safe"),
    ("dangerous", "harmless"),
    ("cheap", "expensive"),
    ("fast", "slow"),
    ("loud", "quiet"),
    ("young", "old"),
    ("warm", "cold"),
    ("exciting", "boring"),
    ("pretty", "ugly"),
    ("common", "rare"),
    ("modern", "ancient"),
    ("simple", "complex"),
];

impl AntonymLexicon {
    /// An empty lexicon (folding becomes the identity).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The built-in core pairs.
    pub fn core() -> Self {
        let mut lex = Self::default();
        for (canonical, opposite) in CORE_PAIRS {
            lex.add_pair(canonical, opposite);
        }
        lex
    }

    /// Registers `opposite` as the antonym of the canonical `canonical`.
    pub fn add_pair(&mut self, canonical: &str, opposite: &str) {
        self.to_canonical
            .insert(opposite.to_lowercase(), canonical.to_lowercase());
    }

    /// The canonical partner of a negative-pole adjective, if registered.
    pub fn canonical_of(&self, adjective: &str) -> Option<&str> {
        self.to_canonical.get(adjective).map(String::as_str)
    }

    /// Number of registered directed pairs.
    pub fn len(&self) -> usize {
        self.to_canonical.len()
    }

    /// Whether no pairs are registered.
    pub fn is_empty(&self) -> bool {
        self.to_canonical.is_empty()
    }

    /// Canonicalizes one statement: a **bare-adjective** statement about a
    /// registered negative pole becomes a flipped-polarity statement about
    /// the canonical pole. Adverb-qualified properties are left alone —
    /// the paper's second objection ("adverb-adjective combinations for
    /// which it is often impossible to find any antonyms at all").
    pub fn canonicalize(&self, statement: Statement) -> Statement {
        // Cold path (ablation only): resolving the interned property here is
        // fine, the production pipeline never folds antonyms.
        let property = statement.property.resolve();
        if !property.is_bare() {
            return statement;
        }
        match self.canonical_of(property.head()) {
            None => statement,
            Some(canonical) => Statement::new(
                statement.entity,
                &Property::adjective(canonical),
                match statement.polarity {
                    Polarity::Positive => Polarity::Negative,
                    Polarity::Negative => Polarity::Positive,
                },
            ),
        }
    }

    /// Folds a whole evidence table: every counter row whose property is a
    /// registered negative pole is merged, polarity-flipped, into its
    /// canonical pole's row.
    pub fn fold_table(&self, table: &EvidenceTable) -> EvidenceTable {
        self.fold_table_counting(table).0
    }

    /// Like [`fold_table`](Self::fold_table), also reporting how many
    /// statements were rewritten onto a canonical pole (the
    /// `extract.antonym_rewrites` counter of [`fold_table_observed`]).
    ///
    /// [`fold_table_observed`]: Self::fold_table_observed
    pub fn fold_table_counting(&self, table: &EvidenceTable) -> (EvidenceTable, u64) {
        let mut rewrites = 0u64;
        let entries = table
            .to_entries()
            .into_iter()
            .map(|entry| {
                if !entry.property.is_bare() {
                    return entry;
                }
                match self.canonical_of(entry.property.head()) {
                    None => entry,
                    Some(canonical) => {
                        rewrites += entry.positive + entry.negative;
                        EvidenceEntry {
                            entity: entry.entity,
                            property: Property::adjective(canonical),
                            // Polarity flip swaps the counters.
                            positive: entry.negative,
                            negative: entry.positive,
                        }
                    }
                }
            })
            .collect();
        (EvidenceTable::from_entries(entries), rewrites)
    }

    /// Like [`fold_table`](Self::fold_table), adding the number of
    /// rewritten statements to the `extract.antonym_rewrites` counter of
    /// `obs`.
    pub fn fold_table_observed(
        &self,
        table: &EvidenceTable,
        obs: &surveyor_obs::MetricsRegistry,
    ) -> EvidenceTable {
        let (folded, rewrites) = self.fold_table_counting(table);
        obs.add("extract.antonym_rewrites", rewrites);
        folded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_kb::EntityId;

    fn stmt(prop: &str, polarity: Polarity) -> Statement {
        Statement::new(EntityId(1), &Property::parse(prop).unwrap(), polarity)
    }

    #[test]
    fn canonicalizes_negative_pole_with_flip() {
        let lex = AntonymLexicon::core();
        // "Palo Alto is small" -> negation of "Palo Alto is big" (§4).
        let folded = lex.canonicalize(stmt("small", Polarity::Positive));
        assert_eq!(folded.property.resolve(), Property::adjective("big"));
        assert_eq!(folded.polarity, Polarity::Negative);
        // "X is not small" -> "X is big" — the dangerous implication.
        let folded = lex.canonicalize(stmt("small", Polarity::Negative));
        assert_eq!(folded.property.resolve(), Property::adjective("big"));
        assert_eq!(folded.polarity, Polarity::Positive);
    }

    #[test]
    fn canonical_pole_and_unknown_words_pass_through() {
        let lex = AntonymLexicon::core();
        let s = stmt("big", Polarity::Positive);
        assert_eq!(lex.canonicalize(s), s);
        let s = stmt("plaid", Polarity::Negative);
        assert_eq!(lex.canonicalize(s), s);
    }

    #[test]
    fn adverb_qualified_properties_are_never_folded() {
        let lex = AntonymLexicon::core();
        let s = stmt("very small", Polarity::Positive);
        assert_eq!(lex.canonicalize(s), s);
    }

    #[test]
    fn fold_table_merges_counters() {
        let lex = AntonymLexicon::core();
        let mut table = EvidenceTable::new();
        table.add(&stmt("big", Polarity::Positive));
        table.add(&stmt("big", Polarity::Positive));
        table.add(&stmt("small", Polarity::Positive)); // -> (big, -)
        table.add(&stmt("small", Polarity::Negative)); // -> (big, +)
        let folded = lex.fold_table(&table);
        let counts = folded.counts(EntityId(1), &Property::adjective("big"));
        assert_eq!(counts.positive, 3);
        assert_eq!(counts.negative, 1);
        assert_eq!(folded.pair_count(), 1);
        assert_eq!(folded.total_statements(), 4);
    }

    #[test]
    fn fold_table_observed_counts_rewrites() {
        let lex = AntonymLexicon::core();
        let mut table = EvidenceTable::new();
        table.add(&stmt("big", Polarity::Positive)); // untouched
        table.add(&stmt("small", Polarity::Positive)); // rewritten
        table.add(&stmt("small", Polarity::Negative)); // rewritten
        let obs = surveyor_obs::MetricsRegistry::new();
        let folded = lex.fold_table_observed(&table, &obs);
        assert_eq!(obs.counter_value("extract.antonym_rewrites"), 2);
        assert_eq!(folded, lex.fold_table(&table));
    }

    #[test]
    fn empty_lexicon_is_identity() {
        let lex = AntonymLexicon::empty();
        assert!(lex.is_empty());
        let mut table = EvidenceTable::new();
        table.add(&stmt("small", Polarity::Positive));
        assert_eq!(lex.fold_table(&table), table);
    }

    #[test]
    fn custom_pairs() {
        let mut lex = AntonymLexicon::empty();
        lex.add_pair("calm", "hectic");
        assert_eq!(lex.canonical_of("hectic"), Some("calm"));
        assert_eq!(lex.canonical_of("calm"), None);
        assert_eq!(lex.len(), 1);
    }
}
