//! Extraction configuration and the pattern versions of Table 4.

use serde::{Deserialize, Serialize};

/// Verb class admitted by the adjectival-complement pattern's top node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerbSet {
    /// Only forms of "to be" (the restrictive choice of versions V3/V4).
    ToBe,
    /// The full copula class (`seems`, `looks`, …) plus small-clause verbs
    /// (`find`, `consider`) — versions V1/V2.
    CopulaClass,
}

/// Which of the Figure 4 patterns are enabled and how strictly they filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractionConfig {
    /// Adjectival-modifier pattern (Figure 4a).
    pub amod: bool,
    /// Adjectival-complement pattern (Figure 4b).
    pub acomp: bool,
    /// Conjunction expansion (Figure 4c).
    pub conj: bool,
    /// Verb class for the complement pattern.
    pub verbs: VerbSet,
    /// Intrinsicness filtering: prepositional-constriction rejection and
    /// the coreference requirement on the amod pattern (§4).
    pub intrinsic_checks: bool,
}

impl ExtractionConfig {
    /// The configuration the paper shipped (Table 4 version 4).
    pub fn paper_final() -> Self {
        PatternVersion::V4.config()
    }
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self::paper_final()
    }
}

/// The four extraction-pattern versions compared in paper Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternVersion {
    /// amod only, copula class, no intrinsicness checks.
    V1,
    /// amod + acomp, copula class, no checks — highest recall, low quality.
    V2,
    /// acomp only, "to be", checks — highest precision, low recall.
    V3,
    /// amod + acomp, "to be", checks — the shipped trade-off.
    V4,
}

impl PatternVersion {
    /// All versions in Table 4 order.
    pub fn all() -> [PatternVersion; 4] {
        [Self::V1, Self::V2, Self::V3, Self::V4]
    }

    /// The concrete configuration for this version.
    pub fn config(self) -> ExtractionConfig {
        match self {
            Self::V1 => ExtractionConfig {
                amod: true,
                acomp: false,
                conj: true,
                verbs: VerbSet::CopulaClass,
                intrinsic_checks: false,
            },
            Self::V2 => ExtractionConfig {
                amod: true,
                acomp: true,
                conj: true,
                verbs: VerbSet::CopulaClass,
                intrinsic_checks: false,
            },
            Self::V3 => ExtractionConfig {
                amod: false,
                acomp: true,
                conj: true,
                verbs: VerbSet::ToBe,
                intrinsic_checks: true,
            },
            Self::V4 => ExtractionConfig {
                amod: true,
                acomp: true,
                conj: true,
                verbs: VerbSet::ToBe,
                intrinsic_checks: true,
            },
        }
    }

    /// Table 4's "Modifiers" column.
    pub fn modifiers_label(self) -> &'static str {
        match self {
            Self::V1 => "amod",
            Self::V2 | Self::V4 => "amod+acomp",
            Self::V3 => "acomp",
        }
    }

    /// Table 4's "Verbs" column.
    pub fn verbs_label(self) -> &'static str {
        match self.config().verbs {
            VerbSet::ToBe => "to be",
            VerbSet::CopulaClass => "copula",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_is_default_and_paper_final() {
        let d = ExtractionConfig::default();
        assert_eq!(d, PatternVersion::V4.config());
        assert!(d.amod && d.acomp && d.conj && d.intrinsic_checks);
        assert_eq!(d.verbs, VerbSet::ToBe);
    }

    #[test]
    fn version_matrix_matches_table4() {
        let v1 = PatternVersion::V1.config();
        assert!(v1.amod && !v1.acomp && !v1.intrinsic_checks);
        assert_eq!(v1.verbs, VerbSet::CopulaClass);
        let v2 = PatternVersion::V2.config();
        assert!(v2.amod && v2.acomp && !v2.intrinsic_checks);
        let v3 = PatternVersion::V3.config();
        assert!(!v3.amod && v3.acomp && v3.intrinsic_checks);
        assert_eq!(v3.verbs, VerbSet::ToBe);
    }

    #[test]
    fn labels_match_table4() {
        assert_eq!(PatternVersion::V1.modifiers_label(), "amod");
        assert_eq!(PatternVersion::V2.modifiers_label(), "amod+acomp");
        assert_eq!(PatternVersion::V3.verbs_label(), "to be");
        assert_eq!(PatternVersion::V1.verbs_label(), "copula");
    }

    #[test]
    fn all_lists_four_versions() {
        assert_eq!(PatternVersion::all().len(), 4);
    }
}
