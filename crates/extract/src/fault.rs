//! Fault-tolerance layer for the sharded extraction pipeline.
//!
//! The paper ran extraction "on up to 5000 nodes" over a 40 TB snapshot
//! (§7.1); at that scale shard-level failures are routine and the job must
//! still converge on dominant opinions from the shards that survive.
//! Because evidence-table merge is associative and commutative (see
//! [`crate::runner`]), dropping or retrying shards is semantically safe —
//! the model simply sees fewer statements, exactly as it would on a
//! partial crawl.
//!
//! The pieces:
//!
//! - [`ShardError`] — typed shard failures, split into transient
//!   (retryable) and permanent (quarantine immediately) classes, with
//!   panics isolated by the runner as their own class.
//! - [`FallibleShardSource`] — the `Result`-returning extension of
//!   [`ShardSource`]; every infallible source implements it for free.
//! - [`FaultInjector`] / [`FaultPlan`] — a deterministic chaos harness
//!   that wraps any source and injects panics, transient errors,
//!   permanent errors, and slow shards according to a seeded plan.
//! - [`RetryPolicy`] — capped exponential backoff with a per-shard
//!   attempt budget. The schedule is a pure function of the attempt
//!   number, so tests assert it without touching a clock.
//! - [`FailurePolicy`] — what the run does about failed shards:
//!   [`FailFast`](FailurePolicy::FailFast) aborts on the first failure,
//!   [`Degrade`](FailurePolicy::Degrade) quarantines failed shards and
//!   completes as long as shard coverage stays above a floor.
//! - [`ShardCoverage`] / [`RunOutcome`] / [`RunError`] — the accounting
//!   that makes a degraded answer visible instead of silent.

use crate::runner::ShardSource;
use std::borrow::Cow;
use std::fmt;
use std::time::Duration;
use surveyor_nlp::AnnotatedDocument;

/// Why materializing or extracting a shard failed.
///
/// The transient/permanent split drives the retry state machine: only
/// [`Transient`](Self::Transient) failures are retried; the other two
/// classes quarantine the shard on first sight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A failure that may succeed on retry (flaky I/O, timeouts,
    /// overloaded storage).
    Transient(String),
    /// A failure retrying cannot fix (corrupt input, missing shard).
    Permanent(String),
    /// The shard's worker panicked; the runner caught the unwind and
    /// poisons the shard rather than the run.
    Panicked(String),
}

impl ShardError {
    /// Whether the retry loop should try this shard again.
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::Transient(_))
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        match self {
            Self::Transient(m) | Self::Permanent(m) | Self::Panicked(m) => m,
        }
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Transient(m) => write!(f, "transient: {m}"),
            Self::Permanent(m) => write!(f, "permanent: {m}"),
            Self::Panicked(m) => write!(f, "panicked: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// A [`ShardSource`] whose shard materialization can fail.
///
/// `attempt` is the zero-based attempt number for this shard, so sources
/// (and the [`FaultInjector`]) can behave differently across retries —
/// e.g. a transient fault that clears after `n` failures.
pub trait FallibleShardSource: Sync {
    /// Number of shards available.
    fn shard_count(&self) -> usize;

    /// Materializes shard `index`, or reports why it cannot.
    fn try_shard(
        &self,
        index: usize,
        attempt: u32,
    ) -> Result<Cow<'_, [AnnotatedDocument]>, ShardError>;
}

/// Every infallible source is trivially fallible: materialization never
/// errors (though it may still panic, which the hardened runner isolates).
impl<S: ShardSource> FallibleShardSource for S {
    fn shard_count(&self) -> usize {
        ShardSource::shard_count(self)
    }

    fn try_shard(
        &self,
        index: usize,
        _attempt: u32,
    ) -> Result<Cow<'_, [AnnotatedDocument]>, ShardError> {
        Ok(self.shard(index))
    }
}

/// A view of selected shards of a wrapped source, renumbered `0..len`.
///
/// This is how incremental mining addresses a corpus: the base mine reads
/// the prefix `[0, k)` of a world's shards, a delta update reads a later
/// range, and quarantine replay reads exactly the previously-lost shard
/// ids — all against the *same* deterministic generator, so shard `i` of
/// the world produces identical documents no matter which subset view it
/// is materialized through.
#[derive(Debug)]
pub struct ShardSubset<S> {
    inner: S,
    shards: Vec<usize>,
}

impl<S: FallibleShardSource> ShardSubset<S> {
    /// A view of `inner` restricted to the given world-shard indexes
    /// (in the given order). Indexes must be in range for `inner`.
    pub fn new(inner: S, shards: Vec<usize>) -> Self {
        for &shard in &shards {
            assert!(
                shard < inner.shard_count(),
                "subset shard {shard} out of range for source with {} shards",
                inner.shard_count()
            );
        }
        Self { inner, shards }
    }

    /// A view of the contiguous world-shard range `start..end`.
    pub fn range(inner: S, start: usize, end: usize) -> Self {
        Self::new(inner, (start..end).collect())
    }

    /// The world-shard indexes this view exposes, in view order.
    pub fn shards(&self) -> &[usize] {
        &self.shards
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: FallibleShardSource> FallibleShardSource for ShardSubset<S> {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn try_shard(
        &self,
        index: usize,
        attempt: u32,
    ) -> Result<Cow<'_, [AnnotatedDocument]>, ShardError> {
        self.inner.try_shard(self.shards[index], attempt)
    }
}

/// One injected fault, assigned to a single shard of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The shard panics on every attempt (a poisoned shard).
    Panic,
    /// The shard fails with a transient error on the first `failures`
    /// attempts, then succeeds.
    Transient {
        /// Attempts that fail before the shard recovers.
        failures: u32,
    },
    /// The shard fails with a permanent error on every attempt.
    Permanent,
    /// The shard succeeds but only after a deterministic delay — the
    /// straggler case.
    Slow {
        /// Extra latency injected before materialization.
        millis: u64,
    },
}

/// A deterministic per-shard fault assignment — the chaos harness input.
///
/// Plans are pure data: the same plan always injects the same faults, so
/// chaos tests are reproducible and their expected accounting can be
/// computed from the plan itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<(usize, Fault)>,
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Assigns `fault` to `shard` (last assignment per shard wins).
    pub fn with(mut self, shard: usize, fault: Fault) -> Self {
        self.faults.retain(|(s, _)| *s != shard);
        self.faults.push((shard, fault));
        self
    }

    /// A seeded pseudo-random plan over `shard_count` shards: roughly 15%
    /// transient shards (1–2 failures), 5% permanent, 5% panicking, and 5%
    /// slow, the rest clean. Deterministic in `(seed, shard_count)` — the
    /// plan behind `SURVEYOR_CHAOS_SEED` and `--chaos-seed`.
    pub fn from_seed(seed: u64, shard_count: usize) -> Self {
        let mut plan = Self::none();
        for shard in 0..shard_count {
            // SplitMix64 over (seed, shard): no RNG dependency, stable
            // across platforms.
            let mut x = seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x = splitmix64(&mut x);
            let roll = x % 100;
            let fault = match roll {
                0..=14 => Fault::Transient {
                    failures: 1 + (splitmix64(&mut x) % 2) as u32,
                },
                15..=19 => Fault::Permanent,
                20..=24 => Fault::Panic,
                25..=29 => Fault::Slow { millis: 1 },
                _ => continue,
            };
            plan = plan.with(shard, fault);
        }
        plan
    }

    /// The fault assigned to `shard`, if any.
    pub fn fault(&self, shard: usize) -> Option<Fault> {
        self.faults
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, f)| *f)
    }

    /// All (shard, fault) assignments, in assignment order.
    pub fn assignments(&self) -> &[(usize, Fault)] {
        &self.faults
    }

    /// The shards this plan will quarantine under a `max_attempts`
    /// budget, sorted: panicking and permanent shards, plus transient
    /// shards whose failure count exhausts the budget.
    pub fn expected_quarantine(&self, max_attempts: u32) -> Vec<usize> {
        let mut shards: Vec<usize> = self
            .faults
            .iter()
            .filter(|(_, f)| match f {
                Fault::Panic | Fault::Permanent => true,
                Fault::Transient { failures } => *failures >= max_attempts,
                Fault::Slow { .. } => false,
            })
            .map(|(s, _)| *s)
            .collect();
        shards.sort_unstable();
        shards
    }

    /// Total retry attempts this plan will cost under a `max_attempts`
    /// budget: each transient shard retries until it recovers or the
    /// budget is spent.
    pub fn expected_retries(&self, max_attempts: u32) -> u64 {
        self.faults
            .iter()
            .map(|(_, f)| match f {
                Fault::Transient { failures } => u64::from((*failures).min(max_attempts - 1)),
                _ => 0,
            })
            .sum()
    }
}

/// One SplitMix64 step (the standard finalizer; public-domain algorithm).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wraps any fallible source and injects the faults of a [`FaultPlan`] —
/// the chaos harness used by tests, `scripts/verify.sh`, and the CLI's
/// `--chaos-seed` flag.
#[derive(Debug)]
pub struct FaultInjector<S> {
    inner: S,
    plan: FaultPlan,
}

impl<S: FallibleShardSource> FaultInjector<S> {
    /// Wraps `inner`, injecting according to `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self { inner, plan }
    }

    /// The fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: FallibleShardSource> FallibleShardSource for FaultInjector<S> {
    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn try_shard(
        &self,
        index: usize,
        attempt: u32,
    ) -> Result<Cow<'_, [AnnotatedDocument]>, ShardError> {
        match self.plan.fault(index) {
            Some(Fault::Panic) => panic!("injected panic in shard {index}"), // lint:allow(no-panic-in-lib): deliberate: the injector panics so catch_unwind isolation is exercised
            Some(Fault::Transient { failures }) if attempt < failures => Err(
                ShardError::Transient(format!("injected transient fault in shard {index}")),
            ),
            Some(Fault::Permanent) => Err(ShardError::Permanent(format!(
                "injected permanent fault in shard {index}"
            ))),
            Some(Fault::Slow { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                self.inner.try_shard(index, attempt)
            }
            _ => self.inner.try_shard(index, attempt),
        }
    }
}

/// Retry budget and backoff schedule for transient shard failures.
///
/// The schedule is capped exponential: retry `r` (zero-based) waits
/// `base_backoff * 2^r`, clamped to `max_backoff`. [`backoff`] is a pure
/// function of the retry index, so the schedule is unit-testable without
/// any clock; [`RetryPolicy::immediate`] zeroes the delays entirely for
/// deterministic tests.
///
/// [`backoff`]: Self::backoff
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-shard attempt budget (first attempt included); at least 1.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_backoff: Duration,
    /// Upper clamp on any single delay.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// The default attempt budget with zero backoff — retries are still
    /// performed but never sleep, keeping tests wall-clock free.
    pub fn immediate() -> Self {
        Self {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..Self::default()
        }
    }

    /// A single attempt: no retries at all.
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            ..Self::immediate()
        }
    }

    /// The delay before zero-based retry `retry`: `base * 2^retry`
    /// clamped to `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .map_or(self.max_backoff, |d| d.min(self.max_backoff))
    }
}

/// What the run does about shards that fail for good.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailurePolicy {
    /// Abort on the first shard that exhausts its attempt budget; the
    /// error names the lowest-indexed failed shard.
    FailFast,
    /// Quarantine failed shards and keep going, as long as the fraction
    /// of succeeded shards stays at or above `min_shard_coverage`.
    Degrade {
        /// Coverage floor in `[0, 1]`; below it the run errors instead
        /// of returning a silently hollow answer.
        min_shard_coverage: f64,
    },
}

impl FailurePolicy {
    /// The degrade policy with no coverage floor: any surviving shard
    /// subset is accepted.
    pub fn degrade_unchecked() -> Self {
        Self::Degrade {
            min_shard_coverage: 0.0,
        }
    }
}

impl fmt::Display for FailurePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FailFast => write!(f, "failfast"),
            Self::Degrade { min_shard_coverage } => {
                write!(f, "degrade (min coverage {min_shard_coverage})")
            }
        }
    }
}

/// A shard that exhausted its attempt budget and was dropped from the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedShard {
    /// The shard index.
    pub shard: usize,
    /// Attempts spent before quarantining.
    pub attempts: u32,
    /// The final error.
    pub error: ShardError,
}

/// Per-run shard accounting: what was attempted, what survived, what was
/// lost. [`RunOutcome`] carries it alongside the merged output so a
/// degraded answer is never silent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardCoverage {
    /// Shards in the source.
    pub shard_count: usize,
    /// Shards whose evidence made it into the output.
    pub succeeded: usize,
    /// Total retry attempts across all shards (attempts beyond each
    /// shard's first).
    pub retries: u64,
    /// Shards dropped after exhausting their attempt budget, sorted by
    /// shard index.
    pub quarantined: Vec<QuarantinedShard>,
}

impl ShardCoverage {
    /// Shards attempted at least once (succeeded or quarantined).
    pub fn attempted(&self) -> usize {
        self.succeeded + self.quarantined.len()
    }

    /// Fraction of shards that succeeded (1.0 for an empty source).
    pub fn fraction(&self) -> f64 {
        if self.shard_count == 0 {
            1.0
        } else {
            self.succeeded as f64 / self.shard_count as f64
        }
    }

    /// The quarantined shard indices, sorted.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.quarantined.iter().map(|q| q.shard).collect()
    }
}

/// A fault-tolerant run's result: the merged output plus the shard
/// accounting behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Merged evidence and provenance from every surviving shard.
    pub output: crate::runner::ExtractionOutput,
    /// What was attempted, retried, and lost.
    pub coverage: ShardCoverage,
}

/// Why a fault-tolerant run returned no output.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// Under [`FailurePolicy::FailFast`]: the lowest-indexed shard that
    /// exhausted its attempt budget.
    ShardFailed {
        /// The failed shard.
        shard: usize,
        /// Attempts spent on it.
        attempts: u32,
        /// Its final error.
        error: ShardError,
    },
    /// Under [`FailurePolicy::Degrade`]: too many shards were lost.
    CoverageBelowFloor {
        /// Shards that succeeded.
        succeeded: usize,
        /// Shards in the source.
        shard_count: usize,
        /// The configured floor.
        min_shard_coverage: f64,
        /// The quarantined shard indices, sorted.
        quarantined: Vec<usize>,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShardFailed {
                shard,
                attempts,
                error,
            } => write!(
                f,
                "shard {shard} failed after {attempts} attempt(s): {error}"
            ),
            Self::CoverageBelowFloor {
                succeeded,
                shard_count,
                min_shard_coverage,
                quarantined,
            } => write!(
                f,
                "shard coverage {succeeded}/{shard_count} below floor {min_shard_coverage} \
                 (quarantined shards: {quarantined:?})"
            ),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(60),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(20));
        assert_eq!(policy.backoff(2), Duration::from_millis(40));
        assert_eq!(policy.backoff(3), Duration::from_millis(60)); // capped
        assert_eq!(policy.backoff(40), Duration::from_millis(60)); // overflow-safe
        assert_eq!(RetryPolicy::immediate().backoff(3), Duration::ZERO);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_mixed() {
        let a = FaultPlan::from_seed(2015, 256);
        let b = FaultPlan::from_seed(2015, 256);
        assert_eq!(a, b);
        let faulted = a.assignments().len();
        assert!(
            faulted > 256 / 10 && faulted < 256 / 2,
            "unexpected fault density: {faulted}/256"
        );
        assert_ne!(a, FaultPlan::from_seed(2016, 256));
    }

    #[test]
    fn plan_predicts_quarantine_and_retries() {
        let plan = FaultPlan::none()
            .with(0, Fault::Panic)
            .with(2, Fault::Transient { failures: 1 })
            .with(3, Fault::Transient { failures: 5 })
            .with(5, Fault::Permanent)
            .with(6, Fault::Slow { millis: 1 });
        assert_eq!(plan.expected_quarantine(3), vec![0, 3, 5]);
        // Shard 2 retries once and recovers; shard 3 burns both retries.
        assert_eq!(plan.expected_retries(3), 1 + 2);
    }

    #[test]
    fn with_replaces_earlier_assignment() {
        let plan = FaultPlan::none()
            .with(1, Fault::Permanent)
            .with(1, Fault::Transient { failures: 1 });
        assert_eq!(plan.fault(1), Some(Fault::Transient { failures: 1 }));
        assert_eq!(plan.assignments().len(), 1);
    }

    #[test]
    fn shard_subset_remaps_indexes() {
        // A source whose shards are identifiable by their error message.
        struct Tagged;
        impl FallibleShardSource for Tagged {
            fn shard_count(&self) -> usize {
                8
            }
            fn try_shard(
                &self,
                index: usize,
                _attempt: u32,
            ) -> Result<Cow<'_, [AnnotatedDocument]>, ShardError> {
                Err(ShardError::Permanent(format!("world shard {index}")))
            }
        }
        let subset = ShardSubset::new(Tagged, vec![5, 2, 7]);
        assert_eq!(FallibleShardSource::shard_count(&subset), 3);
        assert_eq!(subset.shards(), &[5, 2, 7]);
        for (view, world) in [(0, 5), (1, 2), (2, 7)] {
            let err = subset.try_shard(view, 0).unwrap_err();
            assert_eq!(err.message(), format!("world shard {world}"));
        }
        let range = ShardSubset::range(Tagged, 3, 6);
        assert_eq!(range.shards(), &[3, 4, 5]);
        assert_eq!(range.inner().shard_count(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_subset_rejects_out_of_range_indexes() {
        struct Empty;
        impl FallibleShardSource for Empty {
            fn shard_count(&self) -> usize {
                2
            }
            fn try_shard(
                &self,
                _index: usize,
                _attempt: u32,
            ) -> Result<Cow<'_, [AnnotatedDocument]>, ShardError> {
                Ok(Cow::Owned(Vec::new()))
            }
        }
        let _ = ShardSubset::new(Empty, vec![0, 2]);
    }

    #[test]
    fn errors_render_their_class() {
        assert_eq!(
            ShardError::Transient("t".into()).to_string(),
            "transient: t"
        );
        assert!(!ShardError::Permanent("p".into()).is_transient());
        assert!(ShardError::Transient("t".into()).is_transient());
        let err = RunError::ShardFailed {
            shard: 4,
            attempts: 3,
            error: ShardError::Panicked("boom".into()),
        };
        assert!(err.to_string().contains("shard 4"));
        assert!(err.to_string().contains("panicked: boom"));
    }
}
