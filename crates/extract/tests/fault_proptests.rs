//! Property-based tests for the fault-tolerant runner: for arbitrary
//! fault plans and worker counts, the output over surviving shards is
//! bit-identical to a clean run over those same shards, and the shard
//! accounting always balances.
//!
//! Panic faults are exercised in the runner's unit tests instead — under
//! hundreds of proptest cases the default panic hook would flood stderr.

use proptest::prelude::*;
use std::borrow::Cow;
use surveyor_extract::{
    run_sharded_fault_tolerant, run_sharded_full, ExtractionConfig, FailurePolicy, Fault,
    FaultInjector, FaultPlan, RetryPolicy, ShardSource,
};
use surveyor_kb::{KnowledgeBase, KnowledgeBaseBuilder};
use surveyor_nlp::{annotate, AnnotatedDocument, Lexicon};

const SHARDS: usize = 6;

struct TextShards {
    shards: Vec<Vec<String>>,
    kb: KnowledgeBase,
    lexicon: Lexicon,
}

impl ShardSource for TextShards {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, index: usize) -> Cow<'_, [AnnotatedDocument]> {
        Cow::Owned(
            self.shards[index]
                .iter()
                .enumerate()
                .map(|(i, text)| annotate((index * 1000 + i) as u64, text, &self.kb, &self.lexicon))
                .collect(),
        )
    }
}

/// The shards of `inner` at the original indices in `keep` — documents
/// keep their original ids, so a clean run over a subset compares
/// bit-for-bit against a faulty run that lost the other shards.
struct SubsetShards<'a> {
    inner: &'a TextShards,
    keep: Vec<usize>,
}

impl ShardSource for SubsetShards<'_> {
    fn shard_count(&self) -> usize {
        self.keep.len()
    }

    fn shard(&self, index: usize) -> Cow<'_, [AnnotatedDocument]> {
        self.inner.shard(self.keep[index])
    }
}

fn kb() -> KnowledgeBase {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    b.add_entity("Kitten", animal).finish();
    b.add_entity("Tiger", animal).finish();
    b.build()
}

fn source(kb: KnowledgeBase) -> TextShards {
    let mut shards = Vec::new();
    for s in 0..SHARDS {
        let mut docs = Vec::new();
        for d in 0..3 {
            if (s + d) % 3 == 0 {
                docs.push("Kittens are cute. Tigers are not cute.".to_owned());
            } else {
                docs.push("Kittens are cute animals.".to_owned());
            }
        }
        shards.push(docs);
    }
    TextShards {
        shards,
        kb,
        lexicon: Lexicon::new(),
    }
}

/// Non-panicking faults only (see the module doc).
fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (1u32..=2).prop_map(|failures| Fault::Transient { failures }),
        Just(Fault::Permanent),
        Just(Fault::Slow { millis: 1 }),
    ]
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((0usize..SHARDS, fault_strategy()), 0..=SHARDS).prop_map(|assignments| {
        let mut plan = FaultPlan::none();
        for (shard, fault) in assignments {
            plan = plan.with(shard, fault);
        }
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chaotic_output_is_bit_identical_to_clean_run_over_survivors(
        plan in plan_strategy(),
        threads in 1usize..=4,
    ) {
        let kb = kb();
        let src = source(kb.clone());
        let config = ExtractionConfig::paper_final();
        let retry = RetryPolicy::immediate();
        let injector = FaultInjector::new(src, plan);

        let outcome = run_sharded_fault_tolerant(
            &injector,
            &kb,
            &config,
            threads,
            &retry,
            &FailurePolicy::degrade_unchecked(),
            None,
        )
        .expect("degrade without a floor always completes");

        // The accounting balances for every plan.
        let coverage = &outcome.coverage;
        prop_assert_eq!(coverage.shard_count, SHARDS);
        prop_assert_eq!(coverage.succeeded + coverage.quarantined.len(), SHARDS);
        prop_assert_eq!(
            coverage.quarantined_shards(),
            injector.plan().expected_quarantine(retry.max_attempts)
        );
        prop_assert_eq!(
            coverage.retries,
            injector.plan().expected_retries(retry.max_attempts)
        );

        // The output equals a clean (fault-free, single-threaded) run over
        // exactly the surviving shards — retries and completion order
        // leave no trace.
        let lost = coverage.quarantined_shards();
        let survivors = SubsetShards {
            inner: injector.inner(),
            keep: (0..SHARDS).filter(|s| !lost.contains(s)).collect(),
        };
        let clean = run_sharded_full(&survivors, &kb, &config, 1);
        prop_assert_eq!(&outcome.output, &clean);

        // And it is identical for any other worker count.
        for other_threads in [1, 3] {
            let again = run_sharded_fault_tolerant(
                &injector,
                &kb,
                &config,
                other_threads,
                &retry,
                &FailurePolicy::degrade_unchecked(),
                None,
            )
            .expect("degrade without a floor always completes");
            prop_assert_eq!(&again.output, &outcome.output);
            prop_assert_eq!(&again.coverage, &outcome.coverage);
        }
    }

    #[test]
    fn seeded_plans_balance_for_any_seed(seed in 0u64..1_000, shards in 1usize..=12) {
        let plan = FaultPlan::from_seed(seed, shards);
        let max_attempts = RetryPolicy::default().max_attempts;
        let quarantined = plan.expected_quarantine(max_attempts);
        // Every quarantined shard is in range and listed once, sorted.
        prop_assert!(quarantined.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(quarantined.iter().all(|&s| s < shards));
        // Transient shards within budget cost retries but no coverage.
        let recovered_retries: u64 = plan
            .assignments()
            .iter()
            .filter_map(|&(shard, fault)| match fault {
                Fault::Transient { failures }
                    if failures < max_attempts && !quarantined.contains(&shard) =>
                {
                    Some(u64::from(failures))
                }
                _ => None,
            })
            .sum();
        prop_assert!(plan.expected_retries(max_attempts) >= recovered_retries);
    }
}
