//! Regression tests: persisted extraction artifacts must not depend on
//! statement arrival order.
//!
//! `EvidenceTable` and `ProvenanceTable` key their hot-path maps on
//! `(EntityId, PropertyId)` hash maps; `to_entries`/`to_json` are the
//! boundary where iteration order is laundered into a sort on the resolved
//! property. Under parallel extraction the arrival order (and even the
//! interner's id assignment order) varies run to run, so these tests pin
//! the boundary by feeding identical statements in opposite orders.

use surveyor_extract::{EvidenceTable, Polarity, ProvenanceTable, Statement};
use surveyor_kb::{EntityId, Property};

fn statements() -> Vec<(Statement, u64)> {
    let mut out = Vec::new();
    for (i, (base, polarity)) in [
        ("order-safe", Polarity::Positive),
        ("order-cute", Polarity::Negative),
        ("order-big", Polarity::Positive),
        ("order-dangerous", Polarity::Negative),
        ("order-clean", Polarity::Positive),
    ]
    .iter()
    .enumerate()
    {
        for entity in 0..4u32 {
            let stmt = Statement::new(EntityId(entity), &Property::adjective(base), *polarity);
            out.push((stmt, (i as u64) * 100 + u64::from(entity)));
        }
    }
    out
}

#[test]
fn evidence_json_is_independent_of_insertion_order() {
    let stmts = statements();
    let mut forward = EvidenceTable::new();
    for (s, _) in &stmts {
        forward.add(s);
    }
    let mut reverse = EvidenceTable::new();
    for (s, _) in stmts.iter().rev() {
        reverse.add(s);
    }
    assert_eq!(forward.to_entries(), reverse.to_entries());
    assert_eq!(forward.to_json(), reverse.to_json());
}

#[test]
fn provenance_json_is_independent_of_insertion_order() {
    let stmts = statements();
    let mut forward = ProvenanceTable::new(3);
    for (s, doc) in &stmts {
        forward.record(s, *doc);
    }
    let mut reverse = ProvenanceTable::new(3);
    for (s, doc) in stmts.iter().rev() {
        reverse.record(s, *doc);
    }
    // The sample keeps the smallest K ids, so reversed arrival produces the
    // same table; serialization must then produce the same bytes.
    let fwd_json = serde_json::to_string(&forward).expect("provenance serializes");
    let rev_json = serde_json::to_string(&reverse).expect("provenance serializes");
    assert_eq!(fwd_json, rev_json);
}

#[test]
fn evidence_round_trip_preserves_sorted_entries() {
    let mut table = EvidenceTable::new();
    for (s, _) in &statements() {
        table.add(s);
    }
    let restored = EvidenceTable::from_json(&table.to_json()).expect("round trip");
    assert_eq!(table.to_entries(), restored.to_entries());
    // Entries are emitted in (entity, property) order, never map order.
    let entries = table.to_entries();
    let mut sorted = entries.clone();
    sorted.sort_by(|a, b| (a.entity, &a.property).cmp(&(b.entity, &b.property)));
    assert_eq!(entries, sorted);
}
