//! Property-based tests for the extraction pipeline: polarity parity under
//! stacked negations, counter-merge algebra, grouped-table merge (the
//! incremental-ingestion path), and version monotonicity.

use proptest::prelude::*;
use surveyor_extract::{
    extract_sentence, EvidenceTable, ExtractionConfig, GroupedEvidence, PatternVersion, Polarity,
    Statement,
};
use surveyor_kb::{EntityId, KnowledgeBaseBuilder, Property};
use surveyor_nlp::{annotate, Lexicon};

fn kb() -> surveyor_kb::KnowledgeBase {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    b.add_entity("Snake", animal).finish();
    b.build()
}

fn statement_strategy() -> impl Strategy<Value = Statement> {
    (
        0u32..16,
        prop_oneof![
            Just("big".to_owned()),
            Just("cute".to_owned()),
            Just("very big".to_owned()),
            Just("dangerous".to_owned())
        ],
        prop::bool::ANY,
    )
        .prop_map(|(e, p, pos)| {
            Statement::new(
                EntityId(e),
                &Property::parse(&p).unwrap(),
                if pos {
                    Polarity::Positive
                } else {
                    Polarity::Negative
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn polarity_parity_follows_negation_count(use_never in prop::bool::ANY, embed_neg in prop::bool::ANY) {
        // Build "I (don't) think that snakes are (never) dangerous."
        let matrix = if embed_neg { "I don't think that" } else { "I think that" };
        let inner = if use_never { "are never dangerous" } else { "are dangerous" };
        let sentence = format!("{matrix} snakes {inner}.");
        let kb = kb();
        let lex = Lexicon::new();
        let doc = annotate(0, &sentence, &kb, &lex);
        let stmts = extract_sentence(&doc.sentences[0], &kb, &ExtractionConfig::paper_final());
        prop_assert_eq!(stmts.len(), 1, "sentence: {}", sentence);
        let negations = usize::from(use_never) + usize::from(embed_neg);
        let expected = if negations % 2 == 0 { Polarity::Positive } else { Polarity::Negative };
        prop_assert_eq!(stmts[0].polarity, expected, "sentence: {}", sentence);
    }

    #[test]
    fn table_merge_is_commutative_and_associative(
        xs in prop::collection::vec(statement_strategy(), 0..40),
        ys in prop::collection::vec(statement_strategy(), 0..40),
        zs in prop::collection::vec(statement_strategy(), 0..40),
    ) {
        let build = |stmts: &[Statement]| {
            let mut t = EvidenceTable::new();
            for s in stmts { t.add(s); }
            t
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));

        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        let mut right_inner = b.clone();
        right_inner.merge(c.clone());
        let mut right = a.clone();
        right.merge(right_inner);
        prop_assert_eq!(&left, &right);

        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn totals_equal_sum_of_counts(xs in prop::collection::vec(statement_strategy(), 0..60)) {
        let mut t = EvidenceTable::new();
        for s in &xs { t.add(s); }
        let by_iter: u64 = t.iter().map(|(_, c)| c.total()).sum();
        prop_assert_eq!(by_iter, t.total_statements());
        prop_assert_eq!(t.total_statements(), xs.len() as u64);
        let (p, n) = t.polarity_totals();
        prop_assert_eq!(p + n, t.total_statements());
    }

    #[test]
    fn v2_superset_of_v4_on_copular_text(adjective in prop_oneof![
        Just("big"), Just("cute"), Just("dangerous")
    ], negated in prop::bool::ANY) {
        // On plain copular sentences the permissive V2 extracts at least
        // whatever the checked V4 extracts.
        let sentence = if negated {
            format!("Snakes are not {adjective}.")
        } else {
            format!("Snakes are {adjective}.")
        };
        let kb = kb();
        let lex = Lexicon::new();
        let doc = annotate(0, &sentence, &kb, &lex);
        let v4 = extract_sentence(&doc.sentences[0], &kb, &PatternVersion::V4.config());
        let v2 = extract_sentence(&doc.sentences[0], &kb, &PatternVersion::V2.config());
        for s in &v4 {
            prop_assert!(v2.contains(s), "v2 missing {s:?} for: {sentence}");
        }
    }
}

/// A knowledge base with entities across two types, so grouping by
/// `(notable type, resolved property)` is actually exercised.
fn grouping_kb() -> surveyor_kb::KnowledgeBase {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    let city = b.add_type("city", &["city"], &[]);
    for name in ["Snake", "Kitten", "Tiger"] {
        b.add_entity(name, animal).finish();
    }
    for name in ["Arlen", "Bedrock", "Quahog"] {
        b.add_entity(name, city).finish();
    }
    b.build()
}

/// Statements over the six `grouping_kb` entities and four properties —
/// enough collisions that merged groups fold per-entity counters, not
/// just concatenate groups.
fn grouping_statement_strategy() -> impl Strategy<Value = Statement> {
    (
        0u32..6,
        prop_oneof![
            Just("big".to_owned()),
            Just("cute".to_owned()),
            Just("very big".to_owned()),
            Just("dangerous".to_owned())
        ],
        prop::bool::ANY,
    )
        .prop_map(|(e, p, pos)| {
            Statement::new(
                EntityId(e),
                &Property::parse(&p).unwrap(),
                if pos {
                    Polarity::Positive
                } else {
                    Polarity::Negative
                },
            )
        })
}

fn table_of(stmts: &[Statement]) -> EvidenceTable {
    let mut t = EvidenceTable::new();
    for s in stmts {
        t.add(s);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn grouped_merge_matches_from_scratch(
        xs in prop::collection::vec(grouping_statement_strategy(), 0..60),
        ys in prop::collection::vec(grouping_statement_strategy(), 0..60),
    ) {
        // The incremental-ingestion contract: merging a delta's grouped
        // table into the base's equals grouping the concatenated
        // evidence from scratch — `merge(g(a), g(b)) == g(a ++ b)`.
        let kb = grouping_kb();
        let (a, b) = (table_of(&xs), table_of(&ys));
        let mut concatenated = a.clone();
        concatenated.merge(b.clone());
        let scratch = GroupedEvidence::from_table(&concatenated, &kb);

        let mut merged = GroupedEvidence::from_table(&a, &kb);
        merged.merge(GroupedEvidence::from_table(&b, &kb));
        prop_assert_eq!(&merged, &scratch);

        // Merge order must not matter either (delta-then-base).
        let mut reversed = GroupedEvidence::from_table(&b, &kb);
        reversed.merge(GroupedEvidence::from_table(&a, &kb));
        prop_assert_eq!(&reversed, &scratch);
    }

    #[test]
    fn grouped_merge_with_empty_delta_is_identity(
        xs in prop::collection::vec(grouping_statement_strategy(), 0..60),
    ) {
        // An empty delta leaves the base untouched — the grouped-table
        // face of "updating with nothing to ingest is a no-op" — and an
        // empty base adopts the delta wholesale.
        let kb = grouping_kb();
        let base = GroupedEvidence::from_table(&table_of(&xs), &kb);
        let empty = GroupedEvidence::from_table(&EvidenceTable::new(), &kb);

        let mut merged = base.clone();
        merged.merge(empty.clone());
        prop_assert_eq!(&merged, &base);

        let mut adopted = empty;
        adopted.merge(base.clone());
        prop_assert_eq!(&adopted, &base);
    }

    #[test]
    fn grouped_merge_preserves_totals_and_threshold_sets(
        xs in prop::collection::vec(grouping_statement_strategy(), 0..60),
        ys in prop::collection::vec(grouping_statement_strategy(), 0..60),
        rho in 1u64..30,
    ) {
        // Group totals are statement-count sums, so the merged table's
        // above-ρ set is exactly the from-scratch set — the property the
        // dirty-group re-decide logic leans on.
        let kb = grouping_kb();
        let (a, b) = (table_of(&xs), table_of(&ys));
        let mut concatenated = a.clone();
        concatenated.merge(b.clone());
        let scratch = GroupedEvidence::from_table(&concatenated, &kb);
        let mut merged = GroupedEvidence::from_table(&a, &kb);
        merged.merge(GroupedEvidence::from_table(&b, &kb));

        let keys = |g: &GroupedEvidence| {
            g.above_threshold(rho).map(|(key, _)| *key).collect::<Vec<_>>()
        };
        prop_assert_eq!(keys(&merged), keys(&scratch));
        let total = |g: &GroupedEvidence| g.iter().map(|(_, grp)| grp.total_statements()).sum::<u64>();
        prop_assert_eq!(total(&merged), (xs.len() + ys.len()) as u64);
    }
}
