//! Property-based tests for the extraction pipeline: polarity parity under
//! stacked negations, counter-merge algebra, and version monotonicity.

use proptest::prelude::*;
use surveyor_extract::{
    extract_sentence, EvidenceTable, ExtractionConfig, PatternVersion, Polarity, Statement,
};
use surveyor_kb::{EntityId, KnowledgeBaseBuilder, Property};
use surveyor_nlp::{annotate, Lexicon};

fn kb() -> surveyor_kb::KnowledgeBase {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type("animal", &["animal"], &[]);
    b.add_entity("Snake", animal).finish();
    b.build()
}

fn statement_strategy() -> impl Strategy<Value = Statement> {
    (
        0u32..16,
        prop_oneof![
            Just("big".to_owned()),
            Just("cute".to_owned()),
            Just("very big".to_owned()),
            Just("dangerous".to_owned())
        ],
        prop::bool::ANY,
    )
        .prop_map(|(e, p, pos)| {
            Statement::new(
                EntityId(e),
                &Property::parse(&p).unwrap(),
                if pos {
                    Polarity::Positive
                } else {
                    Polarity::Negative
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn polarity_parity_follows_negation_count(use_never in prop::bool::ANY, embed_neg in prop::bool::ANY) {
        // Build "I (don't) think that snakes are (never) dangerous."
        let matrix = if embed_neg { "I don't think that" } else { "I think that" };
        let inner = if use_never { "are never dangerous" } else { "are dangerous" };
        let sentence = format!("{matrix} snakes {inner}.");
        let kb = kb();
        let lex = Lexicon::new();
        let doc = annotate(0, &sentence, &kb, &lex);
        let stmts = extract_sentence(&doc.sentences[0], &kb, &ExtractionConfig::paper_final());
        prop_assert_eq!(stmts.len(), 1, "sentence: {}", sentence);
        let negations = usize::from(use_never) + usize::from(embed_neg);
        let expected = if negations % 2 == 0 { Polarity::Positive } else { Polarity::Negative };
        prop_assert_eq!(stmts[0].polarity, expected, "sentence: {}", sentence);
    }

    #[test]
    fn table_merge_is_commutative_and_associative(
        xs in prop::collection::vec(statement_strategy(), 0..40),
        ys in prop::collection::vec(statement_strategy(), 0..40),
        zs in prop::collection::vec(statement_strategy(), 0..40),
    ) {
        let build = |stmts: &[Statement]| {
            let mut t = EvidenceTable::new();
            for s in stmts { t.add(s); }
            t
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));

        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        let mut right_inner = b.clone();
        right_inner.merge(c.clone());
        let mut right = a.clone();
        right.merge(right_inner);
        prop_assert_eq!(&left, &right);

        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn totals_equal_sum_of_counts(xs in prop::collection::vec(statement_strategy(), 0..60)) {
        let mut t = EvidenceTable::new();
        for s in &xs { t.add(s); }
        let by_iter: u64 = t.iter().map(|(_, c)| c.total()).sum();
        prop_assert_eq!(by_iter, t.total_statements());
        prop_assert_eq!(t.total_statements(), xs.len() as u64);
        let (p, n) = t.polarity_totals();
        prop_assert_eq!(p + n, t.total_statements());
    }

    #[test]
    fn v2_superset_of_v4_on_copular_text(adjective in prop_oneof![
        Just("big"), Just("cute"), Just("dangerous")
    ], negated in prop::bool::ANY) {
        // On plain copular sentences the permissive V2 extracts at least
        // whatever the checked V4 extracts.
        let sentence = if negated {
            format!("Snakes are not {adjective}.")
        } else {
            format!("Snakes are {adjective}.")
        };
        let kb = kb();
        let lex = Lexicon::new();
        let doc = annotate(0, &sentence, &kb, &lex);
        let v4 = extract_sentence(&doc.sentences[0], &kb, &PatternVersion::V4.config());
        let v2 = extract_sentence(&doc.sentences[0], &kb, &PatternVersion::V2.config());
        for s in &v4 {
            prop_assert!(v2.contains(s), "v2 missing {s:?} for: {sentence}");
        }
    }
}
