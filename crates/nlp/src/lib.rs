//! Natural-language-processing substrate for the Surveyor reproduction.
//!
//! The paper consumes "an annotated Web snapshot that was preprocessed using
//! NLP tools similar to the Stanford parser and by an entity extractor that
//! identifies mentions of knowledge base entities" (§4). Neither tool is
//! available here, so this crate implements the required slice from scratch:
//!
//! - [`token`]: sentence splitting and tokenization (with contraction
//!   handling — `don't` → `do` + `n't`, exactly the token split Figure 5 of
//!   the paper displays) plus the part-of-speech inventory.
//! - [`lexicon`]: closed-class function words, open-class vocabulary, and
//!   morphology-based fallback tagging.
//! - [`parser`]: a deterministic rule-cascade dependency parser producing
//!   Stanford-typed dependency trees (`nsubj`, `cop`, `amod`, `advmod`,
//!   `conj`, `cc`, `neg`, `det`, `prep`, `pobj`, `ccomp`, `mark`, `aux`,
//!   `dobj`) for the copular / attributive / embedded-clause sentence
//!   families the corpus contains.
//! - [`tagger`]: the entity tagger — longest-match alias lookup against the
//!   knowledge base with lemmatization and context-cue disambiguation
//!   (ambiguous mentions are dropped, mirroring the paper's precision-first
//!   ambiguity test in §2).
//! - [`coref`]: sentence-local coreference between an entity mention and a
//!   predicate-nominal / appositive type noun ("Snakes are dangerous
//!   *animals*"), which the adjectival-modifier pattern requires.
//! - [`document`]: the annotated-document model and the one-call
//!   [`document::annotate`] pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coref;
pub mod document;
pub mod lexicon;
pub mod parser;
pub mod tagger;
pub mod token;

pub use document::{
    annotate, annotate_with, AnnotateScratch, AnnotatedDocument, AnnotatedSentence,
};
pub use lexicon::Lexicon;
pub use parser::{parse, DepRel, DepTree};
pub use tagger::{tag_entities, Mention};
pub use token::{split_sentences, tokenize, tokenize_with, Pos, Token, TokenizedSentence};
