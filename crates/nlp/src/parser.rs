//! Rule-cascade dependency parser producing Stanford-typed dependencies.
//!
//! The extraction patterns of paper Figure 4 are defined over typed
//! dependency trees (adjectival modifier `amod`, copular `cop`+`nsubj`,
//! adjective conjunction `conj`), and the polarity rule of Figure 5 walks
//! the path from the property token to the tree root counting negated
//! tokens. This module builds exactly those trees for the sentence families
//! the corpus contains:
//!
//! - copular clauses with adjectival or nominal predicates, optional
//!   negation, degree adverbs, and prepositional attachments
//!   ("San Francisco is not a very big city", "New York is bad for parking");
//! - attributive noun phrases ("the cute cat", "a fast and exciting sport");
//! - embedded clauses under verbs of thinking ("I don't think that snakes
//!   are never dangerous");
//! - small clauses ("I find kittens cute");
//! - plain transitive clauses ("I love the cute kitten").
//!
//! The parser is deterministic: the same token sequence always yields the
//! same tree, which keeps the extraction pipeline reproducible.

use crate::token::{Pos, TokenizedSentence};
use serde::{Deserialize, Serialize};

/// Stanford-style dependency relations (the subset the patterns need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepRel {
    /// Clause root.
    Root,
    /// Nominal subject.
    Nsubj,
    /// Copula (`is` attached to its predicate).
    Cop,
    /// Adjectival modifier of a noun.
    Amod,
    /// Adverbial modifier.
    Advmod,
    /// Determiner.
    Det,
    /// Negation modifier.
    Neg,
    /// Conjunct (second adjective in "fast and exciting").
    Conj,
    /// Coordinating conjunction token.
    Cc,
    /// Prepositional modifier (the preposition itself).
    Prep,
    /// Object of a preposition.
    Pobj,
    /// Clausal complement ("think [that snakes are dangerous]").
    Ccomp,
    /// Complementizer `that`.
    Mark,
    /// Auxiliary (`do` in "do n't think").
    Aux,
    /// Direct object.
    Dobj,
    /// Noun compound modifier ("Grizzly \[bear\]").
    Nn,
    /// Relative-clause modifier: the predicate adjective of "a city
    /// [that is big]" attaches to the noun it modifies.
    Rcmod,
    /// Punctuation.
    Punct,
    /// Unclassified attachment.
    Dep,
}

/// A typed dependency tree over a token sequence.
///
/// `heads[i]` is `None` exactly for the root; every other token has a head
/// index and relation. Construction through [`parse`] guarantees a single
/// root and acyclicity (checked by [`DepTree::validate`] in tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepTree {
    heads: Vec<Option<(usize, DepRel)>>,
    root: usize,
}

impl DepTree {
    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Index of the root token.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Head index of token `i`, `None` for the root.
    pub fn head(&self, i: usize) -> Option<usize> {
        self.heads[i].map(|(h, _)| h)
    }

    /// Relation of token `i` to its head; `Root` for the root.
    pub fn rel(&self, i: usize) -> DepRel {
        self.heads[i].map(|(_, r)| r).unwrap_or(DepRel::Root)
    }

    /// Children of token `i`, in token order.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&j| self.head(j) == Some(i))
            .collect()
    }

    /// Children of token `i` holding relation `rel`.
    pub fn children_with_rel(&self, i: usize, rel: DepRel) -> Vec<usize> {
        (0..self.len())
            .filter(|&j| self.head(j) == Some(i) && self.rel(j) == rel)
            .collect()
    }

    /// Whether token `i` has a child with relation `rel`.
    pub fn has_child_with_rel(&self, i: usize, rel: DepRel) -> bool {
        (0..self.len()).any(|j| self.head(j) == Some(i) && self.rel(j) == rel)
    }

    /// Token indexes from `i` (inclusive) up to the root (inclusive).
    pub fn path_to_root(&self, i: usize) -> Vec<usize> {
        let mut path = vec![i];
        let mut cur = i;
        while let Some(h) = self.head(cur) {
            path.push(h);
            cur = h;
            if path.len() > self.len() {
                break; // defensive: malformed tree
            }
        }
        path
    }

    /// Renders the tree as an indented outline rooted at the clause root —
    /// a terminal-friendly version of the paper's Figure 4/5 diagrams.
    pub fn render(&self, tokens: &TokenizedSentence) -> String {
        fn walk(
            tree: &DepTree,
            tokens: &TokenizedSentence,
            node: usize,
            depth: usize,
            out: &mut String,
        ) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{} ({:?})\n",
                tokens.text_of(node),
                tree.rel(node)
            ));
            for child in tree.children(node) {
                walk(tree, tokens, child, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, tokens, self.root, 0, &mut out);
        out
    }

    /// Checks structural invariants: exactly one root, every head index in
    /// range, no cycles. Returns an error description on violation.
    pub fn validate(&self) -> Result<(), String> {
        let roots = self.heads.iter().filter(|h| h.is_none()).count();
        if roots != 1 {
            return Err(format!("expected exactly one root, found {roots}"));
        }
        if self.heads[self.root].is_some() {
            return Err("root index has a head".to_owned());
        }
        for (i, h) in self.heads.iter().enumerate() {
            if let Some((head, _)) = h {
                if *head >= self.len() {
                    return Err(format!("head of {i} out of range"));
                }
            }
            let path = self.path_to_root(i);
            if path.last() != Some(&self.root) {
                return Err(format!("token {i} does not reach the root"));
            }
        }
        Ok(())
    }
}

/// One chunked item produced by the NP/AdjP pass.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Item {
    /// Noun phrase with head token index.
    Np(usize),
    /// Predicative adjective phrase with head token index.
    AdjP(usize),
    Cop(usize),
    Aux(usize),
    Neg(usize),
    Verb(usize),
    Prep(usize),
    Mark(usize),
    Adv(usize),
    Other(usize),
}

impl Item {
    fn idx(self) -> usize {
        match self {
            Item::Np(i)
            | Item::AdjP(i)
            | Item::Cop(i)
            | Item::Aux(i)
            | Item::Neg(i)
            | Item::Verb(i)
            | Item::Prep(i)
            | Item::Mark(i)
            | Item::Adv(i)
            | Item::Other(i) => i,
        }
    }
}

/// Builder that accumulates head assignments.
struct TreeBuilder {
    heads: Vec<Option<(usize, DepRel)>>,
    assigned: Vec<bool>,
}

impl TreeBuilder {
    fn new(n: usize) -> Self {
        Self {
            heads: vec![None; n],
            assigned: vec![false; n],
        }
    }

    fn attach(&mut self, child: usize, head: usize, rel: DepRel) {
        debug_assert!(child != head, "self-loop at {child}");
        if !self.assigned[child] {
            self.heads[child] = Some((head, rel));
            self.assigned[child] = true;
        }
    }

    fn mark_root(&mut self, i: usize) {
        self.assigned[i] = true;
        self.heads[i] = None;
    }

    fn finish(mut self, root: usize, tokens: &TokenizedSentence) -> DepTree {
        // Attach any stragglers to the root.
        for (i, head) in self.heads.iter_mut().enumerate() {
            if !self.assigned[i] {
                let rel = if tokens[i].pos == Pos::Punct {
                    DepRel::Punct
                } else {
                    DepRel::Dep
                };
                *head = Some((root, rel));
                self.assigned[i] = true;
            }
        }
        DepTree {
            heads: self.heads,
            root,
        }
    }
}

/// Parses a tagged token sequence into a dependency tree.
///
/// Returns `None` for an empty sequence. Sentences outside the recognized
/// families degrade gracefully: the parser picks the first content token as
/// root and attaches the rest flat, which simply yields no extractions
/// downstream (precision-first, like the paper's restrictive patterns).
pub fn parse(tokens: &TokenizedSentence) -> Option<DepTree> {
    if tokens.is_empty() {
        return None;
    }
    let mut b = TreeBuilder::new(tokens.len());
    let items = chunk(tokens, 0, tokens.len(), &mut b);
    let root = assemble(tokens, &items, &mut b, true);
    let tree = b.finish(root, tokens);
    debug_assert!(tree.validate().is_ok(), "parser produced invalid tree");
    Some(tree)
}

/// Chunks `tokens[lo..hi]` into NPs, AdjPs, and singleton items, recording
/// intra-phrase edges (det / amod / advmod / conj / cc / nn) on the builder.
fn chunk(tokens: &TokenizedSentence, lo: usize, hi: usize, b: &mut TreeBuilder) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = lo;
    while i < hi {
        match tokens[i].pos {
            Pos::Determiner | Pos::Adjective | Pos::Adverb | Pos::Noun | Pos::ProperNoun => {
                let (item, next) = chunk_phrase(tokens, i, hi, b);
                match item {
                    Some(it) => {
                        items.push(it);
                        i = next;
                    }
                    None => {
                        // Lone adverb or determiner that formed no phrase.
                        if tokens[i].pos == Pos::Adverb {
                            items.push(Item::Adv(i));
                        } else {
                            items.push(Item::Other(i));
                        }
                        i += 1;
                    }
                }
            }
            Pos::Pronoun => {
                items.push(Item::Np(i));
                i += 1;
            }
            Pos::Copula => {
                items.push(Item::Cop(i));
                i += 1;
            }
            Pos::Aux => {
                items.push(Item::Aux(i));
                i += 1;
            }
            Pos::Negation => {
                items.push(Item::Neg(i));
                i += 1;
            }
            Pos::Verb => {
                items.push(Item::Verb(i));
                i += 1;
            }
            Pos::Preposition => {
                items.push(Item::Prep(i));
                i += 1;
            }
            Pos::Complementizer => {
                items.push(Item::Mark(i));
                i += 1;
            }
            _ => {
                items.push(Item::Other(i));
                i += 1;
            }
        }
    }
    items
}

/// Attempts to chunk a phrase starting at `i`:
/// `Det? (Adv* Adj (Cc Adv* Adj)*)* Nominal*`.
///
/// With trailing nominals it is an NP (head = last nominal, adjectives
/// attach as `amod`); without nominals but with adjectives it is a
/// predicative AdjP (head = first adjective, later conjuncts attach as
/// `conj`). Returns `(None, _)` when neither forms.
fn chunk_phrase(
    tokens: &TokenizedSentence,
    start: usize,
    hi: usize,
    b: &mut TreeBuilder,
) -> (Option<Item>, usize) {
    let mut i = start;
    let det = if tokens[i].pos == Pos::Determiner {
        i += 1;
        Some(start)
    } else {
        None
    };

    // Adjective groups: each group is (adjective idx, adverb idxs).
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut ccs: Vec<usize> = Vec::new();
    loop {
        let mut j = i;
        let mut advs = Vec::new();
        while j < hi && tokens[j].pos == Pos::Adverb {
            advs.push(j);
            j += 1;
        }
        if j < hi && tokens[j].pos == Pos::Adjective {
            groups.push((j, advs));
            i = j + 1;
            // Conjunction chain: "fast and exciting", "fast, cheap and fun".
            while i < hi
                && (tokens[i].pos == Pos::Conjunction
                    || (tokens[i].pos == Pos::Punct && tokens.text_of(i) == ","))
            {
                let mut k = i + 1;
                let mut advs2 = Vec::new();
                while k < hi && tokens[k].pos == Pos::Adverb {
                    advs2.push(k);
                    k += 1;
                }
                if k < hi && tokens[k].pos == Pos::Adjective {
                    if tokens[i].pos == Pos::Conjunction {
                        ccs.push(i);
                    } else {
                        // Comma in a list: attach as punct later.
                    }
                    groups.push((k, advs2));
                    i = k + 1;
                } else {
                    break;
                }
            }
        } else {
            break;
        }
    }

    // Nominal run.
    let nominal_start = i;
    while i < hi && matches!(tokens[i].pos, Pos::Noun | Pos::ProperNoun) {
        i += 1;
    }
    let nominal_end = i;

    if nominal_end > nominal_start {
        // NP: head is the last nominal.
        let head = nominal_end - 1;
        if let Some(d) = det {
            b.attach(d, head, DepRel::Det);
        }
        for n in nominal_start..head {
            b.attach(n, head, DepRel::Nn);
        }
        if let Some(&(first_adj, _)) = groups.first() {
            b.attach(first_adj, head, DepRel::Amod);
            for &(adj, _) in &groups[1..] {
                b.attach(adj, first_adj, DepRel::Conj);
            }
            for &cc in &ccs {
                b.attach(cc, first_adj, DepRel::Cc);
            }
            for (adj, advs) in &groups {
                for &a in advs {
                    b.attach(a, *adj, DepRel::Advmod);
                }
            }
        }
        (Some(Item::Np(head)), nominal_end)
    } else if let Some(&(first_adj, _)) = groups.first() {
        // Predicative AdjP.
        for &(adj, _) in &groups[1..] {
            b.attach(adj, first_adj, DepRel::Conj);
        }
        for &cc in &ccs {
            b.attach(cc, first_adj, DepRel::Cc);
        }
        for (adj, advs) in &groups {
            for &a in advs {
                b.attach(a, *adj, DepRel::Advmod);
            }
        }
        if let Some(d) = det {
            b.attach(d, first_adj, DepRel::Dep);
        }
        (Some(Item::AdjP(first_adj)), i)
    } else {
        (None, start)
    }
}

/// Assembles chunked items into a clause; returns the clause root index.
///
/// `is_matrix` distinguishes the top-level call (which must pick some root
/// even for fragments) from embedded-clause recursion.
fn assemble(
    tokens: &TokenizedSentence,
    items: &[Item],
    b: &mut TreeBuilder,
    is_matrix: bool,
) -> usize {
    // Locate the first predicate-forming element: a copula or verb.
    let pred_pos = items
        .iter()
        .position(|it| matches!(it, Item::Cop(_) | Item::Verb(_)));

    let Some(pi) = pred_pos else {
        // No predicate: fragment. Root = first NP/AdjP head, else first token.
        let root = items
            .iter()
            .find_map(|it| match it {
                Item::Np(h) | Item::AdjP(h) => Some(*h),
                _ => None,
            })
            .unwrap_or_else(|| items.first().map(|it| it.idx()).unwrap_or(0));
        b.mark_root(root);
        attach_leftovers(tokens, items, root, b, &[root]);
        return root;
    };

    // Subject: last NP before the predicate. PPs between subject and
    // predicate attach to the subject head ("the weather in Chicago is…").
    let mut subj: Option<usize> = None;
    let mut k = 0;
    while k < pi {
        match items[k] {
            Item::Np(h) => subj = Some(h),
            Item::Prep(p) => {
                if let (Some(s), Some(Item::Np(obj))) = (subj, items.get(k + 1)) {
                    b.attach(p, s, DepRel::Prep);
                    b.attach(*obj, p, DepRel::Pobj);
                    k += 1;
                }
            }
            _ => {}
        }
        k += 1;
    }

    match items[pi] {
        Item::Cop(cop) => assemble_copular(tokens, items, pi, cop, subj, b, is_matrix),
        Item::Verb(v) => assemble_verbal(tokens, items, pi, v, subj, b, is_matrix),
        _ => unreachable!("pred_pos points at a copula or verb"), // lint:allow(panic-reachability): find_predicate only returns Cop/Verb positions
    }
}

/// Copular clause: `[NP] cop [neg] (AdjP | NP) PP*`.
#[allow(clippy::too_many_arguments)]
fn assemble_copular(
    tokens: &TokenizedSentence,
    items: &[Item],
    pi: usize,
    cop: usize,
    mut subj: Option<usize>,
    b: &mut TreeBuilder,
    _is_matrix: bool,
) -> usize {
    // Gather negations and the predicate after the copula.
    let mut negs = Vec::new();
    let mut pred: Option<usize> = None;
    let mut rest_start = items.len();
    let mut j = pi + 1;
    while j < items.len() {
        match items[j] {
            Item::Neg(n) => negs.push(n),
            Item::AdjP(h) | Item::Np(h) => {
                // Question form "Are snakes dangerous": the NP right after
                // the copula is the subject if we have none yet and an
                // AdjP/NP follows.
                if subj.is_none()
                    && matches!(items[j], Item::Np(_))
                    && items[j + 1..]
                        .iter()
                        .any(|it| matches!(it, Item::AdjP(_) | Item::Np(_)))
                {
                    subj = Some(h);
                } else {
                    pred = Some(h);
                    rest_start = j + 1;
                    break;
                }
            }
            // Lone adverbs between copula and predicate ("is clearly
            // big") attach later as leftovers with an Advmod relation.
            Item::Adv(_) => {}
            Item::Verb(v)
                if crate::lexicon::is_small_clause_verb_word(tokens.lower_of(v))
                    && matches!(items.get(j + 1), Some(Item::AdjP(_))) =>
            {
                // Passive report: "X is considered dangerous". The verb
                // heads the clause; the adjective is its small-clause
                // complement with the subject as its own nsubj — the same
                // shape as "I find X dangerous", so only the extended verb
                // class extracts it.
                let Some(Item::AdjP(adj)) = items.get(j + 1).copied() else {
                    unreachable!("guarded by matches!"); // lint:allow(panic-reachability): match guard checked AdjP at j+1
                };
                b.mark_root(v);
                b.attach(cop, v, DepRel::Aux);
                b.attach(adj, v, DepRel::Ccomp);
                if let Some(sb) = subj {
                    b.attach(sb, adj, DepRel::Nsubj);
                }
                for n in negs {
                    b.attach(n, v, DepRel::Neg);
                }
                attach_postfield(tokens, items, j + 2, adj, b);
                attach_leftovers(tokens, items, v, b, &[v]);
                return v;
            }
            _ => {
                rest_start = j;
                break;
            }
        }
        j += 1;
    }

    let root = match pred {
        Some(p) => p,
        None => {
            // "X is." or trailing copula: degrade to subject or copula root.
            let r = subj.unwrap_or(cop);
            b.mark_root(r);
            attach_leftovers(tokens, items, r, b, &[r]);
            return r;
        }
    };

    b.mark_root(root);
    b.attach(cop, root, DepRel::Cop);
    if let Some(s) = subj {
        if s != root {
            b.attach(s, root, DepRel::Nsubj);
        }
    }
    for n in negs {
        b.attach(n, root, DepRel::Neg);
    }
    // Relative clause on a nominal predicate: "X is a city [that is big]".
    // The embedded adjective modifies the predicate noun (rcmod), which
    // corefers with the subject — extraction treats it like amod.
    let rest_start = if let (Some(Item::Mark(mark)), Some(Item::Cop(rel_cop))) =
        (items.get(rest_start), items.get(rest_start + 1))
    {
        let mut k = rest_start + 2;
        let mut rel_negs = Vec::new();
        while let Some(Item::Neg(n)) = items.get(k) {
            rel_negs.push(*n);
            k += 1;
        }
        if let Some(Item::AdjP(adj)) = items.get(k).copied() {
            b.attach(adj, root, DepRel::Rcmod);
            b.attach(*mark, adj, DepRel::Mark);
            b.attach(*rel_cop, adj, DepRel::Cop);
            for n in rel_negs {
                b.attach(n, adj, DepRel::Neg);
            }
            k + 1
        } else {
            rest_start
        }
    } else {
        rest_start
    };
    attach_postfield(tokens, items, rest_start, root, b);
    attach_leftovers(tokens, items, root, b, &[root]);
    root
}

/// Verbal clause: embedding verbs take `ccomp`, small-clause verbs take
/// `NP + AdjP`, other verbs take `dobj`.
#[allow(clippy::too_many_arguments)]
fn assemble_verbal(
    tokens: &TokenizedSentence,
    items: &[Item],
    pi: usize,
    verb: usize,
    subj: Option<usize>,
    b: &mut TreeBuilder,
    _is_matrix: bool,
) -> usize {
    b.mark_root(verb);
    if let Some(s) = subj {
        b.attach(s, verb, DepRel::Nsubj);
    }
    // Auxiliaries and negations between subject and verb.
    for it in &items[..pi] {
        match *it {
            Item::Aux(a) => b.attach(a, verb, DepRel::Aux),
            Item::Neg(n) => b.attach(n, verb, DepRel::Neg),
            _ => {}
        }
    }

    let lower = tokens.lower_of(verb);
    let is_embedding = crate::lexicon::is_embedding_verb_word(lower);
    let is_small_clause = crate::lexicon::is_small_clause_verb_word(lower);

    let after = &items[pi + 1..];
    if is_embedding && !after.is_empty() {
        // Optional complementizer, then an embedded clause.
        let (mark, clause_items) = match after[0] {
            Item::Mark(m) => (Some(m), &after[1..]),
            _ => (None, after),
        };
        if clause_items.iter().any(|it| {
            matches!(
                it,
                Item::Cop(_) | Item::Verb(_) | Item::AdjP(_) | Item::Np(_)
            )
        }) {
            let sub_root = assemble_embedded(tokens, clause_items, b);
            b.attach(sub_root, verb, DepRel::Ccomp);
            if let Some(m) = mark {
                b.attach(m, sub_root, DepRel::Mark);
            }
        }
    } else if is_small_clause {
        // "I find kittens cute": NP + AdjP. The adjective heads a small
        // clause (ccomp) with the NP as its subject, so the adjectival-
        // complement pattern can see nsubj(cute, kittens).
        let mut np: Option<usize> = None;
        for it in after {
            match *it {
                Item::Np(h) if np.is_none() => np = Some(h),
                Item::AdjP(adj) => {
                    b.attach(adj, verb, DepRel::Ccomp);
                    if let Some(n) = np.take() {
                        b.attach(n, adj, DepRel::Nsubj);
                    }
                    break;
                }
                Item::Neg(n) => b.attach(n, verb, DepRel::Neg),
                _ => break,
            }
        }
        if let Some(n) = np {
            b.attach(n, verb, DepRel::Dobj);
        }
    } else {
        // Plain transitive: first NP after the verb is the object; any
        // negations directly after the verb attach to it.
        for it in after {
            match *it {
                Item::Np(h) => {
                    b.attach(h, verb, DepRel::Dobj);
                    break;
                }
                Item::Neg(n) => b.attach(n, verb, DepRel::Neg),
                _ => break,
            }
        }
    }
    attach_postfield_from(tokens, after, verb, b);
    attach_leftovers(tokens, items, verb, b, &[verb]);
    verb
}

/// Assembles an embedded clause from pre-chunked items; falls back to the
/// first phrase head when the clause lacks a predicate.
fn assemble_embedded(tokens: &TokenizedSentence, items: &[Item], b: &mut TreeBuilder) -> usize {
    // Temporarily reuse `assemble`, then demote the root marking: the
    // embedded root will be attached to the matrix verb by the caller.
    let root = assemble(tokens, items, b, false);
    // Un-mark root status so the caller can attach it.
    b.assigned[root] = false;
    b.heads[root] = None;
    root
}

/// Attaches post-predicate prepositional phrases: `prep(pred, P)` +
/// `pobj(P, NP)` — the constriction sub-trees the intrinsicness filter
/// looks for ("bad **for parking**").
fn attach_postfield(
    tokens: &TokenizedSentence,
    items: &[Item],
    from: usize,
    pred: usize,
    b: &mut TreeBuilder,
) {
    attach_postfield_from(tokens, &items[from.min(items.len())..], pred, b);
}

fn attach_postfield_from(
    _tokens: &TokenizedSentence,
    items: &[Item],
    pred: usize,
    b: &mut TreeBuilder,
) {
    let mut j = 0;
    while j < items.len() {
        if let Item::Prep(p) = items[j] {
            b.attach(p, pred, DepRel::Prep);
            if let Some(Item::Np(obj)) = items.get(j + 1) {
                b.attach(*obj, p, DepRel::Pobj);
                j += 1;
            }
        }
        j += 1;
    }
}

/// Attaches remaining unassigned item heads flat under the root.
fn attach_leftovers(
    tokens: &TokenizedSentence,
    items: &[Item],
    root: usize,
    b: &mut TreeBuilder,
    skip: &[usize],
) {
    for it in items {
        let i = it.idx();
        if skip.contains(&i) || b.assigned[i] {
            continue;
        }
        let rel = match it {
            Item::Adv(_) => DepRel::Advmod,
            Item::Neg(_) => DepRel::Neg,
            Item::Np(_) | Item::AdjP(_) => DepRel::Dep,
            _ => {
                if tokens[i].pos == Pos::Punct {
                    DepRel::Punct
                } else {
                    DepRel::Dep
                }
            }
        };
        b.attach(i, root, rel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;
    use crate::token::tokenize;

    fn parse_str(s: &str) -> (TokenizedSentence, DepTree) {
        let lex = Lexicon::new();
        let mut toks = tokenize(s);
        lex.tag(&mut toks);
        let tree = parse(&toks).expect("non-empty sentence");
        tree.validate().expect("valid tree");
        (toks, tree)
    }

    fn idx(tokens: &TokenizedSentence, word: &str) -> usize {
        (0..tokens.len())
            .position(|i| tokens.lower_of(i) == word.to_lowercase())
            .unwrap_or_else(|| panic!("token {word} not found"))
    }

    #[test]
    fn copular_adjective_predicate() {
        let (toks, tree) = parse_str("Chicago is very big");
        let big = idx(&toks, "big");
        assert_eq!(tree.root(), big);
        assert_eq!(tree.rel(idx(&toks, "Chicago")), DepRel::Nsubj);
        assert_eq!(tree.head(idx(&toks, "Chicago")), Some(big));
        assert_eq!(tree.rel(idx(&toks, "is")), DepRel::Cop);
        assert_eq!(tree.rel(idx(&toks, "very")), DepRel::Advmod);
        assert_eq!(tree.head(idx(&toks, "very")), Some(big));
    }

    #[test]
    fn copular_nominal_predicate_with_amod() {
        let (toks, tree) = parse_str("San Francisco is not a big city");
        let city = idx(&toks, "city");
        let big = idx(&toks, "big");
        assert_eq!(tree.root(), city);
        assert_eq!(tree.rel(big), DepRel::Amod);
        assert_eq!(tree.head(big), Some(city));
        assert_eq!(tree.rel(idx(&toks, "not")), DepRel::Neg);
        assert_eq!(tree.head(idx(&toks, "not")), Some(city));
        // "San" is a compound modifier of "Francisco".
        assert_eq!(tree.rel(idx(&toks, "San")), DepRel::Nn);
        assert_eq!(tree.rel(idx(&toks, "Francisco")), DepRel::Nsubj);
        assert_eq!(tree.rel(idx(&toks, "a")), DepRel::Det);
    }

    #[test]
    fn predicate_nominal_coref_structure() {
        // Table 1 row 1: "Snakes are dangerous animals".
        let (toks, tree) = parse_str("Snakes are dangerous animals");
        let animals = idx(&toks, "animals");
        assert_eq!(tree.root(), animals);
        assert_eq!(tree.rel(idx(&toks, "dangerous")), DepRel::Amod);
        assert_eq!(tree.rel(idx(&toks, "snakes")), DepRel::Nsubj);
        assert_eq!(tree.rel(idx(&toks, "are")), DepRel::Cop);
    }

    #[test]
    fn adjective_conjunction() {
        // Table 1 row 3: "Soccer is a fast and exciting sport".
        let (toks, tree) = parse_str("Soccer is a fast and exciting sport");
        let sport = idx(&toks, "sport");
        let fast = idx(&toks, "fast");
        let exciting = idx(&toks, "exciting");
        assert_eq!(tree.root(), sport);
        assert_eq!(tree.rel(fast), DepRel::Amod);
        assert_eq!(tree.head(exciting), Some(fast));
        assert_eq!(tree.rel(exciting), DepRel::Conj);
        assert_eq!(tree.rel(idx(&toks, "and")), DepRel::Cc);
    }

    #[test]
    fn predicative_conjunction() {
        let (toks, tree) = parse_str("Soccer is fast and exciting");
        let fast = idx(&toks, "fast");
        assert_eq!(tree.root(), fast);
        assert_eq!(tree.rel(idx(&toks, "exciting")), DepRel::Conj);
        assert_eq!(tree.rel(idx(&toks, "Soccer")), DepRel::Nsubj);
    }

    #[test]
    fn figure5_embedded_double_negation() {
        let (toks, tree) = parse_str("I don't think that snakes are never dangerous");
        let think = idx(&toks, "think");
        let dangerous = idx(&toks, "dangerous");
        assert_eq!(tree.root(), think);
        assert_eq!(tree.rel(idx(&toks, "I")), DepRel::Nsubj);
        assert_eq!(tree.rel(idx(&toks, "do")), DepRel::Aux);
        assert_eq!(tree.rel(idx(&toks, "n't")), DepRel::Neg);
        assert_eq!(tree.head(idx(&toks, "n't")), Some(think));
        assert_eq!(tree.rel(dangerous), DepRel::Ccomp);
        assert_eq!(tree.head(dangerous), Some(think));
        assert_eq!(tree.rel(idx(&toks, "never")), DepRel::Neg);
        assert_eq!(tree.head(idx(&toks, "never")), Some(dangerous));
        assert_eq!(tree.rel(idx(&toks, "that")), DepRel::Mark);
        assert_eq!(tree.rel(idx(&toks, "snakes")), DepRel::Nsubj);
        assert_eq!(tree.head(idx(&toks, "snakes")), Some(dangerous));
        // The polarity path of Figure 5: dangerous -> think (root).
        assert_eq!(tree.path_to_root(dangerous), vec![dangerous, think]);
    }

    #[test]
    fn small_clause_find() {
        let (toks, tree) = parse_str("I find kittens cute");
        let cute = idx(&toks, "cute");
        let find = idx(&toks, "find");
        assert_eq!(tree.root(), find);
        assert_eq!(tree.rel(cute), DepRel::Ccomp);
        assert_eq!(tree.rel(idx(&toks, "kittens")), DepRel::Nsubj);
        assert_eq!(tree.head(idx(&toks, "kittens")), Some(cute));
    }

    #[test]
    fn transitive_clause_with_attributive_np() {
        let (toks, tree) = parse_str("I love the cute kitten");
        let love = idx(&toks, "love");
        let kitten = idx(&toks, "kitten");
        assert_eq!(tree.root(), love);
        assert_eq!(tree.rel(kitten), DepRel::Dobj);
        assert_eq!(tree.rel(idx(&toks, "cute")), DepRel::Amod);
        assert_eq!(tree.head(idx(&toks, "cute")), Some(kitten));
    }

    #[test]
    fn prepositional_constriction_on_predicate() {
        let (toks, tree) = parse_str("New York is bad for parking");
        let bad = idx(&toks, "bad");
        let for_ = idx(&toks, "for");
        assert_eq!(tree.root(), bad);
        assert_eq!(tree.rel(for_), DepRel::Prep);
        assert_eq!(tree.head(for_), Some(bad));
        assert_eq!(tree.rel(idx(&toks, "parking")), DepRel::Pobj);
        assert_eq!(tree.head(idx(&toks, "parking")), Some(for_));
    }

    #[test]
    fn subject_attached_pp() {
        let (toks, tree) = parse_str("The weather in Chicago is bad");
        let bad = idx(&toks, "bad");
        let weather = idx(&toks, "weather");
        assert_eq!(tree.root(), bad);
        assert_eq!(tree.rel(weather), DepRel::Nsubj);
        assert_eq!(tree.rel(idx(&toks, "in")), DepRel::Prep);
        assert_eq!(tree.head(idx(&toks, "in")), Some(weather));
        assert_eq!(tree.rel(idx(&toks, "Chicago")), DepRel::Pobj);
    }

    #[test]
    fn attributive_amod_on_subject() {
        // "southern France is warm" — amod(France, southern).
        let (toks, tree) = parse_str("southern France is warm");
        let warm = idx(&toks, "warm");
        let france = idx(&toks, "France");
        assert_eq!(tree.root(), warm);
        assert_eq!(tree.rel(idx(&toks, "southern")), DepRel::Amod);
        assert_eq!(tree.head(idx(&toks, "southern")), Some(france));
        assert_eq!(tree.rel(france), DepRel::Nsubj);
    }

    #[test]
    fn fragment_np_root() {
        let (toks, tree) = parse_str("the cute cat");
        assert_eq!(tree.root(), idx(&toks, "cat"));
        assert_eq!(tree.rel(idx(&toks, "cute")), DepRel::Amod);
    }

    #[test]
    fn question_inverted_copula() {
        let (toks, tree) = parse_str("Are snakes dangerous");
        let dangerous = idx(&toks, "dangerous");
        assert_eq!(tree.root(), dangerous);
        assert_eq!(tree.rel(idx(&toks, "snakes")), DepRel::Nsubj);
        assert_eq!(tree.rel(idx(&toks, "are")), DepRel::Cop);
    }

    #[test]
    fn every_token_reaches_root_on_noise() {
        for s in [
            "and or but",
            "for in of",
            ", , ,",
            "big",
            "the",
            "is",
            "I think",
            "very really quite",
            "Chicago Chicago Chicago is is big big",
        ] {
            let lex = Lexicon::new();
            let mut toks = tokenize(s);
            lex.tag(&mut toks);
            if toks.is_empty() {
                continue;
            }
            let tree = parse(&toks).unwrap();
            tree.validate().unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn relative_clause_on_predicate_nominal() {
        let (toks, tree) = parse_str("Chicago is a city that is very big");
        let city = idx(&toks, "city");
        let big = idx(&toks, "big");
        assert_eq!(tree.root(), city);
        assert_eq!(tree.rel(big), DepRel::Rcmod);
        assert_eq!(tree.head(big), Some(city));
        assert_eq!(tree.rel(idx(&toks, "that")), DepRel::Mark);
        assert_eq!(tree.rel(idx(&toks, "very")), DepRel::Advmod);
        assert_eq!(tree.head(idx(&toks, "very")), Some(big));
        // Both copulas attach where they belong.
        assert!(tree.has_child_with_rel(city, DepRel::Cop));
        assert!(tree.has_child_with_rel(big, DepRel::Cop));
    }

    #[test]
    fn negated_relative_clause() {
        let (toks, tree) = parse_str("Chicago is a city that is not big");
        let big = idx(&toks, "big");
        assert_eq!(tree.rel(big), DepRel::Rcmod);
        assert!(tree.has_child_with_rel(big, DepRel::Neg));
    }

    #[test]
    fn passive_report_small_clause() {
        let (toks, tree) = parse_str("Chicago is considered big");
        let considered = idx(&toks, "considered");
        let big = idx(&toks, "big");
        assert_eq!(tree.root(), considered);
        assert_eq!(tree.rel(big), DepRel::Ccomp);
        assert_eq!(tree.rel(idx(&toks, "Chicago")), DepRel::Nsubj);
        assert_eq!(tree.head(idx(&toks, "Chicago")), Some(big));
        assert_eq!(tree.rel(idx(&toks, "is")), DepRel::Aux);
    }

    #[test]
    fn negated_passive_report() {
        let (toks, tree) = parse_str("Chicago is not considered big");
        let considered = idx(&toks, "considered");
        assert_eq!(tree.root(), considered);
        assert!(tree.has_child_with_rel(considered, DepRel::Neg));
    }

    #[test]
    fn empty_input_is_none() {
        assert!(parse(&tokenize("")).is_none());
    }

    #[test]
    fn render_outline_covers_every_token() {
        let (toks, tree) = parse_str("I don't think that snakes are never dangerous");
        let rendered = tree.render(&toks);
        for i in 0..toks.len() {
            assert!(
                rendered.contains(toks.text_of(i)),
                "missing {:?}",
                toks.text_of(i)
            );
        }
        // Root first, at zero indentation.
        assert!(rendered.starts_with("think (Root)"));
    }

    #[test]
    fn children_and_path_utilities() {
        let (toks, tree) = parse_str("Chicago is not big");
        let big = idx(&toks, "big");
        let children = tree.children(big);
        assert!(children.contains(&idx(&toks, "Chicago")));
        assert!(children.contains(&idx(&toks, "is")));
        assert!(children.contains(&idx(&toks, "not")));
        assert!(tree.has_child_with_rel(big, DepRel::Neg));
        assert_eq!(
            tree.path_to_root(idx(&toks, "Chicago")),
            vec![idx(&toks, "Chicago"), big]
        );
    }
}
