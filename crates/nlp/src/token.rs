//! Sentence splitting, tokenization, and the part-of-speech inventory.
//!
//! Tokens are **spans**, not strings: each [`Token`] is a `Copy` record of
//! byte ranges into its sentence's original text and into one shared
//! lowercase buffer owned by the [`TokenizedSentence`]. Tokenizing a
//! sentence therefore performs a fixed number of allocations (the two
//! buffers and the token vector) regardless of token count — the per-token
//! `String` pair the annotation hot path used to allocate is gone.

use serde::{Deserialize, Serialize};

/// Part-of-speech tags; a compact inventory sufficient for the dependency
/// patterns of paper Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pos {
    /// Common noun (`city`, `animals`).
    Noun,
    /// Proper noun (`Chicago`, `San`).
    ProperNoun,
    /// Adjective (`big`, `cute`).
    Adjective,
    /// Adverb (`very`, `densely`).
    Adverb,
    /// Lexical verb (`think`, `love`).
    Verb,
    /// Copular verb (`is`, `are`, `seems`).
    Copula,
    /// Auxiliary (`do`, `does`, `did`).
    Aux,
    /// Determiner (`a`, `the`).
    Determiner,
    /// Preposition (`for`, `in`).
    Preposition,
    /// Personal pronoun (`I`, `they`).
    Pronoun,
    /// Negation particle (`not`, `n't`, `never`).
    Negation,
    /// Coordinating conjunction (`and`, `or`).
    Conjunction,
    /// Complementizer (`that` introducing a clause).
    Complementizer,
    /// Punctuation.
    Punct,
    /// Anything else.
    Other,
}

impl Pos {
    /// Whether the tag is nominal (common or proper noun, pronoun).
    pub fn is_nominal(self) -> bool {
        matches!(self, Pos::Noun | Pos::ProperNoun | Pos::Pronoun)
    }
}

/// A span token: byte ranges into the sentence's text and shared lowercase
/// buffer (for provenance and highlighting), plus the POS tag. Surface and
/// lowercase forms are read through the owning [`TokenizedSentence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Byte offset of the first character within the sentence.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// Byte range of the lowercase form in the sentence's lower buffer.
    lower_start: u32,
    lower_end: u32,
    /// Part-of-speech tag (assigned by the lexicon; `Other` until tagged).
    pub pos: Pos,
}

impl Token {
    /// The byte span within the source sentence.
    pub fn span(&self) -> (usize, usize) {
        (self.start as usize, self.end as usize)
    }
}

/// A tokenized sentence: the original text, the shared lowercase buffer,
/// and the span tokens indexing both.
///
/// Derefs to `[Token]`, so positional access (`sentence[i].pos`,
/// `sentence.len()`, iteration) works as on a plain token slice; textual
/// access goes through [`text_of`](Self::text_of) /
/// [`lower_of`](Self::lower_of).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenizedSentence {
    text: String,
    /// Lowercased token forms joined by single spaces, so any token range
    /// is one contiguous slice (see [`Self::window_lower`]).
    lower: String,
    pub(crate) tokens: Vec<Token>,
}

impl TokenizedSentence {
    /// The sentence as written.
    pub fn sentence(&self) -> &str {
        &self.text
    }

    /// Surface form of token `i` as written.
    pub fn text_of(&self, i: usize) -> &str {
        let t = &self.tokens[i];
        &self.text[t.start as usize..t.end as usize]
    }

    /// Lowercase form of token `i`.
    pub fn lower_of(&self, i: usize) -> &str {
        let t = &self.tokens[i];
        &self.lower[t.lower_start as usize..t.lower_end as usize]
    }

    /// The lowercase forms of tokens `start..end` joined by single spaces —
    /// a contiguous slice of the shared buffer, so building the window
    /// allocates nothing. Empty ranges yield `""`.
    pub fn window_lower(&self, start: usize, end: usize) -> &str {
        if start >= end {
            return "";
        }
        let from = self.tokens[start].lower_start as usize;
        let to = self.tokens[end - 1].lower_end as usize;
        &self.lower[from..to]
    }

    /// Whether token `i`'s surface form starts with an uppercase letter.
    pub fn is_capitalized(&self, i: usize) -> bool {
        self.text_of(i)
            .chars()
            .next()
            .is_some_and(|c| c.is_uppercase())
    }

    /// Appends a token covering `start..end` of the sentence text, extending
    /// the lowercase buffer without intermediate allocations.
    fn push_span(&mut self, start: usize, end: usize) {
        let lower_start = self.lower.len();
        for ch in self.text[start..end].chars() {
            for lc in ch.to_lowercase() {
                self.lower.push(lc);
            }
        }
        // Span offsets are stored as u32 to keep `Token` at 20 bytes; a
        // single sentence longer than 4 GiB cannot occur (documents are
        // split into sentences far below that).
        let offset = |n: usize| u32::try_from(n).expect("sentence fits in u32"); // lint:allow(no-panic-in-lib): a sentence cannot exceed 4 GiB
        self.tokens.push(Token {
            start: offset(start),
            end: offset(end),
            lower_start: offset(lower_start),
            lower_end: offset(self.lower.len()),
            pos: Pos::Other,
        });
        self.lower.push(' ');
    }
}

impl std::ops::Deref for TokenizedSentence {
    type Target = [Token];

    fn deref(&self) -> &[Token] {
        &self.tokens
    }
}

/// Splits raw text into sentences on `.`, `!`, `?` boundaries.
///
/// Returns sentence strings without the terminator. Empty sentences are
/// dropped. Abbreviation handling is deliberately absent: the corpus
/// generator never emits abbreviations with periods.
pub fn split_sentences(text: &str) -> Vec<&str> {
    let mut bounds = Vec::new();
    split_sentence_bounds(text, &mut bounds);
    bounds.iter().map(|&(from, to)| &text[from..to]).collect()
}

/// Appends the trimmed byte range of each sentence in `text` to `out`.
///
/// The allocation-free core of [`split_sentences`]: callers that annotate
/// many documents reuse one bounds vector across all of them (see
/// [`crate::document::AnnotateScratch`]).
pub fn split_sentence_bounds(text: &str, out: &mut Vec<(usize, usize)>) {
    let mut push_trimmed = |from: usize, to: usize| {
        let s = &text[from..to];
        let lead = s.len() - s.trim_start().len();
        let trimmed_len = s.trim_end().len();
        if trimmed_len > lead {
            out.push((from + lead, from + trimmed_len));
        }
    };
    let mut start = 0;
    for (i, ch) in text.char_indices() {
        if matches!(ch, '.' | '!' | '?') {
            push_trimmed(start, i);
            start = i + ch.len_utf8();
        }
    }
    push_trimmed(start, text.len());
}

/// Tokenizes one sentence.
///
/// Splits on whitespace, separates trailing/leading punctuation, and splits
/// negative contractions the way the Stanford tokenizer does (`don't` →
/// `do` + `n't`, `isn't` → `is` + `n't`), which the negation detector of
/// paper Figure 5 relies on.
pub fn tokenize(sentence: &str) -> TokenizedSentence {
    tokenize_with(&mut Vec::new(), sentence)
}

/// [`tokenize`] with a caller-owned scratch vector for the
/// trailing-punctuation queue.
///
/// The queue used to be allocated once per word; a caller that tokenizes
/// many sentences passes the same vector every time and the per-word
/// allocation disappears entirely. The vector is cleared on entry.
pub fn tokenize_with(trailing: &mut Vec<(usize, usize)>, sentence: &str) -> TokenizedSentence {
    let mut out = TokenizedSentence {
        text: sentence.to_owned(),
        lower: String::with_capacity(sentence.len() + 8),
        tokens: Vec::new(),
    };
    let mut cursor = 0usize;
    for raw in sentence.split_whitespace() {
        // Locate this whitespace-delimited chunk in the sentence to keep
        // byte spans exact.
        let base = sentence[cursor..]
            .find(raw)
            .map(|i| cursor + i)
            .unwrap_or(cursor);
        cursor = base + raw.len();

        // Peel leading punctuation.
        let mut word = raw;
        let mut offset = base;
        while let Some(first) = word.chars().next() {
            if first.is_alphanumeric() || first == '\'' {
                break;
            }
            let width = first.len_utf8();
            out.push_span(offset, offset + width);
            word = &word[width..];
            offset += width;
        }
        // Peel trailing punctuation into a queue emitted after the word.
        trailing.clear();
        while let Some(last) = word.chars().last() {
            if last.is_alphanumeric() {
                break;
            }
            // Keep apostrophes that are part of a contraction.
            if last == '\'' && word.len() >= 2 {
                break;
            }
            let width = last.len_utf8();
            let at = offset + word.len() - width;
            trailing.push((at, at + width));
            word = &word[..word.len() - width];
        }
        if !word.is_empty() {
            push_word(&mut out, word, offset);
        }
        for &(from, to) in trailing.iter().rev() {
            out.push_span(from, to);
        }
    }
    out
}

/// Pushes a word starting at byte `offset`, splitting negative contractions.
fn push_word(out: &mut TokenizedSentence, word: &str, offset: usize) {
    let is_negative_contraction =
        word.len() >= 3 && word[word.len() - 3..].eq_ignore_ascii_case("n't");
    if is_negative_contraction {
        // don't -> do + n't; isn't -> is + n't; can't -> ca + n't (as in PTB).
        let stem_len = word.len() - 3;
        if stem_len > 0 {
            out.push_span(offset, offset + stem_len);
        }
        out.push_span(offset + stem_len, offset + word.len());
    } else {
        out.push_span(offset, offset + word.len());
    }
}

/// Lemmatizes a lowercase word for alias matching: strips common plural
/// endings. Conservative by design — the entity tagger tries the exact form
/// first.
pub fn singularize(lower: &str) -> Option<String> {
    if lower.len() > 3 && lower.ends_with("ies") {
        return Some(format!("{}y", &lower[..lower.len() - 3]));
    }
    if lower.len() > 3
        && (lower.ends_with("ses")
            || lower.ends_with("xes")
            || lower.ends_with("zes")
            || lower.ends_with("ches")
            || lower.ends_with("shes"))
    {
        return Some(lower[..lower.len() - 2].to_owned());
    }
    if lower.len() > 2 && lower.ends_with('s') && !lower.ends_with("ss") {
        return Some(lower[..lower.len() - 1].to_owned());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(toks: &TokenizedSentence) -> Vec<&str> {
        (0..toks.len()).map(|i| toks.text_of(i)).collect()
    }

    #[test]
    fn splits_sentences_on_terminators() {
        let s = split_sentences("Kittens are cute. Tigers are not! Are snakes dangerous? yes");
        assert_eq!(
            s,
            vec![
                "Kittens are cute",
                "Tigers are not",
                "Are snakes dangerous",
                "yes"
            ]
        );
    }

    #[test]
    fn split_sentences_empty_and_whitespace() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences(" .  . ").is_empty());
    }

    #[test]
    fn tokenize_simple_sentence() {
        let toks = tokenize("San Francisco is a big city");
        assert_eq!(
            texts(&toks),
            vec!["San", "Francisco", "is", "a", "big", "city"]
        );
    }

    #[test]
    fn tokenize_splits_negative_contractions() {
        let toks = tokenize("I don't think so");
        assert_eq!(texts(&toks), vec!["I", "do", "n't", "think", "so"]);
        let toks = tokenize("It isn't big");
        assert_eq!(texts(&toks), vec!["It", "is", "n't", "big"]);
    }

    #[test]
    fn tokenize_separates_punctuation() {
        let toks = tokenize("big, bad (city)");
        assert_eq!(texts(&toks), vec!["big", ",", "bad", "(", "city", ")"]);
    }

    #[test]
    fn tokenize_keeps_possessive_apostrophe_inside_token() {
        // Not a negative contraction: stays as one token.
        let toks = tokenize("Chicago's parks");
        assert_eq!(texts(&toks), vec!["Chicago's", "parks"]);
    }

    #[test]
    fn capitalization_detection() {
        let toks = tokenize("Chicago city 's");
        assert!(toks.is_capitalized(0));
        assert!(!toks.is_capitalized(1));
        assert!(!toks.is_capitalized(2));
    }

    #[test]
    fn singularize_common_forms() {
        assert_eq!(singularize("cities").as_deref(), Some("city"));
        assert_eq!(singularize("snakes").as_deref(), Some("snake"));
        assert_eq!(singularize("foxes").as_deref(), Some("fox"));
        assert_eq!(singularize("beaches").as_deref(), Some("beach"));
        assert_eq!(singularize("glass"), None);
        assert_eq!(singularize("is"), None);
    }

    #[test]
    fn spans_recover_surface_forms() {
        let sentence = "San Francisco isn't (really) big.";
        let toks = tokenize(sentence);
        for i in 0..toks.len() {
            let (from, to) = toks[i].span();
            assert_eq!(
                &sentence[from..to],
                toks.text_of(i),
                "span mismatch for {:?}",
                toks.text_of(i)
            );
        }
    }

    #[test]
    fn spans_are_ordered_and_disjoint() {
        let toks = tokenize("I don't think that snakes are never dangerous.");
        for pair in toks.windows(2) {
            assert!(pair[0].end <= pair[1].start, "{pair:?}");
        }
        assert_eq!(toks[0].span(), (0, 1));
    }

    #[test]
    fn lowercase_forms_and_windows() {
        let toks = tokenize("San Francisco IS a Big City");
        assert_eq!(toks.lower_of(0), "san");
        assert_eq!(toks.lower_of(2), "is");
        assert_eq!(toks.window_lower(0, 2), "san francisco");
        assert_eq!(toks.window_lower(3, 6), "a big city");
        assert_eq!(toks.window_lower(4, 4), "");
    }

    #[test]
    fn sentence_round_trips_serde() {
        let toks = tokenize("Kittens aren't ugly");
        let json = serde_json::to_string(&toks).unwrap();
        let back: TokenizedSentence = serde_json::from_str(&json).unwrap();
        assert_eq!(toks, back);
        assert_eq!(back.sentence(), "Kittens aren't ugly");
        assert_eq!(back.lower_of(1), "are");
    }

    #[test]
    fn nominal_pos_class() {
        assert!(Pos::Noun.is_nominal());
        assert!(Pos::ProperNoun.is_nominal());
        assert!(Pos::Pronoun.is_nominal());
        assert!(!Pos::Adjective.is_nominal());
    }
}
