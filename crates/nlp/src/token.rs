//! Sentence splitting, tokenization, and the part-of-speech inventory.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Part-of-speech tags; a compact inventory sufficient for the dependency
/// patterns of paper Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pos {
    /// Common noun (`city`, `animals`).
    Noun,
    /// Proper noun (`Chicago`, `San`).
    ProperNoun,
    /// Adjective (`big`, `cute`).
    Adjective,
    /// Adverb (`very`, `densely`).
    Adverb,
    /// Lexical verb (`think`, `love`).
    Verb,
    /// Copular verb (`is`, `are`, `seems`).
    Copula,
    /// Auxiliary (`do`, `does`, `did`).
    Aux,
    /// Determiner (`a`, `the`).
    Determiner,
    /// Preposition (`for`, `in`).
    Preposition,
    /// Personal pronoun (`I`, `they`).
    Pronoun,
    /// Negation particle (`not`, `n't`, `never`).
    Negation,
    /// Coordinating conjunction (`and`, `or`).
    Conjunction,
    /// Complementizer (`that` introducing a clause).
    Complementizer,
    /// Punctuation.
    Punct,
    /// Anything else.
    Other,
}

impl Pos {
    /// Whether the tag is nominal (common or proper noun, pronoun).
    pub fn is_nominal(self) -> bool {
        matches!(self, Pos::Noun | Pos::ProperNoun | Pos::Pronoun)
    }
}

/// A token with surface form, lowercase form, POS tag, and the byte span
/// it occupies in its source sentence (for provenance and highlighting).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Surface form as written.
    pub text: String,
    /// Lowercased form.
    pub lower: String,
    /// Part-of-speech tag (assigned by the lexicon; `Other` until tagged).
    pub pos: Pos,
    /// Byte offset of the first character within the sentence.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Token {
    /// Creates an untagged token without span information (tests, synthetic
    /// tokens).
    pub fn new(text: &str) -> Self {
        Self::spanned(text, 0, text.len())
    }

    /// Creates an untagged token covering `start..end` of its sentence.
    pub fn spanned(text: &str, start: usize, end: usize) -> Self {
        Self {
            text: text.to_owned(),
            lower: text.to_lowercase(),
            pos: Pos::Other,
            start,
            end,
        }
    }

    /// Whether the surface form starts with an uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// The byte span within the source sentence.
    pub fn span(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Splits raw text into sentences on `.`, `!`, `?` boundaries.
///
/// Returns sentence strings without the terminator. Empty sentences are
/// dropped. Abbreviation handling is deliberately absent: the corpus
/// generator never emits abbreviations with periods.
pub fn split_sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, ch) in text.char_indices() {
        if matches!(ch, '.' | '!' | '?') {
            let s = text[start..i].trim();
            if !s.is_empty() {
                out.push(s);
            }
            start = i + ch.len_utf8();
        }
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

/// Tokenizes one sentence.
///
/// Splits on whitespace, separates trailing/leading punctuation, and splits
/// negative contractions the way the Stanford tokenizer does (`don't` →
/// `do` + `n't`, `isn't` → `is` + `n't`), which the negation detector of
/// paper Figure 5 relies on.
pub fn tokenize(sentence: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut cursor = 0usize;
    for raw in sentence.split_whitespace() {
        // Locate this whitespace-delimited chunk in the sentence to keep
        // byte spans exact.
        let base = sentence[cursor..]
            .find(raw)
            .map(|i| cursor + i)
            .unwrap_or(cursor);
        cursor = base + raw.len();

        // Peel leading punctuation.
        let mut word = raw;
        let mut offset = base;
        while let Some(first) = word.chars().next() {
            if first.is_alphanumeric() || first == '\'' {
                break;
            }
            let width = first.len_utf8();
            out.push(Token::spanned(&first.to_string(), offset, offset + width));
            word = &word[width..];
            offset += width;
        }
        // Peel trailing punctuation into a queue emitted after the word.
        let mut trailing = Vec::new();
        while let Some(last) = word.chars().last() {
            if last.is_alphanumeric() {
                break;
            }
            // Keep apostrophes that are part of a contraction.
            if last == '\'' && word.len() >= 2 {
                break;
            }
            let width = last.len_utf8();
            trailing.push((last.to_string(), offset + word.len() - width));
            word = &word[..word.len() - width];
        }
        if !word.is_empty() {
            push_word(&mut out, word, offset);
        }
        for (p, at) in trailing.into_iter().rev() {
            out.push(Token::spanned(&p, at, at + p.len()));
        }
    }
    out
}

/// Pushes a word starting at byte `offset`, splitting negative contractions.
fn push_word(out: &mut Vec<Token>, word: &str, offset: usize) {
    let lower = word.to_lowercase();
    if let Some(stem_len) = lower.strip_suffix("n't").map(str::len) {
        // don't -> do + n't; isn't -> is + n't; can't -> ca + n't (as in PTB).
        let stem = &word[..stem_len];
        if !stem.is_empty() {
            out.push(Token::spanned(stem, offset, offset + stem_len));
        }
        out.push(Token::spanned(
            &word[stem_len..],
            offset + stem_len,
            offset + word.len(),
        ));
    } else {
        out.push(Token::spanned(word, offset, offset + word.len()));
    }
}

/// Lemmatizes a lowercase word for alias matching: strips common plural
/// endings. Conservative by design — the entity tagger tries the exact form
/// first.
pub fn singularize(lower: &str) -> Option<String> {
    if lower.len() > 3 && lower.ends_with("ies") {
        return Some(format!("{}y", &lower[..lower.len() - 3]));
    }
    if lower.len() > 3
        && (lower.ends_with("ses")
            || lower.ends_with("xes")
            || lower.ends_with("zes")
            || lower.ends_with("ches")
            || lower.ends_with("shes"))
    {
        return Some(lower[..lower.len() - 2].to_owned());
    }
    if lower.len() > 2 && lower.ends_with('s') && !lower.ends_with("ss") {
        return Some(lower[..lower.len() - 1].to_owned());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn splits_sentences_on_terminators() {
        let s = split_sentences("Kittens are cute. Tigers are not! Are snakes dangerous? yes");
        assert_eq!(
            s,
            vec!["Kittens are cute", "Tigers are not", "Are snakes dangerous", "yes"]
        );
    }

    #[test]
    fn split_sentences_empty_and_whitespace() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences(" .  . ").is_empty());
    }

    #[test]
    fn tokenize_simple_sentence() {
        let toks = tokenize("San Francisco is a big city");
        assert_eq!(texts(&toks), vec!["San", "Francisco", "is", "a", "big", "city"]);
    }

    #[test]
    fn tokenize_splits_negative_contractions() {
        let toks = tokenize("I don't think so");
        assert_eq!(texts(&toks), vec!["I", "do", "n't", "think", "so"]);
        let toks = tokenize("It isn't big");
        assert_eq!(texts(&toks), vec!["It", "is", "n't", "big"]);
    }

    #[test]
    fn tokenize_separates_punctuation() {
        let toks = tokenize("big, bad (city)");
        assert_eq!(texts(&toks), vec!["big", ",", "bad", "(", "city", ")"]);
    }

    #[test]
    fn tokenize_keeps_possessive_apostrophe_inside_token() {
        // Not a negative contraction: stays as one token.
        let toks = tokenize("Chicago's parks");
        assert_eq!(texts(&toks), vec!["Chicago's", "parks"]);
    }

    #[test]
    fn capitalization_detection() {
        assert!(Token::new("Chicago").is_capitalized());
        assert!(!Token::new("city").is_capitalized());
        assert!(!Token::new("'s").is_capitalized());
    }

    #[test]
    fn singularize_common_forms() {
        assert_eq!(singularize("cities").as_deref(), Some("city"));
        assert_eq!(singularize("snakes").as_deref(), Some("snake"));
        assert_eq!(singularize("foxes").as_deref(), Some("fox"));
        assert_eq!(singularize("beaches").as_deref(), Some("beach"));
        assert_eq!(singularize("glass"), None);
        assert_eq!(singularize("is"), None);
    }

    #[test]
    fn spans_recover_surface_forms() {
        let sentence = "San Francisco isn't (really) big.";
        for tok in tokenize(sentence) {
            assert_eq!(
                &sentence[tok.start..tok.end],
                tok.text,
                "span mismatch for {:?}",
                tok.text
            );
        }
    }

    #[test]
    fn spans_are_ordered_and_disjoint() {
        let toks = tokenize("I don't think that snakes are never dangerous.");
        for pair in toks.windows(2) {
            assert!(pair[0].end <= pair[1].start, "{pair:?}");
        }
        assert_eq!(toks[0].span(), (0, 1));
    }

    #[test]
    fn nominal_pos_class() {
        assert!(Pos::Noun.is_nominal());
        assert!(Pos::ProperNoun.is_nominal());
        assert!(Pos::Pronoun.is_nominal());
        assert!(!Pos::Adjective.is_nominal());
    }
}
