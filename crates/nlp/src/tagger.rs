//! Entity tagging: linking text mentions to knowledge-base entities.
//!
//! The paper's extraction runs over documents "pre-processed by an entity
//! tagger using state-of-the-art means for disambiguation" (§2) — its
//! empirical study discarded 11 of 23 frequent cities for ambiguity, so the
//! tagger here is deliberately precision-first:
//!
//! 1. longest-match alias lookup over a token window (multi-word names like
//!    "San Francisco" and "Grizzly bear" match before their suffix words);
//! 2. lemmatized retry (plural "snakes" links entity "Snake");
//! 3. ambiguous aliases (several candidate entities) resolve only when the
//!    sentence contains context cues (type head nouns or cue words) for
//!    exactly one candidate's type — otherwise the mention is dropped.

use crate::token::{singularize, TokenizedSentence};
use serde::{Deserialize, Serialize};
use surveyor_kb::{EntityId, KnowledgeBase};

/// A linked entity mention: token span `[start, end)` with the span's final
/// token acting as syntactic head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mention {
    /// Linked entity.
    pub entity: EntityId,
    /// First token index of the span.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

impl Mention {
    /// The syntactic head token of the mention (its last token, matching
    /// the NP-chunker's head-final convention).
    pub fn head(&self) -> usize {
        self.end - 1
    }

    /// Whether the mention covers token `i`.
    pub fn covers(&self, i: usize) -> bool {
        (self.start..self.end).contains(&i)
    }
}

/// Builds the lemmatized lookup form for a token window into `scratch`
/// (reused across windows): the window's lowercase forms with the final
/// token singularized. Returns `None` when the final token has no distinct
/// singular — the exact form already covered that probe.
fn lemma_window<'a>(
    tokens: &TokenizedSentence,
    start: usize,
    end: usize,
    scratch: &'a mut String,
) -> Option<&'a str> {
    let singular = singularize(tokens.lower_of(end - 1))?;
    scratch.clear();
    scratch.push_str(tokens.window_lower(start, end - 1));
    if end - 1 > start {
        scratch.push(' ');
    }
    scratch.push_str(&singular);
    Some(scratch)
}

/// Resolves an ambiguous alias using sentence context: returns the single
/// candidate whose type vocabulary (head nouns or context cues) appears in
/// the sentence, or `None` when zero or several candidates match.
fn disambiguate(
    kb: &KnowledgeBase,
    candidates: &[EntityId],
    sentence_words: &[&str],
) -> Option<EntityId> {
    let mut matching = Vec::new();
    for &cand in candidates {
        let t = kb.entity_type(kb.entity(cand).notable_type());
        let cued = sentence_words
            .iter()
            .any(|w| t.matches_head_noun(w) || t.context_cues().iter().any(|c| c == w));
        if cued {
            matching.push(cand);
        }
    }
    match matching.as_slice() {
        [only] => Some(*only),
        _ => None,
    }
}

/// Tags all entity mentions in a tagged token sequence.
///
/// Mentions never overlap; matching is greedy left-to-right with longer
/// windows tried first.
pub fn tag_entities(tokens: &TokenizedSentence, kb: &KnowledgeBase) -> Vec<Mention> {
    let sentence_words: Vec<&str> = (0..tokens.len()).map(|i| tokens.lower_of(i)).collect();
    let max_window = kb.max_alias_tokens().max(1);
    let mut mentions = Vec::new();
    let mut scratch = String::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut matched = false;
        let upper = max_window.min(tokens.len() - i);
        for w in (1..=upper).rev() {
            // The exact window is a contiguous slice of the sentence's
            // shared lowercase buffer — no allocation per probe. Only the
            // lemmatized retry writes (into a reused scratch buffer).
            let exact = tokens.window_lower(i, i + w);
            let mut candidates = kb.candidates(exact);
            if candidates.is_empty() {
                if let Some(lemma) = lemma_window(tokens, i, i + w, &mut scratch) {
                    candidates = kb.candidates(lemma);
                }
            }
            let resolved = match candidates {
                [] => None,
                [only] => Some(*only),
                many => disambiguate(kb, many, &sentence_words),
            };
            if let Some(entity) = resolved {
                mentions.push(Mention {
                    entity,
                    start: i,
                    end: i + w,
                });
                i += w;
                matched = true;
                break;
            }
            // An ambiguous unresolved window still consumes its span so a
            // shorter sub-match cannot mislink part of the name.
            if candidates.len() > 1 {
                i += w;
                matched = true;
                break;
            }
        }
        if !matched {
            i += 1;
        }
    }
    mentions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;
    use crate::token::tokenize;
    use surveyor_kb::KnowledgeBaseBuilder;

    fn kb() -> KnowledgeBase {
        let mut b = KnowledgeBaseBuilder::new();
        let city = b.add_type("city", &["city", "town"], &["downtown"]);
        let animal = b.add_type("animal", &["animal"], &["zoo", "wildlife"]);
        b.add_entity("San Francisco", city).alias("SF").finish();
        b.add_entity("Phoenix", city).finish();
        b.add_entity("Phoenix Bird", animal)
            .alias("Phoenix")
            .finish();
        b.add_entity("Snake", animal).finish();
        b.add_entity("Grizzly bear", animal).finish();
        b.build()
    }

    fn tag(s: &str, kb: &KnowledgeBase) -> Vec<(String, u32)> {
        let lex = Lexicon::new();
        let mut toks = tokenize(s);
        lex.tag(&mut toks);
        tag_entities(&toks, kb)
            .into_iter()
            .map(|m| {
                let span: Vec<&str> = (m.start..m.end).map(|i| toks.text_of(i)).collect();
                (span.join(" "), m.entity.0)
            })
            .collect()
    }

    #[test]
    fn links_multiword_name() {
        let kb = kb();
        let tags = tag("San Francisco is a big city", &kb);
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].0, "San Francisco");
    }

    #[test]
    fn links_alias() {
        let kb = kb();
        let tags = tag("SF is a big city", &kb);
        assert_eq!(tags.len(), 1);
        let sf = kb.entity_by_name("San Francisco").unwrap();
        assert_eq!(tags[0].1, sf.0);
    }

    #[test]
    fn links_plural_via_lemmatization() {
        let kb = kb();
        let tags = tag("Snakes are dangerous animals", &kb);
        assert_eq!(tags.len(), 1);
        let snake = kb.entity_by_name("Snake").unwrap();
        assert_eq!(tags[0].1, snake.0);
        assert_eq!(tags[0].0, "Snakes");
    }

    #[test]
    fn ambiguous_alias_dropped_without_context() {
        let kb = kb();
        let tags = tag("Phoenix is big", &kb);
        assert!(tags.is_empty());
    }

    #[test]
    fn ambiguous_alias_resolved_by_type_cue() {
        let kb = kb();
        // "city" cues the city reading.
        let tags = tag("Phoenix is a big city", &kb);
        assert_eq!(tags.len(), 1);
        let city_type = kb.type_by_name("city").unwrap();
        let e = kb.entity(surveyor_kb::EntityId(tags[0].1));
        assert_eq!(e.notable_type(), city_type);

        // "zoo" cues the animal reading.
        let tags = tag("I saw Phoenix at the zoo", &kb);
        assert_eq!(tags.len(), 1);
        let animal_type = kb.type_by_name("animal").unwrap();
        let e = kb.entity(surveyor_kb::EntityId(tags[0].1));
        assert_eq!(e.notable_type(), animal_type);
    }

    #[test]
    fn ambiguous_with_both_cues_stays_dropped() {
        let kb = kb();
        let tags = tag("Phoenix has a city zoo", &kb);
        assert!(tags.is_empty());
    }

    #[test]
    fn longest_match_wins() {
        let kb = kb();
        // "Phoenix Bird" must match as the animal, not ambiguous "Phoenix".
        let tags = tag("The Phoenix Bird is big", &kb);
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].0, "Phoenix Bird");
    }

    #[test]
    fn lowercase_multiword_plural() {
        let kb = kb();
        let tags = tag("I think grizzly bears are dangerous", &kb);
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].0, "grizzly bears");
    }

    #[test]
    fn mentions_do_not_overlap() {
        let kb = kb();
        let lex = Lexicon::new();
        let mut toks = tokenize("San Francisco and SF and snakes");
        lex.tag(&mut toks);
        let mentions = tag_entities(&toks, &kb);
        for pair in mentions.windows(2) {
            assert!(pair[0].end <= pair[1].start);
        }
        assert_eq!(mentions.len(), 3);
    }

    #[test]
    fn mention_head_is_last_token() {
        let m = Mention {
            entity: EntityId(0),
            start: 2,
            end: 4,
        };
        assert_eq!(m.head(), 3);
        assert!(m.covers(2) && m.covers(3) && !m.covers(4));
    }

    #[test]
    fn no_mentions_in_unrelated_text() {
        let kb = kb();
        assert!(tag("the weather is nice today", &kb).is_empty());
    }
}
