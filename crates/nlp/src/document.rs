//! Annotated documents: the unit the extraction pipeline consumes.
//!
//! Mirrors the paper's input format — "annotations contain the resulting
//! dependency tree representation of sentences and the links to knowledge
//! base entities" (§4).

use crate::lexicon::Lexicon;
use crate::parser::{parse, DepTree};
use crate::tagger::{tag_entities, Mention};
use crate::token::{split_sentence_bounds, tokenize_with, TokenizedSentence};
use serde::{Deserialize, Serialize};
use surveyor_kb::KnowledgeBase;

/// One sentence with tokens, dependency tree, and linked entity mentions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedSentence {
    /// Tagged span tokens plus the sentence text they index into.
    pub tokens: TokenizedSentence,
    /// Typed dependency tree over the tokens.
    pub tree: DepTree,
    /// Entity mentions, non-overlapping, left to right.
    pub mentions: Vec<Mention>,
}

/// A fully annotated document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedDocument {
    /// Document identifier (stable across runs for a fixed corpus seed).
    pub id: u64,
    /// Annotated sentences in order.
    pub sentences: Vec<AnnotatedSentence>,
}

impl AnnotatedDocument {
    /// Total number of tokens across sentences.
    pub fn token_count(&self) -> usize {
        self.sentences.iter().map(|s| s.tokens.len()).sum()
    }

    /// Total number of entity mentions.
    pub fn mention_count(&self) -> usize {
        self.sentences.iter().map(|s| s.mentions.len()).sum()
    }
}

/// Reusable intermediate buffers for [`annotate_with`].
///
/// The annotated output owns its tokens and trees, so those cannot be
/// pooled — but the sentence-boundary list and the tokenizer's
/// trailing-punctuation queue are pure intermediates. One scratch per
/// worker, reused across every document it annotates, removes the
/// per-document and per-word allocations those used to cost.
#[derive(Debug, Default)]
pub struct AnnotateScratch {
    sentence_bounds: Vec<(usize, usize)>,
    trailing: Vec<(usize, usize)>,
}

/// Runs the full annotation pipeline on raw text: sentence split →
/// tokenize → POS-tag → parse → entity-tag.
///
/// Sentences that fail to parse (empty after tokenization) are skipped.
pub fn annotate(id: u64, text: &str, kb: &KnowledgeBase, lexicon: &Lexicon) -> AnnotatedDocument {
    annotate_with(id, text, kb, lexicon, &mut AnnotateScratch::default())
}

/// [`annotate`] with caller-owned scratch buffers, for loops that annotate
/// many documents (the corpus generator and the bench shard sources).
pub fn annotate_with(
    id: u64,
    text: &str,
    kb: &KnowledgeBase,
    lexicon: &Lexicon,
    scratch: &mut AnnotateScratch,
) -> AnnotatedDocument {
    let mut sentences = Vec::new();
    scratch.sentence_bounds.clear();
    split_sentence_bounds(text, &mut scratch.sentence_bounds);
    for &(from, to) in &scratch.sentence_bounds {
        let mut tokens = tokenize_with(&mut scratch.trailing, &text[from..to]);
        if tokens.is_empty() {
            continue;
        }
        lexicon.tag(&mut tokens);
        let Some(tree) = parse(&tokens) else {
            continue;
        };
        let mentions = tag_entities(&tokens, kb);
        sentences.push(AnnotatedSentence {
            tokens,
            tree,
            mentions,
        });
    }
    AnnotatedDocument { id, sentences }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_kb::KnowledgeBaseBuilder;

    fn kb() -> KnowledgeBase {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        let city = b.add_type("city", &["city"], &[]);
        b.add_entity("Kitten", animal).finish();
        b.add_entity("San Francisco", city).finish();
        b.build()
    }

    #[test]
    fn annotates_multi_sentence_document() {
        let kb = kb();
        let lex = Lexicon::new();
        let doc = annotate(
            7,
            "Kittens are cute. San Francisco is not a big city. The weather is nice.",
            &kb,
            &lex,
        );
        assert_eq!(doc.id, 7);
        assert_eq!(doc.sentences.len(), 3);
        assert_eq!(doc.sentences[0].mentions.len(), 1);
        assert_eq!(doc.sentences[1].mentions.len(), 1);
        assert_eq!(doc.sentences[2].mentions.len(), 0);
        assert_eq!(doc.mention_count(), 2);
        assert!(doc.token_count() > 10);
    }

    #[test]
    fn trees_are_valid() {
        let kb = kb();
        let lex = Lexicon::new();
        let doc = annotate(
            0,
            "Kittens are cute. I do not think kittens are ugly.",
            &kb,
            &lex,
        );
        for s in &doc.sentences {
            s.tree.validate().expect("valid tree");
            assert_eq!(s.tree.len(), s.tokens.len());
        }
    }

    #[test]
    fn empty_text_yields_empty_document() {
        let kb = kb();
        let lex = Lexicon::new();
        let doc = annotate(1, "", &kb, &lex);
        assert!(doc.sentences.is_empty());
        assert_eq!(doc.token_count(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let kb = kb();
        let lex = Lexicon::new();
        let doc = annotate(3, "Kittens are cute.", &kb, &lex);
        let json = serde_json::to_string(&doc).unwrap();
        let back: AnnotatedDocument = serde_json::from_str(&json).unwrap();
        assert_eq!(doc, back);
    }
}
