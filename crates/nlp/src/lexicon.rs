//! Lexicon-driven part-of-speech tagging.
//!
//! Closed-class function words (copulas, determiners, negations, …) ship
//! built in; open classes (adjectives, adverbs, nouns) combine a core
//! vocabulary with domain words registered by the caller — the corpus
//! generator registers every subjective property it realizes, and the
//! knowledge base contributes its type head nouns. Unknown words fall back
//! to morphology: capitalized ⇒ proper noun, `-ly` ⇒ adverb, else noun.

use crate::token::{Pos, TokenizedSentence};
use rustc_hash::FxHashMap;

/// Copular verbs in the restrictive "to be" set (paper Table 4, V3/V4).
const TO_BE: &[&str] = &["is", "are", "was", "were", "be", "been", "being", "am"];

/// Additional copula-class verbs (paper Table 4, V1/V2 used the full copula
/// class). Tagged as [`Pos::Copula`]; the extractor decides which set a
/// pattern version admits.
const EXTENDED_COPULAS: &[&str] = &[
    "seems", "seem", "seemed", "looks", "look", "looked", "appears", "appear", "appeared", "feels",
    "felt", "stays", "stayed", "remains", "remained",
];

const DETERMINERS: &[&str] = &[
    "a", "an", "the", "this", "that", "these", "those", "some", "any", "every", "each", "no",
];

const NEGATIONS: &[&str] = &["not", "n't", "never", "hardly", "barely", "scarcely"];

const PREPOSITIONS: &[&str] = &[
    "for", "in", "of", "at", "on", "with", "during", "to", "by", "from", "about", "near", "around",
    "under", "over",
];

const PRONOUNS: &[&str] = &[
    "i",
    "you",
    "we",
    "they",
    "he",
    "she",
    "it",
    "everyone",
    "everybody",
    "nobody",
    "people",
];

const CONJUNCTIONS: &[&str] = &["and", "or", "but", "yet"];

const AUXILIARIES: &[&str] = &[
    "do", "does", "did", "would", "will", "can", "could", "may", "might", "should", "must", "ca",
    "wo",
];

/// Verbs of thinking/saying that embed a clause ("I *think* that …").
const EMBEDDING_VERBS: &[&str] = &[
    "think", "thinks", "thought", "believe", "believes", "believed", "say", "says", "said",
    "claim", "claims", "claimed", "feel", "agree", "agrees", "agreed", "doubt", "doubts",
    "doubted", "guess", "suppose", "argue", "argued", "know", "knows", "knew",
];

/// Small-clause verbs ("I *find* kittens cute", "I *consider* it big").
const SMALL_CLAUSE_VERBS: &[&str] = &[
    "find",
    "finds",
    "found",
    "consider",
    "considers",
    "considered",
    "call",
    "calls",
    "called",
    "deem",
    "deems",
    "deemed",
];

/// Other common lexical verbs appearing in corpus filler.
const OTHER_VERBS: &[&str] = &[
    "love", "loves", "loved", "hate", "hates", "hated", "visit", "visited", "like", "likes",
    "liked", "enjoy", "enjoyed", "live", "lives", "lived", "moved", "move", "sleep", "sleeps",
    "slept", "run", "runs", "ran", "saw", "see", "sees", "watch", "watched", "went", "go", "goes",
    "play", "plays", "played", "adore", "adores", "adored",
];

/// Core adjectives always known to the tagger (Table 2 properties plus the
/// empirical-study properties and common corpus adjectives).
const CORE_ADJECTIVES: &[&str] = &[
    "big",
    "small",
    "cute",
    "ugly",
    "safe",
    "dangerous",
    "friendly",
    "deadly",
    "cool",
    "crazy",
    "pretty",
    "quiet",
    "young",
    "old",
    "calm",
    "cheap",
    "expensive",
    "hectic",
    "multicultural",
    "exciting",
    "rare",
    "solid",
    "vital",
    "addictive",
    "boring",
    "fast",
    "slow",
    "popular",
    "wealthy",
    "poor",
    "high",
    "low",
    "warm",
    "cold",
    "nice",
    "bad",
    "good",
    "great",
    "beautiful",
    "southern",
    "northern",
    "eastern",
    "western",
    "american",
    "populated",
    "crowded",
    "major",
    "obscure",
    "famous",
    "fragile",
    "robust",
    "ancient",
    "modern",
    "dull",
    "complex",
    "simple",
    "valuable",
    "harmless",
    "loud",
    "weird",
    "elegant",
    "remote",
    "common",
    "brittle",
    "vivid",
    "gloomy",
    "tiny",
    "huge",
];

/// Core adverbs (degree modifiers that form adverb-qualified properties).
const CORE_ADVERBS: &[&str] = &[
    "very",
    "really",
    "quite",
    "extremely",
    "rather",
    "so",
    "too",
    "incredibly",
    "fairly",
    "densely",
    "sparsely",
    "truly",
    "remarkably",
    "surprisingly",
    "pretty",
];

/// Core common nouns appearing in corpus templates and filters.
const CORE_NOUNS: &[&str] = &[
    "city",
    "cities",
    "town",
    "towns",
    "animal",
    "animals",
    "creature",
    "creatures",
    "country",
    "countries",
    "nation",
    "nations",
    "lake",
    "lakes",
    "mountain",
    "mountains",
    "peak",
    "peaks",
    "celebrity",
    "celebrities",
    "star",
    "stars",
    "profession",
    "professions",
    "job",
    "jobs",
    "sport",
    "sports",
    "game",
    "games",
    "place",
    "places",
    "parking",
    "summer",
    "winter",
    "families",
    "family",
    "tourists",
    "tourist",
    "weather",
    "food",
    "traffic",
    "nightlife",
    "beginners",
    "beginner",
    "children",
    "kids",
    "business",
    "weekend",
    "weekends",
    "opinion",
    "opinions",
    "part",
    "parts",
    "north",
    "south",
    "east",
    "west",
    "person",
    "people",
];

/// Whether `word` (lowercase) is a clause-embedding verb, without needing a
/// built [`Lexicon`]. Used by the parser on its hot path.
pub(crate) fn is_embedding_verb_word(word: &str) -> bool {
    EMBEDDING_VERBS.contains(&word)
}

/// Whether `word` (lowercase) is a small-clause verb (`find`, `consider`).
pub(crate) fn is_small_clause_verb_word(word: &str) -> bool {
    SMALL_CLAUSE_VERBS.contains(&word)
}

/// A part-of-speech lexicon.
///
/// Lookup priority: closed-class words, then registered open-class
/// vocabulary, then morphology. A word registered in several classes
/// resolves closed-class first (so `pretty` the adverb in "pretty big"
/// requires context handled by the tagger's adjacency rule — see
/// [`Lexicon::tag`]).
#[derive(Debug, Clone)]
pub struct Lexicon {
    map: FxHashMap<String, Pos>,
    /// Words that embed clauses (subset of verbs).
    embedding: FxHashMap<String, ()>,
    /// Small-clause verbs (subset of verbs).
    small_clause: FxHashMap<String, ()>,
    /// The restrictive "to be" copulas (subset of copulas).
    to_be: FxHashMap<String, ()>,
}

impl Lexicon {
    /// Builds the core lexicon.
    pub fn new() -> Self {
        let mut map = FxHashMap::default();
        let mut insert_all = |words: &[&str], pos: Pos| {
            for &w in words {
                map.insert(w.to_owned(), pos);
            }
        };
        // Open classes first so closed classes win conflicts below.
        insert_all(CORE_NOUNS, Pos::Noun);
        insert_all(CORE_ADVERBS, Pos::Adverb);
        // Adjectives are inserted after adverbs: a word in both classes
        // ("pretty") defaults to the adjective reading, and the contextual
        // repair in `tag` demotes it to adverb before another adjective.
        insert_all(CORE_ADJECTIVES, Pos::Adjective);
        insert_all(OTHER_VERBS, Pos::Verb);
        insert_all(EMBEDDING_VERBS, Pos::Verb);
        insert_all(SMALL_CLAUSE_VERBS, Pos::Verb);
        insert_all(TO_BE, Pos::Copula);
        insert_all(EXTENDED_COPULAS, Pos::Copula);
        insert_all(DETERMINERS, Pos::Determiner);
        insert_all(NEGATIONS, Pos::Negation);
        insert_all(PREPOSITIONS, Pos::Preposition);
        insert_all(PRONOUNS, Pos::Pronoun);
        insert_all(CONJUNCTIONS, Pos::Conjunction);
        insert_all(AUXILIARIES, Pos::Aux);
        // "that" defaults to complementizer; the parser reinterprets it as a
        // determiner when followed by a noun.
        map.insert("that".to_owned(), Pos::Complementizer);

        let embedding = EMBEDDING_VERBS
            .iter()
            .map(|w| ((*w).to_owned(), ()))
            .collect();
        let small_clause = SMALL_CLAUSE_VERBS
            .iter()
            .map(|w| ((*w).to_owned(), ()))
            .collect();
        let to_be = TO_BE.iter().map(|w| ((*w).to_owned(), ())).collect();
        Self {
            map,
            embedding,
            small_clause,
            to_be,
        }
    }

    /// Registers an adjective (e.g. a subjective property head).
    pub fn add_adjective(&mut self, word: &str) {
        self.insert_open(word, Pos::Adjective);
    }

    /// Registers an adverb.
    pub fn add_adverb(&mut self, word: &str) {
        self.insert_open(word, Pos::Adverb);
    }

    /// Registers a common noun (e.g. a knowledge-base type head noun).
    pub fn add_noun(&mut self, word: &str) {
        self.insert_open(word, Pos::Noun);
    }

    fn insert_open(&mut self, word: &str, pos: Pos) {
        let w = word.to_lowercase();
        // Never shadow closed-class words.
        let existing = self.map.get(&w);
        if matches!(
            existing,
            Some(
                Pos::Copula
                    | Pos::Determiner
                    | Pos::Negation
                    | Pos::Preposition
                    | Pos::Pronoun
                    | Pos::Conjunction
                    | Pos::Aux
                    | Pos::Complementizer
            )
        ) {
            return;
        }
        self.map.insert(w, pos);
    }

    /// Looks up the lexical tag of a lowercase word, if registered.
    pub fn lookup(&self, lower: &str) -> Option<Pos> {
        self.map.get(lower).copied()
    }

    /// Whether the word is a clause-embedding verb.
    pub fn is_embedding_verb(&self, lower: &str) -> bool {
        self.embedding.contains_key(lower)
    }

    /// Whether the word is a small-clause verb (`find`, `consider`).
    pub fn is_small_clause_verb(&self, lower: &str) -> bool {
        self.small_clause.contains_key(lower)
    }

    /// Whether the word is one of the restrictive "to be" copulas.
    pub fn is_to_be(&self, lower: &str) -> bool {
        self.to_be.contains_key(lower)
    }

    /// Tags a token sequence in place.
    ///
    /// Lexicon lookup first; morphology fallback (capitalized mid-sentence ⇒
    /// proper noun; `-ly` ⇒ adverb; else common noun); then two contextual
    /// repairs:
    /// - a word tagged `Adjective` that directly precedes another adjective
    ///   and is also a core adverb ("pretty big") becomes `Adverb`;
    /// - sentence-initial capitalized unknown words stay nouns only if not
    ///   known otherwise.
    pub fn tag(&self, tokens: &mut TokenizedSentence) {
        let n = tokens.len();
        for i in 0..n {
            let lower = tokens.lower_of(i);
            let pos = if let Some(p) = self.lookup(lower) {
                p
            } else if !tokens
                .text_of(i)
                .chars()
                .next()
                .is_some_and(char::is_alphanumeric)
            {
                Pos::Punct
            } else if tokens.is_capitalized(i) {
                // Sentence-initial capitalized unknowns too: the lexicon
                // lookup above already tried the lowercase form.
                Pos::ProperNoun
            } else if lower.ends_with("ly") && lower.len() > 3 {
                Pos::Adverb
            } else {
                Pos::Noun
            };
            tokens.tokens[i].pos = pos;
        }
        // Contextual repair: "pretty big" — adjective reading demoted to
        // adverb when immediately followed by an adjective.
        for i in 0..n.saturating_sub(1) {
            if tokens[i].pos == Pos::Adjective
                && tokens[i + 1].pos == Pos::Adjective
                && CORE_ADVERBS.contains(&tokens.lower_of(i))
            {
                tokens.tokens[i].pos = Pos::Adverb;
            }
        }
        // "that" before a nominal is a determiner ("that city is big").
        for i in 0..n.saturating_sub(1) {
            if tokens[i].pos == Pos::Complementizer {
                let mut j = i + 1;
                // Skip adjectives/adverbs inside the NP.
                while j < n && matches!(tokens[j].pos, Pos::Adjective | Pos::Adverb) {
                    j += 1;
                }
                if j < n && j == i + 1 && tokens[j].pos.is_nominal() && i == 0 {
                    tokens.tokens[i].pos = Pos::Determiner;
                }
            }
        }
    }
}

impl Default for Lexicon {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn tag_sentence(s: &str) -> Vec<(String, Pos)> {
        let lex = Lexicon::new();
        let mut toks = tokenize(s);
        lex.tag(&mut toks);
        (0..toks.len())
            .map(|i| (toks.text_of(i).to_owned(), toks[i].pos))
            .collect()
    }

    #[test]
    fn tags_copular_sentence() {
        let tags = tag_sentence("Chicago is very big");
        assert_eq!(tags[0].1, Pos::ProperNoun);
        assert_eq!(tags[1].1, Pos::Copula);
        assert_eq!(tags[2].1, Pos::Adverb);
        assert_eq!(tags[3].1, Pos::Adjective);
    }

    #[test]
    fn tags_negation_and_contraction() {
        let tags = tag_sentence("I don't think that snakes are never dangerous");
        let texts: Vec<&str> = tags.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "I",
                "do",
                "n't",
                "think",
                "that",
                "snakes",
                "are",
                "never",
                "dangerous"
            ]
        );
        assert_eq!(tags[1].1, Pos::Aux);
        assert_eq!(tags[2].1, Pos::Negation);
        assert_eq!(tags[3].1, Pos::Verb);
        assert_eq!(tags[4].1, Pos::Complementizer);
        assert_eq!(tags[7].1, Pos::Negation);
        assert_eq!(tags[8].1, Pos::Adjective);
    }

    #[test]
    fn unknown_capitalized_word_is_proper_noun() {
        let tags = tag_sentence("I visited Oakville yesterday");
        assert_eq!(tags[2].1, Pos::ProperNoun);
    }

    #[test]
    fn unknown_lowercase_word_defaults_to_noun() {
        let tags = tag_sentence("the zorblax is big");
        assert_eq!(tags[1].1, Pos::Noun);
    }

    #[test]
    fn ly_fallback_is_adverb() {
        let tags = tag_sentence("a sparsely populated town");
        assert_eq!(tags[1].1, Pos::Adverb);
    }

    #[test]
    fn pretty_is_adverb_before_adjective() {
        let tags = tag_sentence("Chicago is pretty big");
        assert_eq!(tags[2].1, Pos::Adverb);
        let tags = tag_sentence("Ava Sterling is pretty");
        assert_eq!(tags[3].1, Pos::Adjective);
    }

    #[test]
    fn registered_vocabulary_wins_over_morphology() {
        let mut lex = Lexicon::new();
        lex.add_adjective("zorby");
        let mut toks = tokenize("a zorby cat");
        lex.tag(&mut toks);
        assert_eq!(toks[1].pos, Pos::Adjective);
    }

    #[test]
    fn open_class_cannot_shadow_closed_class() {
        let mut lex = Lexicon::new();
        lex.add_adjective("not");
        assert_eq!(lex.lookup("not"), Some(Pos::Negation));
    }

    #[test]
    fn to_be_and_extended_copulas() {
        let lex = Lexicon::new();
        assert!(lex.is_to_be("is"));
        assert!(!lex.is_to_be("seems"));
        assert_eq!(lex.lookup("seems"), Some(Pos::Copula));
    }

    #[test]
    fn embedding_and_small_clause_verbs() {
        let lex = Lexicon::new();
        assert!(lex.is_embedding_verb("think"));
        assert!(lex.is_small_clause_verb("find"));
        assert!(!lex.is_embedding_verb("love"));
    }

    #[test]
    fn punctuation_is_tagged_punct() {
        let tags = tag_sentence("big , bad");
        assert_eq!(tags[1].1, Pos::Punct);
    }
}
