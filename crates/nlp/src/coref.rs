//! Sentence-local coreference.
//!
//! The adjectival-modifier extraction pattern requires the modified noun to
//! be *coreferential* with an entity mention (paper §4): in "Snakes are
//! dangerous animals", the predicate nominal "animals" corefers with the
//! subject mention "Snakes", so `amod(animals, dangerous)` yields the
//! extraction (snake, dangerous). In "southern France is warm" no such link
//! exists for "France"'s would-be coreferent, so the intrinsicness filter
//! can tell the two cases apart.
//!
//! Only the high-precision case is implemented: a predicate nominal whose
//! clause subject is an entity mention and whose head word is a head noun
//! of the mention's entity type.

use crate::parser::{DepRel, DepTree};
use crate::tagger::Mention;
use crate::token::{Pos, TokenizedSentence};
use surveyor_kb::KnowledgeBase;

/// A coreference link: `noun` (token index of a predicate nominal) refers
/// to the same entity as `mention` (index into the mention list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorefLink {
    /// Token index of the coreferent noun.
    pub noun: usize,
    /// Index into the sentence's mention list.
    pub mention: usize,
}

/// Finds predicate-nominal coreference links in one sentence.
///
/// A link is produced when:
/// - some mention's head token is the `nsubj` of a noun `N`,
/// - `N` carries a copula child (it is a predicate nominal), and
/// - `N`'s lowercase form is a head noun of the mention's entity type
///   (plural-tolerant).
pub fn predicate_nominal_corefs(
    tokens: &TokenizedSentence,
    tree: &DepTree,
    mentions: &[Mention],
    kb: &KnowledgeBase,
) -> Vec<CorefLink> {
    let mut links = Vec::new();
    for (mi, mention) in mentions.iter().enumerate() {
        let head = mention.head();
        if head >= tree.len() || tree.rel(head) != DepRel::Nsubj {
            continue;
        }
        let Some(pred) = tree.head(head) else {
            continue;
        };
        if tokens[pred].pos != Pos::Noun {
            continue;
        }
        if !tree.has_child_with_rel(pred, DepRel::Cop) {
            continue;
        }
        let etype = kb.entity_type(kb.entity(mention.entity).notable_type());
        if etype.matches_head_noun(tokens.lower_of(pred)) {
            links.push(CorefLink {
                noun: pred,
                mention: mi,
            });
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;
    use crate::parser::parse;
    use crate::tagger::tag_entities;
    use crate::token::tokenize;
    use surveyor_kb::KnowledgeBaseBuilder;

    fn setup(s: &str) -> (TokenizedSentence, DepTree, Vec<Mention>, KnowledgeBase) {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        let country = b.add_type("country", &["country"], &[]);
        b.add_entity("Snake", animal).finish();
        b.add_entity("France", country).finish();
        b.add_entity("Greece", country).finish();
        let kb = b.build();
        let lex = Lexicon::new();
        let mut toks = tokenize(s);
        lex.tag(&mut toks);
        let tree = parse(&toks).unwrap();
        let mentions = tag_entities(&toks, &kb);
        (toks, tree, mentions, kb)
    }

    #[test]
    fn predicate_nominal_link_found() {
        let (toks, tree, mentions, kb) = setup("Snakes are dangerous animals");
        let links = predicate_nominal_corefs(&toks, &tree, &mentions, &kb);
        assert_eq!(links.len(), 1);
        assert_eq!(toks.lower_of(links[0].noun), "animals");
        assert_eq!(mentions[links[0].mention].start, 0);
    }

    #[test]
    fn greece_southern_country_coref() {
        let (toks, tree, mentions, kb) = setup("Greece is a southern country");
        let links = predicate_nominal_corefs(&toks, &tree, &mentions, &kb);
        assert_eq!(links.len(), 1);
        assert_eq!(toks.lower_of(links[0].noun), "country");
    }

    #[test]
    fn attributive_subject_has_no_link() {
        // "southern France is warm": no predicate nominal at all.
        let (toks, tree, mentions, kb) = setup("southern France is warm");
        assert_eq!(mentions.len(), 1);
        let links = predicate_nominal_corefs(&toks, &tree, &mentions, &kb);
        assert!(links.is_empty());
    }

    #[test]
    fn wrong_type_noun_is_not_coreferent() {
        // "France is a dangerous animal" — head noun mismatch for country.
        let (toks, tree, mentions, kb) = setup("France is a dangerous animal");
        assert_eq!(mentions.len(), 1);
        let links = predicate_nominal_corefs(&toks, &tree, &mentions, &kb);
        assert!(links.is_empty());
    }

    #[test]
    fn non_subject_mention_has_no_link() {
        let (toks, tree, mentions, kb) = setup("I love France");
        assert_eq!(mentions.len(), 1);
        let links = predicate_nominal_corefs(&toks, &tree, &mentions, &kb);
        assert!(links.is_empty());
    }
}
