//! Property-based tests for the NLP substrate: tokenizer totality, parser
//! structural invariants on arbitrary word soup, and polarity parity.

use proptest::prelude::*;
use surveyor_nlp::token::singularize;
use surveyor_nlp::{parse, split_sentences, tokenize, Lexicon};

/// Arbitrary "words" drawn from a mix of real vocabulary and noise.
fn word_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("the".to_owned()),
        Just("is".to_owned()),
        Just("are".to_owned()),
        Just("not".to_owned()),
        Just("never".to_owned()),
        Just("big".to_owned()),
        Just("cute".to_owned()),
        Just("very".to_owned()),
        Just("city".to_owned()),
        Just("I".to_owned()),
        Just("think".to_owned()),
        Just("and".to_owned()),
        Just("for".to_owned()),
        Just("that".to_owned()),
        Just("Chicago".to_owned()),
        "[a-zA-Z]{1,12}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tokenizer_never_produces_empty_tokens(words in prop::collection::vec(word_strategy(), 0..20)) {
        let sentence = words.join(" ");
        let tokens = tokenize(&sentence);
        for i in 0..tokens.len() {
            prop_assert!(!tokens.text_of(i).is_empty());
            prop_assert_eq!(tokens.lower_of(i).to_owned(), tokens.text_of(i).to_lowercase());
        }
    }

    #[test]
    fn tokenizer_preserves_alphanumeric_content(words in prop::collection::vec("[a-zA-Z]{1,10}", 1..12)) {
        // Pure alphabetic words round-trip: same sequence, no splits.
        let sentence = words.join(" ");
        let tokens = tokenize(&sentence);
        let rejoined: Vec<String> = (0..tokens.len())
            .map(|i| tokens.text_of(i).to_owned())
            .collect();
        prop_assert_eq!(rejoined, words);
    }

    #[test]
    fn parser_always_yields_a_valid_tree(words in prop::collection::vec(word_strategy(), 1..20)) {
        let sentence = words.join(" ");
        let lex = Lexicon::new();
        let mut tokens = tokenize(&sentence);
        if tokens.is_empty() {
            return Ok(());
        }
        lex.tag(&mut tokens);
        let tree = parse(&tokens).expect("non-empty input parses");
        prop_assert!(tree.validate().is_ok(), "invalid tree for: {sentence}");
        prop_assert_eq!(tree.len(), tokens.len());
    }

    #[test]
    fn parse_is_deterministic(words in prop::collection::vec(word_strategy(), 1..16)) {
        let sentence = words.join(" ");
        let lex = Lexicon::new();
        let mut a = tokenize(&sentence);
        let mut b = tokenize(&sentence);
        if a.is_empty() {
            return Ok(());
        }
        lex.tag(&mut a);
        lex.tag(&mut b);
        prop_assert_eq!(parse(&a), parse(&b));
    }

    #[test]
    fn sentence_splitting_loses_no_alphabetic_text(
        parts in prop::collection::vec("[a-zA-Z ]{1,30}", 1..5),
    ) {
        let text = parts.join(". ");
        let sentences = split_sentences(&text);
        let original: String = text.chars().filter(|c| c.is_alphabetic()).collect();
        let recovered: String = sentences
            .iter()
            .flat_map(|s| s.chars())
            .filter(|c| c.is_alphabetic())
            .collect();
        prop_assert_eq!(original, recovered);
    }

    #[test]
    fn singularize_strips_at_most_three_chars(word in "[a-z]{2,15}") {
        if let Some(s) = singularize(&word) {
            prop_assert!(!s.is_empty());
            prop_assert!(word.len() - s.len() <= 2 || s.ends_with('y'));
            // The singular form is a plausible stem: shares a prefix.
            let common = s.chars().zip(word.chars()).take_while(|(a, b)| a == b).count();
            prop_assert!(common >= s.len().saturating_sub(1));
        }
    }
}
