//! Property-based tests for the probability substrate.

use proptest::prelude::*;
use surveyor_prob::logspace::{log_add_exp, normalize_pair};
use surveyor_prob::stats::percentile_sorted;
use surveyor_prob::{ln_factorial, log_sum_exp, percentile, Poisson, Summary, Zipf};

proptest! {
    #[test]
    fn ln_factorial_is_monotone(n in 0u64..100_000) {
        prop_assert!(ln_factorial(n + 1) >= ln_factorial(n));
    }

    #[test]
    fn ln_factorial_recurrence(n in 1u64..10_000) {
        // ln((n)!) = ln((n-1)!) + ln(n), up to float tolerance.
        let lhs = ln_factorial(n);
        let rhs = ln_factorial(n - 1) + (n as f64).ln();
        prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn log_sum_exp_bounds(xs in prop::collection::vec(-500.0f64..500.0, 1..32)) {
        // max <= lse <= max + ln(n).
        let lse = log_sum_exp(&xs);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-9);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-9);
    }

    #[test]
    fn log_add_exp_is_commutative(a in -700.0f64..700.0, b in -700.0f64..700.0) {
        let ab = log_add_exp(a, b);
        let ba = log_add_exp(b, a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab >= a.max(b));
    }

    #[test]
    fn normalize_pair_is_a_probability(a in -1e6f64..100.0, b in -1e6f64..100.0) {
        let p = normalize_pair(a, b);
        prop_assert!((0.0..=1.0).contains(&p));
        let q = normalize_pair(b, a);
        prop_assert!((p + q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_pmf_is_normalized(lambda in 0.01f64..50.0) {
        let p = Poisson::new(lambda);
        let total: f64 = (0..500).map(|k| p.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "lambda={lambda} total={total}");
    }

    #[test]
    fn poisson_mode_is_near_lambda(lambda in 1.0f64..40.0) {
        // The pmf peaks at floor(lambda) or floor(lambda)-ish.
        let p = Poisson::new(lambda);
        let argmax = (0..200).max_by(|&a, &b| {
            p.pmf(a).partial_cmp(&p.pmf(b)).unwrap()
        }).unwrap();
        prop_assert!((argmax as f64 - lambda).abs() <= 1.5);
    }

    #[test]
    fn poisson_samples_within_support(lambda in 0.0f64..200.0, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let p = Poisson::new(lambda);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = p.sample(&mut rng);
        // Extremely loose tail bound: 10 sigma above the mean.
        prop_assert!((x as f64) < lambda + 10.0 * lambda.sqrt() + 30.0);
    }

    #[test]
    fn zipf_pmf_is_normalized(n in 1usize..500, s in 0.2f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_support(n in 1usize..200, s in 0.2f64..2.5, seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        let k = z.sample(&mut rng);
        prop_assert!((1..=n).contains(&k));
    }

    #[test]
    fn summary_merge_matches_sequential(
        left in prop::collection::vec(-1e3f64..1e3, 0..64),
        right in prop::collection::vec(-1e3f64..1e3, 0..64),
    ) {
        let mut merged = Summary::new();
        for &x in &left { merged.push(x); }
        let mut other = Summary::new();
        for &x in &right { other.push(x); }
        merged.merge(&other);

        let mut sequential = Summary::new();
        for &x in left.iter().chain(&right) { sequential.push(x); }

        prop_assert_eq!(merged.count(), sequential.count());
        if merged.count() > 0 {
            prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-6);
            prop_assert!((merged.variance() - sequential.variance()).abs() < 1e-4);
        }
    }

    #[test]
    fn percentile_is_monotone_in_q(
        mut xs in prop::collection::vec(-1e3f64..1e3, 1..64),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(percentile_sorted(&xs, lo) <= percentile_sorted(&xs, hi) + 1e-9);
    }

    #[test]
    fn percentile_within_range(xs in prop::collection::vec(-1e3f64..1e3, 1..64), q in 0.0f64..100.0) {
        let p = percentile(&xs, q).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
    }
}
