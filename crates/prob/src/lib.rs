//! Probability and statistics substrate for the Surveyor reproduction.
//!
//! The Surveyor paper (SIGMOD 2015) models statement counts with Poisson
//! distributions, samples synthetic worlds from Zipf-like popularity laws,
//! and evaluates output with rank statistics. None of these primitives were
//! taken from an external crate; this crate implements them from scratch so
//! the rest of the workspace can rely on a small, well-tested numeric core.
//!
//! Modules:
//! - [`logspace`]: numerically stable log-domain arithmetic (`log_sum_exp`,
//!   `ln_factorial`, `ln_gamma`).
//! - [`poisson`]: Poisson pmf / log-pmf / CDF and sampling (Knuth for small
//!   rates, PTRS transformed rejection for large rates).
//! - [`zipf`]: bounded Zipf (zeta) sampler used for entity popularity.
//! - [`stats`]: descriptive statistics — percentiles, correlation, Welford
//!   summaries.
//! - [`rng`]: deterministic seed derivation so every experiment in the
//!   workspace is reproducible from a single master seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logspace;
pub mod poisson;
pub mod rng;
pub mod stats;
pub mod zipf;

pub use logspace::{ln_factorial, ln_gamma, log_sum_exp};
pub use poisson::Poisson;
pub use rng::SeedStream;
pub use stats::{
    pearson, percentile, percentile_sorted, percentile_sorted_or_zero, spearman, Summary,
};
pub use zipf::Zipf;
