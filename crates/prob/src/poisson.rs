//! Poisson distribution: pmf, log-pmf, CDF, and sampling.
//!
//! Surveyor approximates the multinomial statement-count distribution by a
//! product of Poissons (paper §5.2, citing McDonald 1980 / Roos 1999); both
//! the synthetic corpus generator (sampling counts) and the inference engine
//! (evaluating log-likelihoods) go through this type.

use crate::logspace::ln_factorial;
use rand::Rng;

/// A Poisson distribution with rate `lambda >= 0`.
///
/// `lambda == 0` is a valid degenerate distribution concentrated at zero;
/// Surveyor produces it for entity sets where one opinion class never emits
/// statements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Panics
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "Poisson rate must be finite and non-negative, got {lambda}"
        );
        Self { lambda }
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Natural log of `Pr(X = k)`.
    ///
    /// For `lambda == 0` this is `0` at `k == 0` and `-inf` elsewhere.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)
    }

    /// `Pr(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// `Pr(X <= k)` by direct summation (adequate for the moderate counts
    /// Surveyor deals in; O(k)).
    pub fn cdf(&self, k: u64) -> f64 {
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    /// Draws one sample.
    ///
    /// Uses Knuth's product-of-uniforms method for `lambda < 30` and the
    /// PTRS transformed-rejection method (Hörmann 1993) for larger rates,
    /// which keeps sampling O(1) regardless of the rate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            0
        } else if self.lambda < 30.0 {
            self.sample_knuth(rng)
        } else {
            self.sample_ptrs(rng)
        }
    }

    fn sample_knuth<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let limit = (-self.lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= rng.gen::<f64>();
        }
        count
    }

    /// PTRS: W. Hörmann, "The transformed rejection method for generating
    /// Poisson random variables", Insurance: Mathematics and Economics 12
    /// (1993). Valid for `lambda >= 10`; we switch at 30.
    fn sample_ptrs<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lam = self.lambda;
        let log_lam = lam.ln();
        let b = 0.931 + 2.53 * lam.sqrt();
        let a = -0.059 + 0.024_83 * b;
        let inv_alpha = 1.123_9 + 1.132_8 / (b - 3.4);
        let v_r = 0.9277 - 3.6224 / (b - 2.0);
        loop {
            let u: f64 = rng.gen::<f64>() - 0.5;
            let v: f64 = rng.gen();
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + lam + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k as u64;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            let lhs = v.ln() + inv_alpha.ln() - (a / (us * us) + b).ln();
            let rhs = -lam + k * log_lam - ln_factorial(k as u64);
            if lhs <= rhs {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        for lambda in [0.1, 1.0, 5.0, 20.0] {
            let p = Poisson::new(lambda);
            // Sum far enough into the tail to capture essentially all mass.
            let total: f64 = (0..400).map(|k| p.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "lambda={lambda} total={total}");
        }
    }

    #[test]
    fn pmf_matches_hand_values() {
        // Pois(2): Pr(0)=e^-2, Pr(1)=2e^-2, Pr(2)=2e^-2, Pr(3)=4/3 e^-2.
        let p = Poisson::new(2.0);
        let e2 = (-2.0f64).exp();
        assert!((p.pmf(0) - e2).abs() < 1e-12);
        assert!((p.pmf(1) - 2.0 * e2).abs() < 1e-12);
        assert!((p.pmf(2) - 2.0 * e2).abs() < 1e-12);
        assert!((p.pmf(3) - 4.0 / 3.0 * e2).abs() < 1e-12);
    }

    #[test]
    fn degenerate_zero_rate() {
        let p = Poisson::new(0.0);
        assert_eq!(p.pmf(0), 1.0);
        assert_eq!(p.pmf(1), 0.0);
        assert_eq!(p.ln_pmf(3), f64::NEG_INFINITY);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(p.sample(&mut rng), 0);
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let p = Poisson::new(6.5);
        let mut prev = 0.0;
        for k in 0..50 {
            let c = p.cdf(k);
            assert!(c >= prev - 1e-15);
            assert!(c <= 1.0);
            prev = c;
        }
        assert!((p.cdf(100) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let _ = Poisson::new(-1.0);
    }

    fn sample_moments(lambda: f64, n: usize, seed: u64) -> (f64, f64) {
        let p = Poisson::new(lambda);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n).map(|_| p.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        (mean, var)
    }

    #[test]
    fn knuth_sampler_moments() {
        let (mean, var) = sample_moments(4.0, 40_000, 11);
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn ptrs_sampler_moments() {
        let (mean, var) = sample_moments(120.0, 40_000, 13);
        assert!((mean - 120.0).abs() < 0.5, "mean={mean}");
        assert!((var - 120.0).abs() < 6.0, "var={var}");
    }

    #[test]
    fn ptrs_sampler_distribution_matches_pmf() {
        // Chi-square-style check on a band of the support.
        let lambda = 50.0;
        let p = Poisson::new(lambda);
        let mut rng = StdRng::seed_from_u64(17);
        let n = 60_000usize;
        let mut counts = vec![0u64; 120];
        for _ in 0..n {
            let k = p.sample(&mut rng) as usize;
            if k < counts.len() {
                counts[k] += 1;
            }
        }
        for (k, &count) in counts.iter().enumerate().take(66).skip(35) {
            let expected = p.pmf(k as u64) * n as f64;
            let observed = count as f64;
            // 5-sigma band on a Poisson count.
            let sigma = expected.sqrt().max(1.0);
            assert!(
                (observed - expected).abs() < 5.0 * sigma,
                "k={k} observed={observed} expected={expected}"
            );
        }
    }
}
