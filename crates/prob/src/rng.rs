//! Deterministic seed derivation.
//!
//! Every experiment in this workspace is reproducible from a single master
//! seed. Sub-systems (corpus shards, crowd workers, EM initialization, …)
//! derive independent streams via [`SeedStream`], which mixes a master seed
//! with string tags and integer indices using SplitMix64 — the standard
//! seed-expansion finalizer, whose avalanche properties keep derived streams
//! statistically independent even for adjacent indices.

/// SplitMix64 finalizer: one full-avalanche mixing step.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; used to fold textual tags into seeds.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A named, hierarchical seed stream.
///
/// ```
/// use surveyor_prob::SeedStream;
/// let root = SeedStream::new(42);
/// let corpus = root.child("corpus");
/// let shard3 = corpus.index(3);
/// // Deterministic: the same path always yields the same seed.
/// assert_eq!(shard3.seed(), SeedStream::new(42).child("corpus").index(3).seed());
/// // Distinct paths yield distinct seeds.
/// assert_ne!(shard3.seed(), corpus.index(4).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// Root stream from a master seed.
    pub fn new(master: u64) -> Self {
        Self {
            state: splitmix64(master),
        }
    }

    /// Derives a child stream for a named sub-system.
    pub fn child(&self, tag: &str) -> Self {
        Self {
            state: splitmix64(self.state ^ fnv1a(tag.as_bytes())),
        }
    }

    /// Derives a child stream for an indexed element (shard, worker, …).
    pub fn index(&self, i: u64) -> Self {
        Self {
            state: splitmix64(
                self.state
                    .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
        }
    }

    /// The 64-bit seed value for this stream, suitable for
    /// `StdRng::seed_from_u64`.
    pub fn seed(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_paths() {
        let a = SeedStream::new(7).child("x").index(9).seed();
        let b = SeedStream::new(7).child("x").index(9).seed();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_tags_distinct_seeds() {
        let root = SeedStream::new(7);
        assert_ne!(root.child("corpus").seed(), root.child("crowd").seed());
        assert_ne!(root.child("corpus").seed(), root.seed());
    }

    #[test]
    fn indices_do_not_collide_in_bulk() {
        let stream = SeedStream::new(123).child("shards");
        let seeds: HashSet<u64> = (0..10_000).map(|i| stream.index(i).seed()).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn different_masters_diverge() {
        let a = SeedStream::new(1).child("c").index(0).seed();
        let b = SeedStream::new(2).child("c").index(0).seed();
        assert_ne!(a, b);
    }

    #[test]
    fn order_of_derivation_matters() {
        let root = SeedStream::new(5);
        assert_ne!(
            root.child("a").child("b").seed(),
            root.child("b").child("a").seed()
        );
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = splitmix64(0xDEAD_BEEF);
        let flipped = splitmix64(0xDEAD_BEEF ^ 1);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "differing bits: {differing}"
        );
    }
}
