//! Bounded Zipf (zeta) distribution over ranks `1..=n`.
//!
//! The Surveyor corpus generator uses Zipf popularity to reproduce the
//! heavy-skew extraction statistics of paper Figure 9: a small set of
//! popular entities and property-type combinations accounts for most
//! extracted statements, while the long tail is almost never mentioned.

use rand::Rng;

/// Zipf distribution: `Pr(rank = k) ∝ 1 / k^s` for `k in 1..=n`.
///
/// Sampling uses a precomputed cumulative table with binary search; the
/// populations Surveyor deals in (up to a few hundred thousand entities)
/// make the O(n) table and O(log n) draws a deliberate simplicity/perf
/// trade-off over rejection-inversion.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is non-finite or non-positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Pin the last entry so binary search can never run off the end.
        *cdf.last_mut().expect("non-empty support") = 1.0; // lint:allow(no-panic-in-lib): support size is asserted nonzero in the constructor
        Self { cdf, exponent: s }
    }

    /// Number of ranks in the support.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// `Pr(rank = k)` for `k in 1..=n`; zero outside the support.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[k - 1];
        let lo = if k >= 2 { self.cdf[k - 2] } else { 0.0 };
        hi - lo
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the index
        // of the first cdf entry >= u; +1 converts to a 1-based rank.
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// The relative weight of rank `k` (unnormalized `1/k^s`), exposed so
    /// callers can scale per-entity mention rates without re-deriving the
    /// normalizer.
    pub fn weight(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "rank out of range");
        (k as f64).powf(-self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(50, 0.8);
        for k in 1..50 {
            assert!(z.pmf(k) > z.pmf(k + 1), "k={k}");
        }
    }

    #[test]
    fn pmf_outside_support_is_zero() {
        let z = Zipf::new(10, 1.0);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(11), 0.0);
    }

    #[test]
    fn single_rank_support() {
        let z = Zipf::new(1, 2.0);
        assert_eq!(z.pmf(1), 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..16 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn samples_stay_in_support_and_match_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let mut counts = [0u64; 21];
        for _ in 0..n {
            let k = z.sample(&mut rng);
            assert!((1..=20).contains(&k));
            counts[k] += 1;
        }
        for (k, &count) in counts.iter().enumerate().take(21).skip(1) {
            let expected = z.pmf(k) * n as f64;
            let sigma = expected.sqrt().max(1.0);
            assert!(
                (count as f64 - expected).abs() < 5.0 * sigma,
                "k={k} observed={count} expected={expected}"
            );
        }
    }

    #[test]
    fn ratio_of_head_ranks_follows_power_law() {
        let z = Zipf::new(1000, 1.0);
        // pmf(1)/pmf(2) == 2^s == 2 for s = 1.
        let ratio = z.pmf(1) / z.pmf(2);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
