//! Descriptive statistics used by the evaluation harness.
//!
//! Paper Figure 9 reports percentile curves of extraction counts; Figures 3
//! and 13 are read as correlation between decided polarity and an objective
//! attribute. This module supplies percentiles, Pearson/Spearman correlation,
//! and a Welford online summary.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / total as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.n = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The `q`-th percentile (`0 <= q <= 100`) of `values` using linear
/// interpolation between closest ranks (the "exclusive" variant matching
/// what the paper's percentile plots convey).
///
/// Returns `None` for an empty slice. The input need not be sorted.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(percentile_sorted(&sorted, q))
}

/// Percentile of an already-sorted slice, returning `0.0` for an empty
/// slice (the natural reading for count statistics over an empty set).
pub fn percentile_sorted_or_zero(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        percentile_sorted(sorted, q)
    }
}

/// Percentile of an already-sorted slice (ascending). Panics on empty input.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` when fewer than two points or either sample is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal lengths");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Fractional ranks (average rank for ties), 1-based.
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average the ranks i..=j (1-based) across the tie group.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on fractional ranks).
///
/// Robust to the monotone-but-nonlinear relation between e.g. population
/// and the posterior probability of `big`; used to score Fig. 3(d)/13.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "spearman requires equal lengths");
    if xs.len() < 2 {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.push(3.0);
        let b = Summary::new();
        let mut c = a;
        c.merge(&b);
        assert_eq!(c.count(), 1);
        let mut d = Summary::new();
        d.merge(&a);
        assert_eq!(d.count(), 1);
        assert_eq!(d.mean(), 3.0);
    }

    #[test]
    fn percentile_basics() {
        let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), Some(15.0));
        assert_eq!(percentile(&xs, 100.0), Some(50.0));
        assert_eq!(percentile(&xs, 50.0), Some(35.0));
        // Interpolated: 25th falls between 20 and 35.
        let p25 = percentile(&xs, 25.0).unwrap();
        assert!((p25 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [50.0, 15.0, 40.0, 20.0, 35.0];
        assert_eq!(percentile(&xs, 50.0), Some(35.0));
    }

    #[test]
    fn percentile_empty_and_single() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &inv).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_sample_is_none() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[0.5], &[0.1]), None);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_over_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
