//! Numerically stable log-domain arithmetic.
//!
//! The Surveyor posterior `Pr(D_i | C+_i, C-_i)` multiplies Poisson
//! likelihoods whose linear-domain values underflow for realistic counts
//! (hundreds of statements). All model math therefore runs in the log
//! domain, built on the primitives in this module.

/// Natural log of `2 * pi`, used by the Stirling expansion.
const LN_TWO_PI: f64 = 1.837_877_066_409_345_3;

/// `ln(Gamma(x))` for `x > 0`, via the Lanczos approximation (g = 7, n = 9).
///
/// Accurate to roughly 1e-13 relative error over the range used by the
/// workspace (factorials of statement counts). Panics in debug builds on
/// non-positive input; returns `f64::INFINITY` for `x == 0` in release
/// builds, matching the pole of the Gamma function.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x >= 0.0, "ln_gamma requires non-negative input, got {x}");
    if x == 0.0 {
        return f64::INFINITY;
    }
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Gamma(x) * Gamma(1 - x) = pi / sin(pi x).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i as f64) + 1.0);
    }
    let t = x + 7.5;
    0.5 * LN_TWO_PI + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)`, exact-table for small `n`, `ln_gamma` beyond.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact values for n <= 20 avoid both table-build cost and rounding.
    const SMALL: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5_040.0,
        40_320.0,
        362_880.0,
        3_628_800.0,
        39_916_800.0,
        479_001_600.0,
        6_227_020_800.0,
        87_178_291_200.0,
        1_307_674_368_000.0,
        20_922_789_888_000.0,
        355_687_428_096_000.0,
        6_402_373_705_728_000.0,
        121_645_100_408_832_000.0,
        2_432_902_008_176_640_000.0,
    ];
    if n <= 20 {
        SMALL[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Numerically stable `ln(exp(a) + exp(b))`.
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Numerically stable `ln(sum_i exp(xs[i]))` over a slice.
///
/// Returns `f64::NEG_INFINITY` for an empty slice (the log of zero mass).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Converts a pair of unnormalized log-weights into the probability of the
/// first one: `exp(a) / (exp(a) + exp(b))`, computed stably.
///
/// This is the work-horse of the Surveyor E-step, where `a` and `b` are the
/// log joint likelihoods of the positive and negative dominant opinion.
pub fn normalize_pair(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY && b == f64::NEG_INFINITY {
        return 0.5;
    }
    // 1 / (1 + exp(b - a)) without overflow in either direction.
    let d = b - a;
    if d > 0.0 {
        let e = (-d).exp();
        e / (1.0 + e)
    } else {
        1.0 / (1.0 + d.exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Gamma(1) = 1, Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Gamma(1.5) = sqrt(pi)/2.
        let expected = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!(close(ln_gamma(1.5), expected, 1e-12));
    }

    #[test]
    fn ln_factorial_small_exact() {
        for n in 0..=20u64 {
            let exact: f64 = (1..=n).map(|k| k as f64).product::<f64>().max(1.0);
            assert!(close(ln_factorial(n), exact.ln(), 1e-12), "n={n}");
        }
    }

    #[test]
    fn ln_factorial_continuous_at_table_boundary() {
        // ln(21!) via table-free path must match ln(20!) + ln(21).
        let via_gamma = ln_factorial(21);
        let via_table = ln_factorial(20) + 21.0_f64.ln();
        assert!(close(via_gamma, via_table, 1e-12));
    }

    #[test]
    fn ln_factorial_large_is_finite_and_monotone() {
        let mut prev = ln_factorial(1_000);
        for n in [10_000u64, 100_000, 1_000_000] {
            let v = ln_factorial(n);
            assert!(v.is_finite());
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn log_add_exp_basic() {
        let v = log_add_exp(0.0, 0.0); // ln(2)
        assert!(close(v, std::f64::consts::LN_2, 1e-12));
        assert_eq!(log_add_exp(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(log_add_exp(3.0, f64::NEG_INFINITY), 3.0);
    }

    #[test]
    fn log_add_exp_extreme_gap() {
        // exp(-800) underflows, but the stable form returns the max.
        let v = log_add_exp(0.0, -800.0);
        assert!(close(v, 0.0, 1e-12));
    }

    #[test]
    fn log_sum_exp_matches_direct_when_safe() {
        let xs: [f64; 4] = [0.1, -0.5, 1.2, 0.0];
        let direct: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!(close(log_sum_exp(&xs), direct, 1e-12));
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn normalize_pair_symmetry_and_bounds() {
        assert!(close(normalize_pair(0.0, 0.0), 0.5, 1e-12));
        let p = normalize_pair(-3.0, -5.0);
        let q = normalize_pair(-5.0, -3.0);
        assert!(close(p + q, 1.0, 1e-12));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn normalize_pair_extreme_inputs() {
        assert!(normalize_pair(0.0, -1e9) > 0.999_999);
        assert!(normalize_pair(-1e9, 0.0) < 1e-6);
        assert_eq!(normalize_pair(f64::NEG_INFINITY, f64::NEG_INFINITY), 0.5);
    }
}
