//! # Surveyor — mining subjective properties on the Web
//!
//! A production-quality Rust reproduction of *Mining Subjective Properties
//! on the Web* (Trummer, Halevy, Lee, Sarawagi, Gupta — SIGMOD 2015).
//!
//! Surveyor decides, for entity-property pairs like *(kitten, cute)* or
//! *(San Francisco, big)*, whether the **dominant opinion** among Web
//! authors applies the property to the entity. Instead of majority-voting
//! extracted statements — which fails under *polarity bias* (people rarely
//! write "X is not cute") and *occurrence bias* (big cities get written
//! about more) — it fits, per (type, property) combination, a Bayesian
//! model of author behavior with closed-form EM, then infers each entity's
//! opinion from its statement counts (including the all-zero counts of
//! never-mentioned entities).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use surveyor::prelude::*;
//!
//! // A tiny knowledge base.
//! let mut b = KnowledgeBaseBuilder::new();
//! let animal = b.add_type("animal", &["animal"], &[]);
//! b.add_entity("Kitten", animal).finish();
//! b.add_entity("Tiger", animal).finish();
//! let kb = Arc::new(b.build());
//!
//! // A synthetic Web corpus over it (in production this would be a real
//! // annotated snapshot).
//! let world = WorldBuilder::new(kb.clone(), 42)
//!     .domain("animal", Property::adjective("cute"), DomainParams::default())
//!     .build();
//! let generator = CorpusGenerator::new(world, CorpusConfig::default());
//!
//! // Run Algorithm 1 end to end.
//! let surveyor = Surveyor::new(kb, SurveyorConfig { rho: 5, ..Default::default() });
//! let output = surveyor.run(&CorpusSource::new(&generator));
//! for triple in output.triples() {
//!     println!("{} {} {}", triple.entity, triple.property, triple.polarity);
//! }
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | `surveyor-prob` | Poisson/Zipf distributions, log-space math, stats |
//! | `surveyor-kb` | knowledge base (entities, types, aliases, attributes) |
//! | `surveyor-nlp` | tokenizer, POS tagger, dependency parser, entity tagger |
//! | `surveyor-corpus` | generative Web-snapshot simulator |
//! | `surveyor-extract` | Figure 4 patterns, polarity, counters, shard runner |
//! | `surveyor-model` | Bayesian user model, EM, baselines |
//! | `surveyor-obs` | metrics registry, phase spans, run reports |
//! | `surveyor-crowd` | AMT worker-panel simulator |
//! | `surveyor-wire` | versioned binary snapshot format (FORMAT.md) |
//! | `surveyor` (this) | Algorithm 1 orchestration and the public API |
//!
//! ## Observability
//!
//! Attach a [`obs::MetricsRegistry`] with [`Surveyor::with_observer`] to
//! record per-phase wall time, extraction counters, and per-combination
//! EM convergence telemetry, then snapshot a versioned JSON run report:
//!
//! ```
//! use std::sync::Arc;
//! use surveyor::obs::MetricsRegistry;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! // let surveyor = Surveyor::new(kb, config).with_observer(registry.clone());
//! // surveyor.run(&source);
//! let report = registry.report();
//! println!("{}", report.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incremental;
pub mod objective;
pub mod pipeline;
pub mod snapshot;
pub mod source;
pub mod store;

pub use incremental::{UpdateOutcome, UpdateStats, WarmStart};
pub use objective::{adjudicate_with_link, link_objective, LinkDirection, ObjectiveLink};
pub use pipeline::{
    DomainResult, OpinionTriple, Surveyor, SurveyorConfig, SurveyorOutput, SurveyorRun,
};
pub use snapshot::{
    load_snapshot, load_snapshot_with_state, output_from_snapshot, save_snapshot,
    save_snapshot_with_state, snapshot_output, snapshot_output_with_state, SnapshotError,
};
pub use source::{CorpusSource, UnknownRegion};
pub use store::{CombinationBlock, StoredOpinion, SubjectiveKb};
pub use surveyor_extract::{
    FailurePolicy, FallibleShardSource, Fault, FaultInjector, FaultPlan, QuarantinedShard,
    RetryPolicy, RunError, ShardCoverage, ShardError, ShardSubset,
};

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::pipeline::{Surveyor, SurveyorConfig, SurveyorOutput, SurveyorRun};
    pub use crate::source::{CorpusSource, UnknownRegion};
    pub use surveyor_corpus::{
        CorpusConfig, CorpusGenerator, DomainParams, OpinionRule, PopularityRule, World,
        WorldBuilder,
    };
    pub use surveyor_extract::{ExtractionConfig, PatternVersion};
    pub use surveyor_extract::{
        FailurePolicy, FaultInjector, FaultPlan, RetryPolicy, RunError, ShardCoverage, ShardSubset,
    };
    pub use surveyor_kb::{EntityId, KnowledgeBase, KnowledgeBaseBuilder, Property, TypeId};
    pub use surveyor_model::{Decision, EmConfig, ModelParams, OpinionModel, SurveyorModel};
    pub use surveyor_obs::{MetricsRegistry, RunReport};
}

// Re-export the subsystem crates under stable names.
pub use surveyor_corpus as corpus;
pub use surveyor_crowd as crowd;
pub use surveyor_extract as extract;
pub use surveyor_kb as kb;
pub use surveyor_model as model;
pub use surveyor_nlp as nlp;
pub use surveyor_obs as obs;
pub use surveyor_prob as prob;
pub use surveyor_wire as wire;
