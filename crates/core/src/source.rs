//! Adapter exposing a [`CorpusGenerator`] as an extraction
//! [`ShardSource`].
//!
//! The corpus crate deliberately knows nothing about extraction; this thin
//! adapter generates and annotates shards on demand so the parallel runner
//! can pull them without materializing the whole snapshot.

use std::borrow::Cow;
use std::fmt;
use surveyor_corpus::CorpusGenerator;
use surveyor_extract::ShardSource;
use surveyor_nlp::{AnnotatedDocument, Lexicon};

/// A region name that does not exist in the generator's config. Carries
/// the known region names so callers (notably the CLI) can tell the user
/// what would have worked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownRegion {
    /// The name that failed to resolve.
    pub requested: String,
    /// Every region the generator does know, in config order.
    pub known: Vec<String>,
}

impl fmt::Display for UnknownRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown region: {} (known regions: {})",
            self.requested,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownRegion {}

/// Shard source over a corpus generator, optionally restricted to one
/// region (the §2 region-specific mode).
#[derive(Debug)]
pub struct CorpusSource<'a> {
    generator: &'a CorpusGenerator,
    lexicon: Lexicon,
    region: Option<u32>,
}

impl<'a> CorpusSource<'a> {
    /// A source over all regions.
    pub fn new(generator: &'a CorpusGenerator) -> Self {
        Self {
            generator,
            lexicon: generator.lexicon(),
            region: None,
        }
    }

    /// A source restricted to the named region, or [`UnknownRegion`]
    /// (listing the regions that do exist) when the name doesn't resolve.
    pub fn try_for_region(
        generator: &'a CorpusGenerator,
        region: &str,
    ) -> Result<Self, UnknownRegion> {
        let Some(region_index) = generator.region_index(region) else {
            return Err(UnknownRegion {
                requested: region.to_owned(),
                known: generator
                    .config()
                    .regions
                    .iter()
                    .map(|r| r.name.clone())
                    .collect(),
            });
        };
        Ok(Self {
            generator,
            lexicon: generator.lexicon(),
            region: Some(region_index),
        })
    }
}

impl ShardSource for CorpusSource<'_> {
    fn shard_count(&self) -> usize {
        self.generator.shard_count()
    }

    fn shard(&self, index: usize) -> Cow<'_, [AnnotatedDocument]> {
        Cow::Owned(
            self.generator
                .shard_annotated(index, &self.lexicon, self.region),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use surveyor_corpus::{CorpusConfig, DomainParams, WorldBuilder};
    use surveyor_kb::{KnowledgeBaseBuilder, Property};

    fn generator() -> CorpusGenerator {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        b.add_entity("Kitten", animal).finish();
        b.add_entity("Tiger", animal).finish();
        let kb = Arc::new(b.build());
        let world = WorldBuilder::new(kb, 3)
            .domain(
                "animal",
                Property::adjective("cute"),
                DomainParams::default(),
            )
            .build();
        CorpusGenerator::new(world, CorpusConfig::default())
    }

    #[test]
    fn adapter_exposes_all_shards() {
        let g = generator();
        let source = CorpusSource::new(&g);
        assert_eq!(source.shard_count(), g.shard_count());
        let docs = source.shard(0);
        assert!(!docs.is_empty());
    }

    #[test]
    fn try_for_region_lists_known_regions() {
        let g = generator();
        let err = CorpusSource::try_for_region(&g, "atlantis").unwrap_err();
        assert_eq!(err.requested, "atlantis");
        assert_eq!(err.known, vec!["global"]);
        assert_eq!(
            err.to_string(),
            "unknown region: atlantis (known regions: global)"
        );
        for name in &err.known {
            assert!(CorpusSource::try_for_region(&g, name).is_ok());
        }
    }
}
