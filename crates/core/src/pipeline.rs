//! Algorithm 1: the end-to-end Surveyor pipeline.
//!
//! ```text
//! function Surveyor(W, KB, ρ):
//!     iterate over documents in W to extract evidence
//!     for ⟨type, property⟩ with at least ρ extractions:
//!         learn model parameters (EM)
//!         for entity of type:
//!             prb = Pr(property applies)
//!             emit ⟨entity, property, +⟩ if prb > ½
//!             emit ⟨entity, property, −⟩ if prb < ½
//! ```

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use surveyor_extract::{
    run_sharded_fault_tolerant, run_sharded_full, run_sharded_observed, EvidenceTable,
    ExtractionConfig, FailurePolicy, FallibleShardSource, GroupKey, GroupedEvidence,
    ProvenanceTable, RetryPolicy, RunError, ShardCoverage, ShardSource,
};
use surveyor_kb::{EntityId, KnowledgeBase, Property, PropertyId};
use surveyor_model::{
    decide, posterior_positive, Decision, EmConfig, EmFit, ModelDecision, ObservedCounts,
    SurveyorModel,
};
use surveyor_obs::{EmGroupReport, FaultSummary, MetricsRegistry};

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyorConfig {
    /// Occurrence threshold ρ: minimum extracted statements for a
    /// (type, property) combination to be modeled (the paper used 100).
    pub rho: u64,
    /// EM configuration.
    pub em: EmConfig,
    /// Extraction pattern configuration (defaults to the shipped V4).
    pub extraction: ExtractionConfig,
    /// Worker threads for the sharded extraction phase.
    pub threads: usize,
}

impl Default for SurveyorConfig {
    fn default() -> Self {
        Self {
            rho: 100,
            em: EmConfig::default(),
            extraction: ExtractionConfig::paper_final(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// A decided entity-property association — one output row of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpinionTriple {
    /// The entity's canonical name.
    pub entity: String,
    /// The property surface form.
    pub property: String,
    /// `+` or `-`.
    pub polarity: char,
    /// The posterior probability behind the decision.
    pub probability: f64,
}

/// Per-combination result: the fitted model and all entity decisions.
#[derive(Debug, Clone)]
pub struct DomainResult {
    /// The (type, property) combination.
    pub key: GroupKey,
    /// The EM fit for the combination.
    pub fit: EmFit,
    /// Decisions for every entity of the type (not just mentioned ones),
    /// parallel to `kb.entities_of_type(key.type_id)`.
    pub decisions: Vec<(EntityId, ModelDecision)>,
}

/// Everything one interpretation worker accumulated, handed back by value
/// over the join handle: rank-tagged results plus locally-buffered timing,
/// so the combination loop shares nothing but the claim cursor.
#[derive(Debug, Default)]
struct ModelWorkerOutcome {
    results: Vec<(usize, DomainResult)>,
    em_time: Duration,
    decide_time: Duration,
    groups_fitted: u64,
    decisions_made: u64,
}

/// Full pipeline output.
#[derive(Debug, Clone)]
pub struct SurveyorOutput {
    /// The merged evidence table from extraction.
    pub evidence: EvidenceTable,
    /// Supporting-document samples per pair (empty when the output was
    /// built from pre-extracted evidence).
    pub provenance: ProvenanceTable,
    /// Evidence grouped by (type, property).
    pub grouped: GroupedEvidence,
    /// One result per combination above the threshold.
    pub results: Vec<DomainResult>,
    index: FxHashMap<(EntityId, PropertyId), ModelDecision>,
    /// The knowledge base the run decided over — kept so
    /// [`triples`](Self::triples) can resolve canonical entity names.
    kb: Arc<KnowledgeBase>,
    /// Decided-pair count, cached at construction instead of recounted on
    /// every call.
    decided: usize,
}

impl SurveyorOutput {
    /// Reassembles an output from its portable parts (the snapshot load
    /// path): the decision index and decided-pair count are rebuilt from
    /// `results`, exactly as [`Surveyor::run_on_evidence`] builds them.
    pub(crate) fn from_parts(
        evidence: EvidenceTable,
        provenance: ProvenanceTable,
        grouped: GroupedEvidence,
        results: Vec<DomainResult>,
        kb: Arc<KnowledgeBase>,
    ) -> Self {
        let decisions_total: usize = results.iter().map(|r| r.decisions.len()).sum();
        let mut index: FxHashMap<(EntityId, PropertyId), ModelDecision> =
            FxHashMap::with_capacity_and_hasher(decisions_total, Default::default());
        let mut decided = 0usize;
        for result in &results {
            for (e, d) in &result.decisions {
                if d.decision.is_solved() {
                    decided += 1;
                }
                index.insert((*e, result.key.property), *d);
            }
        }
        Self {
            evidence,
            provenance,
            grouped,
            results,
            index,
            kb,
            decided,
        }
    }

    /// The knowledge base the run decided over.
    pub fn kb(&self) -> &Arc<KnowledgeBase> {
        &self.kb
    }

    /// The decision for an entity-property pair, if its combination was
    /// modeled. Allocation-free: the property is looked up in the interner
    /// (a never-extracted property cannot have an opinion).
    pub fn opinion(&self, entity: EntityId, property: &Property) -> Option<ModelDecision> {
        let id = PropertyId::lookup(property)?;
        self.opinion_id(entity, id)
    }

    /// Like [`opinion`](Self::opinion) for an already-interned property.
    pub fn opinion_id(&self, entity: EntityId, property: PropertyId) -> Option<ModelDecision> {
        self.index.get(&(entity, property)).copied()
    }

    /// All decided triples (skips unsolved entities), in deterministic
    /// order. The output vector is pre-sized from the cached decided-pair
    /// count, and entity names come straight from the knowledge base (a
    /// single buffer copy each) instead of the `Display` machinery.
    pub fn triples(&self) -> Vec<OpinionTriple> {
        let mut out = Vec::with_capacity(self.decided);
        for result in &self.results {
            // One resolve per combination, not one `to_string` per triple.
            let property = result.key.property.resolve().to_string();
            for (entity, decision) in &result.decisions {
                let polarity = match decision.decision {
                    Decision::Positive => '+',
                    Decision::Negative => '-',
                    Decision::Unsolved => continue,
                };
                out.push(OpinionTriple {
                    entity: self.kb.entity(*entity).name().to_owned(),
                    property: property.clone(),
                    polarity,
                    probability: decision.probability.unwrap_or(0.5),
                });
            }
        }
        out
    }

    /// Number of modeled combinations.
    pub fn modeled_combinations(&self) -> usize {
        self.results.len()
    }

    /// Total decided entity-property pairs (counted once at construction).
    pub fn decided_pairs(&self) -> usize {
        self.decided
    }
}

/// A fault-tolerant pipeline run: the full output plus the extraction
/// shard accounting behind it. Produced by [`Surveyor::try_run`].
#[derive(Debug, Clone)]
pub struct SurveyorRun {
    /// The pipeline output over every surviving shard.
    pub output: SurveyorOutput,
    /// What extraction attempted, retried, and lost.
    pub coverage: ShardCoverage,
}

/// The Surveyor pipeline over a fixed knowledge base.
#[derive(Debug, Clone)]
pub struct Surveyor {
    kb: Arc<KnowledgeBase>,
    config: SurveyorConfig,
    obs: Option<Arc<MetricsRegistry>>,
}

impl Surveyor {
    /// Creates a pipeline.
    pub fn new(kb: Arc<KnowledgeBase>, config: SurveyorConfig) -> Self {
        Self {
            kb,
            config,
            obs: None,
        }
    }

    /// Attaches a metrics registry: subsequent runs record the five
    /// pipeline phases (`extract`, `group`, `model`, `decide`, `index`),
    /// extraction counters, and per-combination EM telemetry into it.
    /// Output is identical with or without an observer; overhead is a
    /// handful of clock reads per combination plus one counter flush per
    /// worker.
    pub fn with_observer(mut self, obs: Arc<MetricsRegistry>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The attached metrics registry, if any.
    pub fn observer(&self) -> Option<&Arc<MetricsRegistry>> {
        self.obs.as_ref()
    }

    /// The knowledge base.
    pub fn kb(&self) -> &Arc<KnowledgeBase> {
        &self.kb
    }

    /// The configuration.
    pub fn config(&self) -> &SurveyorConfig {
        &self.config
    }

    /// Runs the full pipeline: sharded extraction over `source`, grouping,
    /// threshold filtering, per-combination EM, and decisions.
    pub fn run<S: ShardSource>(&self, source: &S) -> SurveyorOutput {
        let extraction = match &self.obs {
            Some(obs) => {
                let docs_before = obs.counter_value("extract.documents");
                let mut span = obs.span("extract");
                let extraction = run_sharded_observed(
                    source,
                    &self.kb,
                    &self.config.extraction,
                    self.config.threads,
                    obs,
                );
                span.set_items(obs.counter_value("extract.documents") - docs_before);
                extraction
            }
            None => run_sharded_full(
                source,
                &self.kb,
                &self.config.extraction,
                self.config.threads,
            ),
        };
        let mut output = self.run_on_evidence(extraction.evidence);
        output.provenance = extraction.provenance;
        output
    }

    /// Runs the full pipeline under a failure policy: extraction shards
    /// that fail are retried per `retry` and, if the budget is exhausted,
    /// handled per `policy` — aborting the run ([`FailurePolicy::FailFast`])
    /// or quarantining the shard and continuing on the survivors
    /// ([`FailurePolicy::Degrade`]).
    ///
    /// With an observer attached, the run additionally stamps a
    /// [`FaultSummary`] into the registry so the resulting report carries
    /// the coverage, retry, and quarantine accounting — a degraded answer
    /// is never silent.
    ///
    /// For an infallible source and `FailurePolicy::FailFast` with
    /// [`RetryPolicy::no_retries`], the output is bit-identical to
    /// [`run`](Self::run).
    pub fn try_run<F: FallibleShardSource>(
        &self,
        source: &F,
        retry: &RetryPolicy,
        policy: &FailurePolicy,
    ) -> Result<SurveyorRun, RunError> {
        let outcome = match &self.obs {
            Some(obs) => {
                let docs_before = obs.counter_value("extract.documents");
                let mut span = obs.span("extract");
                let outcome = run_sharded_fault_tolerant(
                    source,
                    &self.kb,
                    &self.config.extraction,
                    self.config.threads,
                    retry,
                    policy,
                    Some(obs),
                )?;
                span.set_items(obs.counter_value("extract.documents") - docs_before);
                obs.record_fault_summary(FaultSummary {
                    coverage: outcome.coverage.fraction(),
                    retries: outcome.coverage.retries,
                    quarantined_shards: outcome.coverage.quarantined_shards(),
                });
                outcome
            }
            None => run_sharded_fault_tolerant(
                source,
                &self.kb,
                &self.config.extraction,
                self.config.threads,
                retry,
                policy,
                None,
            )?,
        };
        let mut output = self.run_on_evidence(outcome.output.evidence);
        output.provenance = outcome.output.provenance;
        Ok(SurveyorRun {
            output,
            coverage: outcome.coverage,
        })
    }

    /// Runs the interpretation phase on pre-extracted evidence (Algorithm 1
    /// lines 5–12). Useful when the same evidence is interpreted under
    /// several model configurations.
    ///
    /// Combinations above ρ are independent of each other, so they fan out
    /// over `config.threads` workers the same way extraction shards do: a
    /// dynamic atomic cursor balances skewed group sizes, each worker reuses
    /// one counts scratch buffer across combinations, and each result comes
    /// back rank-tagged by value over the join — a final sort by rank makes
    /// output order (and therefore the whole output) identical for any
    /// worker count, and no lock is taken anywhere in the loop.
    pub fn run_on_evidence(&self, evidence: EvidenceTable) -> SurveyorOutput {
        let grouped = {
            let mut span = self.obs.as_deref().map(|obs| obs.span("group"));
            let grouped =
                GroupedEvidence::from_table_parallel(&evidence, &self.kb, self.config.threads);
            if let Some(span) = span.as_mut() {
                span.set_items(evidence.total_statements());
            }
            if let Some(obs) = self.obs.as_deref() {
                obs.add("group.pairs", evidence.pair_count() as u64);
                obs.add("group.combinations", grouped.len() as u64);
            }
            grouped
        };
        let model = SurveyorModel::with_config(self.config.em.clone());
        let combinations: Vec<(&GroupKey, _)> = grouped.above_threshold(self.config.rho).collect();

        let cursor = AtomicUsize::new(0);
        let workers = self.config.threads.max(1).min(combinations.len().max(1));
        let timed = self.obs.is_some();

        // Per-worker results ride back by value over the join handle as
        // (rank, result) pairs; nothing in the combination loop touches
        // shared state beyond the claim cursor. EM telemetry is likewise
        // buffered in the result (the fit survives inside `DomainResult`)
        // and flushed post-join in rank order, so the registry's group
        // report rows come out in the same order for any worker count.
        let outcomes = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        // Per-worker scratch, reused across combinations.
                        let mut counts: Vec<ObservedCounts> = Vec::new();
                        let mut outcome = ModelWorkerOutcome::default();
                        loop {
                            let rank = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(key, group)) = combinations.get(rank) else {
                                break;
                            };
                            let entities = self.kb.entities_of_type(key.type_id);
                            counts.clear();
                            counts.extend(entities.iter().map(|&e| {
                                let c = group.counts(e);
                                ObservedCounts::new(c.positive, c.negative)
                            }));
                            let fit_start = timed.then(Instant::now); // lint:allow(no-wall-clock): feeds the obs phase report only, never the output
                            let fit = model.fit_group(&counts);
                            if let Some(start) = fit_start {
                                outcome.em_time += start.elapsed();
                                outcome.groups_fitted += 1;
                            }
                            let decide_start = timed.then(Instant::now); // lint:allow(no-wall-clock): feeds the obs phase report only, never the output
                            let decisions: Vec<(EntityId, ModelDecision)> = entities
                                .iter()
                                .zip(&counts)
                                .map(|(&e, &c)| (e, decide(posterior_positive(c, &fit.params))))
                                .collect();
                            if let Some(start) = decide_start {
                                outcome.decide_time += start.elapsed();
                                outcome.decisions_made += decisions.len() as u64;
                            }
                            outcome.results.push((
                                rank,
                                DomainResult {
                                    key: *key,
                                    fit,
                                    decisions,
                                },
                            ));
                        }
                        outcome
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("interpretation worker panicked")) // lint:allow(no-panic-in-lib): a worker panic is a pipeline bug; the infallible API propagates it
                .collect::<Vec<ModelWorkerOutcome>>()
        })
        .expect("interpretation worker panicked"); // lint:allow(no-panic-in-lib): a worker panic is a pipeline bug; the infallible API propagates it

        let mut ranked: Vec<(usize, DomainResult)> = Vec::with_capacity(combinations.len());
        for outcome in outcomes {
            if let Some(obs) = self.obs.as_deref() {
                // Summed worker CPU time, not wall time: with N workers the
                // "model" phase can exceed elapsed time.
                obs.record_phase("model", outcome.em_time, outcome.groups_fitted);
                obs.record_phase("decide", outcome.decide_time, outcome.decisions_made);
            }
            ranked.extend(outcome.results);
        }
        ranked.sort_by_key(|&(rank, _)| rank);
        let results: Vec<DomainResult> = ranked.into_iter().map(|(_, result)| result).collect();
        debug_assert_eq!(results.len(), combinations.len());
        if let Some(obs) = self.obs.as_deref() {
            for result in &results {
                self.record_em_telemetry(obs, &result.key, result.decisions.len(), &result.fit);
            }
        }

        let mut index_span = self.obs.as_deref().map(|obs| obs.span("index"));
        // Every decision lands in the index exactly once, so the capacity
        // is known up front — no rehash during the build.
        let decisions_total: usize = results.iter().map(|r| r.decisions.len()).sum();
        let mut index: FxHashMap<(EntityId, PropertyId), ModelDecision> =
            FxHashMap::with_capacity_and_hasher(decisions_total, Default::default());
        let mut decided = 0usize;
        for result in &results {
            for (e, d) in &result.decisions {
                if d.decision.is_solved() {
                    decided += 1;
                }
                index.insert((*e, result.key.property), *d);
            }
        }
        if let Some(span) = index_span.as_mut() {
            span.set_items(index.len() as u64);
        }
        drop(index_span);

        SurveyorOutput {
            evidence,
            provenance: ProvenanceTable::default(),
            grouped,
            results,
            index,
            kb: self.kb.clone(),
            decided,
        }
    }

    /// Feeds one combination's EM fit into the registry: the iteration
    /// histogram, a convergence-reason counter, and the full per-group
    /// report row (traces included).
    pub(crate) fn record_em_telemetry(
        &self,
        obs: &MetricsRegistry,
        key: &GroupKey,
        entities: usize,
        fit: &EmFit,
    ) {
        obs.observe("em.iterations", fit.iterations as f64);
        obs.add(&format!("em.converged.{}", fit.converged.as_str()), 1);
        obs.record_em_group(EmGroupReport {
            type_name: self.kb.entity_type(key.type_id).name().to_owned(),
            property: key.property.resolve().to_string(),
            entities: entities as u64,
            iterations: fit.iterations as u64,
            converged: fit.converged.as_str().to_owned(),
            log_likelihood: fit.log_likelihood,
            final_delta: fit.delta_trace.last().copied().unwrap_or(0.0),
            q_trace: fit.q_trace.clone(),
            delta_trace: fit.delta_trace.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surveyor_extract::{Polarity, Statement};
    use surveyor_kb::KnowledgeBaseBuilder;

    fn kb() -> Arc<KnowledgeBase> {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        for name in ["Kitten", "Tiger", "Spider", "Puppy", "Rock"] {
            b.add_entity(name, animal).finish();
        }
        Arc::new(b.build())
    }

    fn evidence(kb: &KnowledgeBase) -> EvidenceTable {
        let cute = Property::adjective("cute");
        let mut table = EvidenceTable::new();
        let add = |table: &mut EvidenceTable, name: &str, pos: u64, neg: u64| {
            let e = kb.entity_by_name(name).unwrap();
            for _ in 0..pos {
                table.add(&Statement::new(e, &cute, Polarity::Positive));
            }
            for _ in 0..neg {
                table.add(&Statement::new(e, &cute, Polarity::Negative));
            }
        };
        add(&mut table, "Kitten", 50, 2);
        add(&mut table, "Puppy", 40, 1);
        add(&mut table, "Tiger", 4, 8);
        add(&mut table, "Spider", 1, 10);
        // "Rock" never mentioned.
        table
    }

    #[test]
    fn algorithm1_decides_all_entities_above_threshold() {
        let kb = kb();
        let config = SurveyorConfig {
            rho: 50,
            ..Default::default()
        };
        let surveyor = Surveyor::new(kb.clone(), config);
        let output = surveyor.run_on_evidence(evidence(&kb));
        assert_eq!(output.modeled_combinations(), 1);
        let cute = Property::adjective("cute");
        let kitten = kb.entity_by_name("Kitten").unwrap();
        let spider = kb.entity_by_name("Spider").unwrap();
        let rock = kb.entity_by_name("Rock").unwrap();
        assert_eq!(
            output.opinion(kitten, &cute).unwrap().decision,
            Decision::Positive
        );
        assert_eq!(
            output.opinion(spider, &cute).unwrap().decision,
            Decision::Negative
        );
        // The never-mentioned entity still gets a decision (negative: cute
        // entities are chatty in this evidence).
        assert_eq!(
            output.opinion(rock, &cute).unwrap().decision,
            Decision::Negative
        );
        assert_eq!(output.decided_pairs(), 5);
    }

    #[test]
    fn threshold_suppresses_sparse_combinations() {
        let kb = kb();
        let config = SurveyorConfig {
            rho: 1_000,
            ..Default::default()
        };
        let surveyor = Surveyor::new(kb.clone(), config);
        let output = surveyor.run_on_evidence(evidence(&kb));
        assert_eq!(output.modeled_combinations(), 0);
        let cute = Property::adjective("cute");
        let kitten = kb.entity_by_name("Kitten").unwrap();
        assert!(output.opinion(kitten, &cute).is_none());
    }

    #[test]
    fn triples_skip_unsolved_and_format_polarity() {
        let kb = kb();
        let surveyor = Surveyor::new(
            kb.clone(),
            SurveyorConfig {
                rho: 10,
                ..Default::default()
            },
        );
        let output = surveyor.run_on_evidence(evidence(&kb));
        let triples = output.triples();
        assert_eq!(triples.len(), output.decided_pairs());
        assert!(triples
            .iter()
            .all(|t| t.polarity == '+' || t.polarity == '-'));
        assert!(triples.iter().all(|t| t.property == "cute"));
        // Entities surface under their canonical KB names, not raw ids.
        assert!(triples
            .iter()
            .all(|t| kb.entity_by_name(&t.entity).is_some()));
    }
}
