//! Incremental mining: delta ingestion with dirty-group re-decide
//! (ROADMAP item 3).
//!
//! A mined [`SurveyorOutput`] plus a delta corpus — newly crawled shards,
//! or a replayed quarantine queue — updates in time proportional to the
//! *delta*, not the corpus:
//!
//! 1. Extraction runs only over the delta shards, through the existing
//!    parallel fault-tolerant runner.
//! 2. Evidence, provenance, and grouped tables merge by sorted
//!    `(entity, property)` / `(type, property)` key. Every merge is
//!    commutative, so the merged state equals a from-scratch mine of the
//!    concatenated corpus.
//! 3. Only combinations the delta touched ("dirty" groups) are re-fitted
//!    and re-decided. An untouched group's counts did not change, and EM
//!    is a pure function of the counts — so its previous [`DomainResult`]
//!    carries forward *byte-identically*, without re-running EM at all.
//!
//! Step 3 is where the asymptotics change: a from-scratch interpretation
//! phase is `O(groups)`, an update is `O(dirty groups)`. The guarantee the
//! bench (`bench incremental`) and `scripts/verify.sh` pin is that the
//! final snapshot is byte-identical to mining the concatenated corpus from
//! scratch, at every worker count, clean and under injected chaos.
//!
//! [`WarmStart::Seeded`] additionally seeds EM on dirty groups from the
//! previous fit instead of the multi-restart cold grid. That converges in
//! fewer iterations on small deltas but records different telemetry
//! (iteration counts, traces), so it is opt-in and never used by the
//! byte-identity gates.

use crate::pipeline::{DomainResult, Surveyor, SurveyorConfig, SurveyorOutput};
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use surveyor_extract::evidence::Group;
use surveyor_extract::{
    run_sharded_fault_tolerant, ExtractionOutput, FailurePolicy, FallibleShardSource, GroupKey,
    GroupedEvidence, RetryPolicy, RunError, ShardCoverage,
};
use surveyor_kb::EntityId;
use surveyor_model::{
    decide, posterior_positive, ModelDecision, ModelParams, ObservedCounts, SurveyorModel,
};
use surveyor_obs::FaultSummary;
use surveyor_wire::Fnv64;

/// How dirty groups are re-fitted during an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStart {
    /// Re-fit with the standard cold multi-restart EM — exactly what a
    /// from-scratch run would do, so the updated output is byte-identical
    /// to re-mining the concatenated corpus. The default, and the only
    /// mode the identity gates use.
    #[default]
    Exact,
    /// Seed a single EM run from the group's previous parameters; cold
    /// multi-restart only for groups with no previous fit. Fewer
    /// iterations on small deltas, but different telemetry — decisions
    /// may differ near the EM grid's tie boundaries.
    Seeded,
}

/// What an update did, beyond the output itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Modeled combinations after the update.
    pub groups_total: usize,
    /// Combinations the delta added evidence to (whether or not they
    /// cleared the threshold ρ).
    pub groups_dirty: usize,
    /// Modeled combinations carried forward without re-fitting.
    pub groups_carried: usize,
    /// Modeled combinations re-fitted and re-decided.
    pub groups_refit: usize,
    /// Entity-property pairs in the delta's evidence table.
    pub delta_pairs: usize,
    /// Statements the delta contributed.
    pub delta_statements: u64,
}

/// An incremental update's result: the merged output, the delta
/// extraction's shard accounting, and the dirty-group accounting.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The updated pipeline output over base ∪ delta.
    pub output: SurveyorOutput,
    /// What the delta extraction attempted, retried, and lost.
    pub coverage: ShardCoverage,
    /// Group-level accounting of the update.
    pub stats: UpdateStats,
}

impl SurveyorConfig {
    /// A digest of everything about this configuration that determines
    /// the mined output: ρ, the EM configuration, and the extraction
    /// configuration. Thread count is deliberately excluded — the
    /// pipeline is byte-identical across worker counts. Stored in a
    /// snapshot's `INCR` section so an updater can refuse a delta mined
    /// under different settings.
    pub fn digest(&self) -> u64 {
        let json = serde_json::to_string(&(self.rho, self.em.clone(), self.extraction))
            .expect("pipeline configuration serializes"); // lint:allow(no-panic-in-lib): plain structs of numbers and strings cannot fail to serialize
        let mut digest = Fnv64::new();
        digest.write(json.as_bytes()); // lint:allow(no-shared-lock-in-worker-loop): Fnv64 hashing, not a lock; once per config
        digest.finish()
    }
}

/// One dirty combination queued for re-fitting.
struct RefitTask<'a> {
    rank: usize,
    key: GroupKey,
    group: &'a Group,
    /// The previous fit's parameters, for [`WarmStart::Seeded`].
    seed: Option<ModelParams>,
}

impl Surveyor {
    /// Incrementally updates a previously mined output with a delta
    /// corpus, under the same fault-tolerance contract as
    /// [`try_run`](Self::try_run): delta shards are retried per `retry`
    /// and quarantined or aborted per `policy`.
    ///
    /// `base` must have been mined by this pipeline's configuration (same
    /// ρ, EM grid, and extraction patterns — see
    /// [`SurveyorConfig::digest`]); the caller is responsible for that
    /// check, which the CLI performs against the snapshot's `INCR`
    /// section.
    ///
    /// With [`WarmStart::Exact`], the returned output is byte-identical
    /// to running the pipeline from scratch over the concatenation of the
    /// base corpus and the delta's surviving shards.
    pub fn try_update<F: FallibleShardSource>(
        &self,
        base: SurveyorOutput,
        source: &F,
        retry: &RetryPolicy,
        policy: &FailurePolicy,
        warm: WarmStart,
    ) -> Result<UpdateOutcome, RunError> {
        let outcome = match self.observer() {
            Some(obs) => {
                let docs_before = obs.counter_value("extract.documents");
                let mut span = obs.span("extract");
                let outcome = run_sharded_fault_tolerant(
                    source,
                    self.kb(),
                    &self.config().extraction,
                    self.config().threads,
                    retry,
                    policy,
                    Some(obs),
                )?;
                span.set_items(obs.counter_value("extract.documents") - docs_before);
                obs.record_fault_summary(FaultSummary {
                    coverage: outcome.coverage.fraction(),
                    retries: outcome.coverage.retries,
                    quarantined_shards: outcome.coverage.quarantined_shards(),
                });
                outcome
            }
            None => run_sharded_fault_tolerant(
                source,
                self.kb(),
                &self.config().extraction,
                self.config().threads,
                retry,
                policy,
                None,
            )?,
        };
        let (output, stats) = self.apply_delta(base, outcome.output, warm);
        Ok(UpdateOutcome {
            output,
            coverage: outcome.coverage,
            stats,
        })
    }

    /// The merge-and-re-decide half of an update: folds already-extracted
    /// delta evidence into `base` and re-fits only the dirtied groups.
    /// [`try_update`](Self::try_update) calls this after delta
    /// extraction; tests use it directly to exercise the dirty-group
    /// logic without a corpus.
    pub fn apply_delta(
        &self,
        base: SurveyorOutput,
        delta: ExtractionOutput,
        warm: WarmStart,
    ) -> (SurveyorOutput, UpdateStats) {
        let config = self.config();
        let obs = self.observer().map(std::sync::Arc::as_ref);
        let delta_pairs = delta.evidence.pair_count();
        let delta_statements = delta.evidence.total_statements();

        // Group the delta alone first: its keys are exactly the dirty set.
        let delta_grouped = {
            let mut span = obs.map(|o| o.span("group"));
            let grouped =
                GroupedEvidence::from_table_parallel(&delta.evidence, self.kb(), config.threads);
            if let Some(span) = span.as_mut() {
                span.set_items(delta_statements);
            }
            grouped
        };
        let dirty: FxHashSet<GroupKey> = delta_grouped.iter().map(|(key, _)| *key).collect();

        // Merge the three tables; every merge is commutative, so the
        // result equals from-scratch extraction over base ∪ delta.
        let SurveyorOutput {
            mut evidence,
            mut provenance,
            mut grouped,
            results,
            ..
        } = base;
        evidence.merge(delta.evidence);
        provenance.merge(delta.provenance);
        grouped.merge(delta_grouped);

        let mut previous: FxHashMap<GroupKey, DomainResult> =
            results.into_iter().map(|r| (r.key, r)).collect();

        let (ranked, stats) = {
            let combinations: Vec<(&GroupKey, &Group)> =
                grouped.above_threshold(config.rho).collect();
            let groups_total = combinations.len();

            // Partition: clean groups with a previous result carry it
            // forward untouched (their counts did not change, and a clean
            // group cannot newly cross ρ); everything else is re-fitted.
            let mut carried: Vec<(usize, DomainResult)> = Vec::new();
            let mut refits: Vec<RefitTask<'_>> = Vec::new();
            for (rank, &(key, group)) in combinations.iter().enumerate() {
                let is_dirty = dirty.contains(key);
                match previous.remove(key) {
                    Some(result) if !is_dirty => carried.push((rank, result)),
                    prior => refits.push(RefitTask {
                        rank,
                        key: *key,
                        group,
                        seed: prior.map(|r| r.fit.params),
                    }),
                }
            }
            let stats = UpdateStats {
                groups_total,
                groups_dirty: dirty.len(),
                groups_carried: carried.len(),
                groups_refit: refits.len(),
                delta_pairs,
                delta_statements,
            };

            let mut ranked = self.refit_groups(&refits, warm);
            if let Some(obs) = obs {
                obs.add("update.groups_carried", stats.groups_carried as u64);
                obs.add("update.groups_refit", stats.groups_refit as u64);
                for (_, result) in &ranked {
                    self.record_em_telemetry(obs, &result.key, result.decisions.len(), &result.fit);
                }
            }
            ranked.extend(carried);
            ranked.sort_by_key(|&(rank, _)| rank);
            debug_assert_eq!(ranked.len(), groups_total);
            (ranked, stats)
        };
        let results: Vec<DomainResult> = ranked.into_iter().map(|(_, result)| result).collect();

        let output =
            SurveyorOutput::from_parts(evidence, provenance, grouped, results, self.kb().clone());
        (output, stats)
    }

    /// Re-fits the dirty combinations over the claim-cursor worker pool —
    /// the same shared-nothing pattern as
    /// [`run_on_evidence`](Self::run_on_evidence): results come back
    /// rank-tagged by value, so output order is worker-count independent.
    fn refit_groups(
        &self,
        refits: &[RefitTask<'_>],
        warm: WarmStart,
    ) -> Vec<(usize, DomainResult)> {
        if refits.is_empty() {
            return Vec::new();
        }
        let config = self.config();
        let obs = self.observer().map(std::sync::Arc::as_ref);
        let model = SurveyorModel::with_config(config.em.clone());
        let cursor = AtomicUsize::new(0);
        let workers = config.threads.max(1).min(refits.len());
        let timed = obs.is_some();

        let outcomes = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut counts: Vec<ObservedCounts> = Vec::new();
                        let mut results: Vec<(usize, DomainResult)> = Vec::new();
                        let mut em_time = Duration::ZERO;
                        let mut fitted = 0u64;
                        loop {
                            let slot = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(task) = refits.get(slot) else {
                                break;
                            };
                            let entities = self.kb().entities_of_type(task.key.type_id);
                            counts.clear();
                            counts.extend(entities.iter().map(|&e| {
                                let c = task.group.counts(e);
                                ObservedCounts::new(c.positive, c.negative)
                            }));
                            let fit_start = timed.then(Instant::now); // lint:allow(no-wall-clock): feeds the obs phase report only, never the output
                            let fit = match (warm, task.seed) {
                                (WarmStart::Seeded, Some(seed)) => {
                                    model.fit_group_warm(&counts, &seed)
                                }
                                _ => model.fit_group(&counts),
                            };
                            if let Some(start) = fit_start {
                                em_time += start.elapsed();
                                fitted += 1;
                            }
                            let decisions: Vec<(EntityId, ModelDecision)> = entities
                                .iter()
                                .zip(&counts)
                                .map(|(&e, &c)| (e, decide(posterior_positive(c, &fit.params))))
                                .collect();
                            results.push((
                                task.rank,
                                DomainResult {
                                    key: task.key,
                                    fit,
                                    decisions,
                                },
                            ));
                        }
                        (results, em_time, fitted)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("update worker panicked")) // lint:allow(no-panic-in-lib): a worker panic is a pipeline bug; the infallible API propagates it
                .collect::<Vec<_>>()
        })
        .expect("update worker panicked"); // lint:allow(no-panic-in-lib): a worker panic is a pipeline bug; the infallible API propagates it

        let mut ranked = Vec::with_capacity(refits.len());
        for (results, em_time, fitted) in outcomes {
            if let Some(obs) = obs {
                obs.record_phase("model", em_time, fitted);
            }
            ranked.extend(results);
        }
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use surveyor_extract::{EvidenceTable, Polarity, ProvenanceTable, Statement};
    use surveyor_kb::{KnowledgeBase, KnowledgeBaseBuilder, Property};

    fn kb() -> Arc<KnowledgeBase> {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        for name in ["Kitten", "Tiger", "Spider", "Puppy", "Rock"] {
            b.add_entity(name, animal).finish();
        }
        Arc::new(b.build())
    }

    fn add(
        table: &mut EvidenceTable,
        kb: &KnowledgeBase,
        name: &str,
        property: &Property,
        pos: u64,
        neg: u64,
    ) {
        let e = kb.entity_by_name(name).unwrap();
        for _ in 0..pos {
            table.add(&Statement::new(e, property, Polarity::Positive));
        }
        for _ in 0..neg {
            table.add(&Statement::new(e, property, Polarity::Negative));
        }
    }

    fn surveyor(kb: &Arc<KnowledgeBase>) -> Surveyor {
        Surveyor::new(
            kb.clone(),
            SurveyorConfig {
                rho: 30,
                ..Default::default()
            },
        )
    }

    fn base_evidence(kb: &KnowledgeBase) -> EvidenceTable {
        let cute = Property::adjective("cute");
        let tiny = Property::adjective("tiny");
        let mut table = EvidenceTable::new();
        add(&mut table, kb, "Kitten", &cute, 50, 2);
        add(&mut table, kb, "Puppy", &cute, 40, 1);
        add(&mut table, kb, "Tiger", &cute, 4, 8);
        add(&mut table, kb, "Spider", &tiny, 30, 3);
        add(&mut table, kb, "Kitten", &tiny, 20, 6);
        table
    }

    /// Delta touching only the "tiny" group, plus a brand-new "fierce"
    /// group that clears the threshold on its own.
    fn delta_evidence(kb: &KnowledgeBase) -> EvidenceTable {
        let tiny = Property::adjective("tiny");
        let fierce = Property::adjective("fierce");
        let mut table = EvidenceTable::new();
        add(&mut table, kb, "Spider", &tiny, 10, 1);
        add(&mut table, kb, "Tiger", &fierce, 35, 2);
        add(&mut table, kb, "Kitten", &fierce, 2, 10);
        table
    }

    fn delta_output(kb: &KnowledgeBase) -> ExtractionOutput {
        ExtractionOutput {
            evidence: delta_evidence(kb),
            provenance: ProvenanceTable::default(),
        }
    }

    fn combined(kb: &KnowledgeBase) -> EvidenceTable {
        let mut table = base_evidence(kb);
        table.merge(delta_evidence(kb));
        table
    }

    #[test]
    fn exact_update_matches_from_scratch_byte_identically() {
        let kb = kb();
        let surveyor = surveyor(&kb);
        let base = surveyor.run_on_evidence(base_evidence(&kb));
        let (updated, stats) = surveyor.apply_delta(base, delta_output(&kb), WarmStart::Exact);
        let scratch = surveyor.run_on_evidence(combined(&kb));
        assert_eq!(
            crate::snapshot::save_snapshot(&updated),
            crate::snapshot::save_snapshot(&scratch)
        );
        // "cute" untouched and carried; "tiny" dirtied; "fierce" new.
        assert_eq!(stats.groups_carried, 1);
        assert_eq!(stats.groups_refit, 2);
        assert_eq!(stats.groups_dirty, 2);
        assert_eq!(stats.groups_total, 3);
        assert!(stats.delta_statements > 0);
    }

    #[test]
    fn untouched_groups_skip_em_entirely() {
        let kb = kb();
        let surveyor = surveyor(&kb);
        let base = surveyor.run_on_evidence(base_evidence(&kb));
        let cute_fit = base
            .results
            .iter()
            .find(|r| r.key.property.resolve().to_string() == "cute")
            .unwrap()
            .fit
            .clone();
        let (updated, _) = surveyor.apply_delta(base, delta_output(&kb), WarmStart::Exact);
        let carried = updated
            .results
            .iter()
            .find(|r| r.key.property.resolve().to_string() == "cute")
            .unwrap();
        // Bit-identical carry-forward, traces included.
        assert_eq!(carried.fit.q_trace, cute_fit.q_trace);
        assert_eq!(
            carried.fit.log_likelihood.to_bits(),
            cute_fit.log_likelihood.to_bits()
        );
    }

    #[test]
    fn empty_delta_is_identity() {
        let kb = kb();
        let surveyor = surveyor(&kb);
        let base = surveyor.run_on_evidence(base_evidence(&kb));
        let bytes = crate::snapshot::save_snapshot(&base);
        let (updated, stats) = surveyor.apply_delta(
            base,
            ExtractionOutput {
                evidence: EvidenceTable::new(),
                provenance: ProvenanceTable::default(),
            },
            WarmStart::Exact,
        );
        assert_eq!(crate::snapshot::save_snapshot(&updated), bytes);
        assert_eq!(stats.groups_refit, 0);
        assert_eq!(stats.groups_dirty, 0);
        assert_eq!(stats.groups_carried, stats.groups_total);
    }

    #[test]
    fn seeded_update_decides_the_same_world() {
        let kb = kb();
        let surveyor = surveyor(&kb);
        let base = surveyor.run_on_evidence(base_evidence(&kb));
        let (updated, _) = surveyor.apply_delta(base, delta_output(&kb), WarmStart::Seeded);
        let scratch = surveyor.run_on_evidence(combined(&kb));
        // Telemetry differs (single warm run vs multi-restart), but on
        // this well-separated evidence the decisions agree.
        let triples = |o: &SurveyorOutput| {
            let mut t = o.triples();
            t.sort_by(|a, b| (&a.entity, &a.property).cmp(&(&b.entity, &b.property)));
            t.into_iter()
                .map(|t| (t.entity, t.property, t.polarity))
                .collect::<Vec<_>>()
        };
        assert_eq!(triples(&updated), triples(&scratch));
    }

    #[test]
    fn config_digest_ignores_threads_but_not_rho() {
        let a = SurveyorConfig {
            threads: 1,
            ..Default::default()
        };
        let b = SurveyorConfig {
            threads: 8,
            ..Default::default()
        };
        assert_eq!(a.digest(), b.digest());
        let c = SurveyorConfig {
            rho: 40,
            ..Default::default()
        };
        assert_ne!(a.digest(), c.digest());
    }
}
