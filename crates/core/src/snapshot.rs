//! Saving and loading mined worlds as `surveyor-wire` snapshots.
//!
//! [`save_snapshot`] flattens a [`SurveyorOutput`] — knowledge base,
//! evidence, provenance, fitted models, decisions — into the portable
//! binary format specified in `FORMAT.md`; [`load_snapshot`] rebuilds a
//! fully functional output (decision index included) without re-mining.
//! The round trip is exact: a loaded output produces byte-identical
//! stores, triples, and re-encoded snapshots.
//!
//! Process-local ids never cross this boundary. Properties travel as a
//! snapshot-local sorted table and are re-interned on load; `TypeId` and
//! `EntityId` are dense table indexes the rebuilt knowledge base assigns
//! identically.

use crate::pipeline::{DomainResult, SurveyorOutput};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use surveyor_extract::{
    EvidenceEntry, EvidenceTable, GroupKey, GroupedEvidence, ProvenanceEntry, ProvenanceTable,
};
use surveyor_kb::{EntityId, KnowledgeBaseBuilder, Property, PropertyId, TypeId};
use surveyor_model::{ConvergenceReason, Decision, EmFit, ModelDecision, ModelParams};
use surveyor_wire::{
    DecisionCode, DecisionGroupRow, DecisionRow, EvidenceRow, IncrementalState, ModelRow,
    ProvenanceRow, Snapshot, SnapshotEntity, SnapshotProperty, SnapshotType, WireError,
};

/// Why snapshot bytes could not be turned back into a pipeline output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The container or a record is malformed at the wire level.
    Wire(WireError),
    /// The wire structure is sound but the content is inconsistent — a
    /// dangling table index, an unknown code, an impossible parameter.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "{e}"),
            Self::Corrupt(detail) => write!(f, "corrupt snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Flattens a pipeline output into the portable snapshot model.
pub fn snapshot_output(output: &SurveyorOutput) -> Snapshot {
    let kb = output.kb();
    let evidence_entries = output.evidence.to_entries();
    let provenance_entries = output.provenance.to_entries();

    // The snapshot-local property table: every property referenced
    // anywhere, deduplicated and sorted by the resolved form. Indexes
    // into this table are the only property references on the wire —
    // process-local interner ids depend on thread interleaving.
    let mut table: BTreeMap<Property, u32> = BTreeMap::new();
    for entry in &evidence_entries {
        table.entry(entry.property.clone()).or_default();
    }
    for entry in &provenance_entries {
        table.entry(entry.property.clone()).or_default();
    }
    for result in &output.results {
        table.entry(result.key.property.resolve()).or_default();
    }
    let mut properties = Vec::with_capacity(table.len());
    for (rank, (property, index)) in table.iter_mut().enumerate() {
        *index = rank as u32;
        properties.push(SnapshotProperty {
            adverbs: property.adverbs().to_vec(),
            adjective: property.head().to_string(),
        });
    }

    let types = kb
        .types()
        .iter()
        .map(|t| SnapshotType {
            name: t.name().to_string(),
            head_nouns: t.head_nouns().to_vec(),
            context_cues: t.context_cues().to_vec(),
        })
        .collect();

    let entities = kb
        .entities()
        .iter()
        .map(|e| SnapshotEntity {
            name: e.name().to_string(),
            aliases: e.aliases().to_vec(),
            type_index: e.notable_type().0,
            attributes: e
                .attributes()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        })
        .collect();

    let evidence = evidence_entries
        .iter()
        .map(|entry| EvidenceRow {
            entity: entry.entity.0,
            property: table[&entry.property],
            positive: entry.positive,
            negative: entry.negative,
        })
        .collect();

    let provenance = provenance_entries
        .iter()
        .map(|entry| ProvenanceRow {
            entity: entry.entity.0,
            property: table[&entry.property],
            documents: entry.documents.clone(),
        })
        .collect();

    let mut models = Vec::with_capacity(output.results.len());
    let mut decisions = Vec::with_capacity(output.results.len());
    for result in &output.results {
        let type_index = result.key.type_id.0;
        let property = table[&result.key.property.resolve()];
        models.push(ModelRow {
            type_index,
            property,
            p_agree: result.fit.params.p_agree,
            rate_pos: result.fit.params.rate_pos,
            rate_neg: result.fit.params.rate_neg,
            iterations: result.fit.iterations as u64,
            converged: result.fit.converged.code(),
            log_likelihood: result.fit.log_likelihood,
            q_trace: result.fit.q_trace.clone(),
            delta_trace: result.fit.delta_trace.clone(),
        });
        decisions.push(DecisionGroupRow {
            type_index,
            property,
            decisions: result
                .decisions
                .iter()
                .map(|(entity, d)| DecisionRow {
                    entity: entity.0,
                    decision: match d.decision {
                        Decision::Unsolved => DecisionCode::Unsolved,
                        Decision::Positive => DecisionCode::Positive,
                        Decision::Negative => DecisionCode::Negative,
                    },
                    probability: d.probability,
                })
                .collect(),
        });
    }

    Snapshot {
        properties,
        types,
        entities,
        evidence,
        provenance_sample_size: output.provenance.sample_size() as u64,
        provenance,
        models,
        decisions,
        incremental: None,
        fingerprints: Vec::new(),
    }
}

/// Like [`snapshot_output`], but carrying the incremental mining state:
/// the `INCR` section records what was ingested (and what is still
/// pending replay), and the `GRPF` section fingerprints every
/// (type, property) group so a later `diff` can name the groups a delta
/// dirtied. Snapshots without these sections stay byte-identical to
/// pre-incremental producers.
pub fn snapshot_output_with_state(output: &SurveyorOutput, state: &IncrementalState) -> Snapshot {
    let mut snapshot = snapshot_output(output);
    snapshot.fingerprints = surveyor_wire::group_fingerprints(&snapshot);
    snapshot.incremental = Some(state.clone());
    snapshot
}

/// Encodes a pipeline output as snapshot bytes.
pub fn save_snapshot(output: &SurveyorOutput) -> Vec<u8> {
    surveyor_wire::encode(&snapshot_output(output))
}

/// Encodes a pipeline output plus its incremental state as snapshot
/// bytes (see [`snapshot_output_with_state`]).
pub fn save_snapshot_with_state(output: &SurveyorOutput, state: &IncrementalState) -> Vec<u8> {
    surveyor_wire::encode(&snapshot_output_with_state(output, state))
}

/// Rebuilds a pipeline output from the portable snapshot model,
/// validating every cross-reference. The rebuilt output's knowledge base
/// assigns the same dense `TypeId`/`EntityId` values the snapshot's
/// table order implies; properties are re-interned in this process.
pub fn output_from_snapshot(snapshot: &Snapshot) -> Result<SurveyorOutput, SnapshotError> {
    let type_count = snapshot.types.len() as u64;
    let entity_count = snapshot.entities.len() as u64;
    let property_count = snapshot.properties.len() as u64;

    // Rebuild the knowledge base; dense ids come back in table order.
    let mut builder = KnowledgeBaseBuilder::new();
    for t in &snapshot.types {
        let nouns: Vec<&str> = t.head_nouns.iter().map(String::as_str).collect();
        let cues: Vec<&str> = t.context_cues.iter().map(String::as_str).collect();
        builder.add_type(&t.name, &nouns, &cues);
    }
    for e in &snapshot.entities {
        if u64::from(e.type_index) >= type_count {
            return Err(SnapshotError::Corrupt("entity type index out of range"));
        }
        let mut entity = builder.add_entity(&e.name, TypeId(e.type_index));
        for alias in &e.aliases {
            entity = entity.alias(alias);
        }
        for (key, value) in &e.attributes {
            entity = entity.attribute(key, *value);
        }
        entity.finish();
    }
    let kb = Arc::new(builder.build());
    if kb.types().len() != snapshot.types.len() || kb.entities().len() != snapshot.entities.len() {
        return Err(SnapshotError::Corrupt(
            "duplicate type or entity collapsed during rebuild",
        ));
    }

    // Re-intern the property table; indexes on the wire become ids here.
    let resolved: Vec<Property> = snapshot
        .properties
        .iter()
        .map(|p| {
            let adverbs: Vec<&str> = p.adverbs.iter().map(String::as_str).collect();
            Property::with_adverbs(&adverbs, &p.adjective)
        })
        .collect();
    let property_ids: Vec<PropertyId> = resolved.iter().map(PropertyId::intern).collect();

    let mut evidence_entries = Vec::with_capacity(snapshot.evidence.len());
    for row in &snapshot.evidence {
        if u64::from(row.entity) >= entity_count {
            return Err(SnapshotError::Corrupt("evidence entity out of range"));
        }
        let Some(property) = resolved.get(row.property as usize) else {
            return Err(SnapshotError::Corrupt("evidence property out of range"));
        };
        evidence_entries.push(EvidenceEntry {
            entity: EntityId(row.entity),
            property: property.clone(),
            positive: row.positive,
            negative: row.negative,
        });
    }
    let evidence = EvidenceTable::from_entries(evidence_entries);

    let sample_size = usize::try_from(snapshot.provenance_sample_size)
        .map_err(|_| SnapshotError::Corrupt("provenance sample size out of range"))?;
    let mut provenance_entries = Vec::with_capacity(snapshot.provenance.len());
    for row in &snapshot.provenance {
        if u64::from(row.entity) >= entity_count {
            return Err(SnapshotError::Corrupt("provenance entity out of range"));
        }
        let Some(property) = resolved.get(row.property as usize) else {
            return Err(SnapshotError::Corrupt("provenance property out of range"));
        };
        provenance_entries.push(ProvenanceEntry {
            entity: EntityId(row.entity),
            property: property.clone(),
            documents: row.documents.clone(),
        });
    }
    let provenance = ProvenanceTable::from_entries(sample_size, provenance_entries);

    let grouped = GroupedEvidence::from_table(&evidence, &kb);

    if snapshot.models.len() != snapshot.decisions.len() {
        return Err(SnapshotError::Corrupt(
            "model and decision sections disagree on group count",
        ));
    }
    let mut results = Vec::with_capacity(snapshot.models.len());
    for (model, group) in snapshot.models.iter().zip(&snapshot.decisions) {
        if (model.type_index, model.property) != (group.type_index, group.property) {
            return Err(SnapshotError::Corrupt(
                "model and decision groups out of step",
            ));
        }
        if u64::from(model.type_index) >= type_count {
            return Err(SnapshotError::Corrupt("model type index out of range"));
        }
        if u64::from(model.property) >= property_count {
            return Err(SnapshotError::Corrupt("model property out of range"));
        }
        let Some(converged) = ConvergenceReason::from_code(model.converged) else {
            return Err(SnapshotError::Corrupt("unknown convergence code"));
        };
        // `ModelParams::new` asserts these invariants; check them here so
        // a corrupt snapshot surfaces as an error, never a panic.
        if !((0.0..=1.0).contains(&model.p_agree)
            && model.rate_pos.is_finite()
            && model.rate_pos >= 0.0
            && model.rate_neg.is_finite()
            && model.rate_neg >= 0.0)
        {
            return Err(SnapshotError::Corrupt("model parameters out of range"));
        }
        let mut decisions = Vec::with_capacity(group.decisions.len());
        for row in &group.decisions {
            if u64::from(row.entity) >= entity_count {
                return Err(SnapshotError::Corrupt("decision entity out of range"));
            }
            decisions.push((
                EntityId(row.entity),
                ModelDecision {
                    decision: match row.decision {
                        DecisionCode::Unsolved => Decision::Unsolved,
                        DecisionCode::Positive => Decision::Positive,
                        DecisionCode::Negative => Decision::Negative,
                    },
                    probability: row.probability,
                },
            ));
        }
        results.push(DomainResult {
            key: GroupKey {
                type_id: TypeId(model.type_index),
                property: property_ids[model.property as usize],
            },
            fit: EmFit {
                params: ModelParams::new(model.p_agree, model.rate_pos, model.rate_neg),
                iterations: usize::try_from(model.iterations)
                    .map_err(|_| SnapshotError::Corrupt("iteration count out of range"))?,
                q_trace: model.q_trace.clone(),
                delta_trace: model.delta_trace.clone(),
                converged,
                log_likelihood: model.log_likelihood,
            },
            decisions,
        });
    }

    Ok(SurveyorOutput::from_parts(
        evidence, provenance, grouped, results, kb,
    ))
}

/// Decodes snapshot bytes back into a fully functional pipeline output.
pub fn load_snapshot(bytes: &[u8]) -> Result<SurveyorOutput, SnapshotError> {
    output_from_snapshot(&surveyor_wire::decode(bytes)?)
}

/// Decodes snapshot bytes into a pipeline output plus its incremental
/// mining state, if the producer recorded one.
///
/// When the snapshot carries group fingerprints they are re-derived from
/// the evidence section and compared — a snapshot whose fingerprints no
/// longer match its evidence was assembled inconsistently and is rejected
/// rather than silently carried into an update.
pub fn load_snapshot_with_state(
    bytes: &[u8],
) -> Result<(SurveyorOutput, Option<IncrementalState>), SnapshotError> {
    let snapshot = surveyor_wire::decode(bytes)?;
    if !snapshot.fingerprints.is_empty()
        && snapshot.fingerprints != surveyor_wire::group_fingerprints(&snapshot)
    {
        return Err(SnapshotError::Corrupt(
            "group fingerprints do not match evidence",
        ));
    }
    let output = output_from_snapshot(&snapshot)?;
    Ok((output, snapshot.incremental))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Surveyor, SurveyorConfig};
    use crate::store::SubjectiveKb;
    use surveyor_extract::{Polarity, Statement};
    use surveyor_kb::KnowledgeBase;

    fn mined_output() -> SurveyorOutput {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal", "creature"], &["zoo"]);
        for name in ["Kitten", "Tiger", "Spider", "Puppy", "Rock"] {
            b.add_entity(name, animal)
                .alias(&format!("the {name}"))
                .attribute("legs", 4.0)
                .finish();
        }
        let kb = Arc::new(b.build());
        let cute = Property::adjective("cute");
        let tiny = Property::with_adverbs(&["very"], "tiny");
        let mut table = EvidenceTable::new();
        let mut prov = ProvenanceTable::new(3);
        let mut doc = 0u64;
        let mut add = |table: &mut EvidenceTable,
                       prov: &mut ProvenanceTable,
                       name: &str,
                       property: &Property,
                       pos: u64,
                       neg: u64| {
            let e = kb.entity_by_name(name).unwrap();
            for _ in 0..pos {
                let s = Statement::new(e, property, Polarity::Positive);
                prov.record(&s, doc);
                doc += 1;
                table.add(&s);
            }
            for _ in 0..neg {
                let s = Statement::new(e, property, Polarity::Negative);
                prov.record(&s, doc);
                doc += 1;
                table.add(&s);
            }
        };
        add(&mut table, &mut prov, "Kitten", &cute, 50, 2);
        add(&mut table, &mut prov, "Puppy", &cute, 40, 1);
        add(&mut table, &mut prov, "Tiger", &cute, 4, 8);
        add(&mut table, &mut prov, "Spider", &cute, 1, 10);
        add(&mut table, &mut prov, "Spider", &tiny, 30, 3);
        add(&mut table, &mut prov, "Kitten", &tiny, 20, 6);
        let surveyor = Surveyor::new(
            kb,
            SurveyorConfig {
                rho: 30,
                ..Default::default()
            },
        );
        let mut output = surveyor.run_on_evidence(table);
        output.provenance = prov;
        output
    }

    #[test]
    fn save_load_round_trips_the_whole_world() {
        let output = mined_output();
        let bytes = save_snapshot(&output);
        let loaded = load_snapshot(&bytes).unwrap();

        // The decision surface is identical...
        assert_eq!(
            SubjectiveKb::from_output(&loaded, loaded.kb()).to_json(),
            SubjectiveKb::from_output(&output, output.kb()).to_json()
        );
        assert_eq!(loaded.triples(), output.triples());
        assert_eq!(loaded.decided_pairs(), output.decided_pairs());
        assert_eq!(loaded.evidence.to_json(), output.evidence.to_json());
        // ...and so is a re-encoded snapshot, byte for byte.
        assert_eq!(save_snapshot(&loaded), bytes);
    }

    #[test]
    fn loaded_kb_matches_the_original() {
        let output = mined_output();
        let loaded = load_snapshot(&save_snapshot(&output)).unwrap();
        let (a, b): (&KnowledgeBase, &KnowledgeBase) = (loaded.kb(), output.kb());
        assert_eq!(a.types().len(), b.types().len());
        assert_eq!(a.entities().len(), b.entities().len());
        for (x, y) in a.entities().iter().zip(b.entities()) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.aliases(), y.aliases());
            assert_eq!(x.notable_type(), y.notable_type());
            assert_eq!(x.attributes(), y.attributes());
        }
    }

    #[test]
    fn empty_output_round_trips() {
        let mut b = KnowledgeBaseBuilder::new();
        b.add_type("animal", &["animal"], &[]);
        let kb = Arc::new(b.build());
        let surveyor = Surveyor::new(kb, SurveyorConfig::default());
        let output = surveyor.run_on_evidence(EvidenceTable::new());
        let bytes = save_snapshot(&output);
        let loaded = load_snapshot(&bytes).unwrap();
        assert_eq!(loaded.modeled_combinations(), 0);
        assert_eq!(save_snapshot(&loaded), bytes);
    }

    #[test]
    fn dangling_indexes_are_corrupt_not_panics() {
        let output = mined_output();
        let good = snapshot_output(&output);

        let mut bad = good.clone();
        bad.entities[0].type_index = 99;
        assert_eq!(
            output_from_snapshot(&bad).err(),
            Some(SnapshotError::Corrupt("entity type index out of range"))
        );

        let mut bad = good.clone();
        bad.evidence[0].property = 99;
        assert_eq!(
            output_from_snapshot(&bad).err(),
            Some(SnapshotError::Corrupt("evidence property out of range"))
        );

        let mut bad = good.clone();
        bad.models[0].converged = 77;
        assert_eq!(
            output_from_snapshot(&bad).err(),
            Some(SnapshotError::Corrupt("unknown convergence code"))
        );

        let mut bad = good.clone();
        bad.models[0].p_agree = f64::NAN;
        assert_eq!(
            output_from_snapshot(&bad).err(),
            Some(SnapshotError::Corrupt("model parameters out of range"))
        );

        let mut bad = good.clone();
        bad.decisions.pop();
        assert_eq!(
            output_from_snapshot(&bad).err(),
            Some(SnapshotError::Corrupt(
                "model and decision sections disagree on group count"
            ))
        );

        let mut bad = good;
        bad.decisions[0].decisions[0].entity = 1_000;
        assert_eq!(
            output_from_snapshot(&bad).err(),
            Some(SnapshotError::Corrupt("decision entity out of range"))
        );
    }

    #[test]
    fn wire_errors_pass_through() {
        assert!(matches!(
            load_snapshot(b"junk"),
            Err(SnapshotError::Wire(WireError::BadMagic { .. }))
        ));
    }
}
