//! Linking subjective to objective properties (paper §9, future work).
//!
//! "We could for instance try to find a lower bound on the population count
//! of a city starting from which an average user would call that city big.
//! Inferring and exploiting such relationships should allow to improve
//! precision and coverage."
//!
//! This module implements that extension: given the pipeline's decisions
//! for one (type, property) combination and an objective attribute from
//! the knowledge base, it finds the attribute threshold that best explains
//! the mined opinions (an optimal decision stump over the log-attribute),
//! reports how strongly the subjective property is aligned with the
//! attribute, and can use the discovered link to adjudicate entities the
//! model left uncertain.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use surveyor_kb::{KnowledgeBase, Property, TypeId};
use surveyor_model::Decision;

use crate::pipeline::SurveyorOutput;

/// Which side of the threshold carries the property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkDirection {
    /// The property applies to entities **above** the threshold
    /// (`big` ↔ population).
    Above,
    /// The property applies to entities **below** the threshold
    /// (`cheap` ↔ price).
    Below,
}

/// A discovered subjective↔objective relationship.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveLink {
    /// The attribute key (e.g. `"population"`).
    pub attribute: String,
    /// The boundary attribute value: the paper's "lower bound … starting
    /// from which an average user would call that city big".
    pub threshold: f64,
    /// Which side of the threshold the property occupies.
    pub direction: LinkDirection,
    /// Fraction of decided entities consistent with the stump (0.5 = no
    /// relationship, 1.0 = perfectly aligned).
    pub agreement: f64,
    /// Decided entities with the attribute present.
    pub samples: usize,
}

impl ObjectiveLink {
    /// Predicts the property for an attribute value using the link.
    pub fn predict(&self, attribute_value: f64) -> bool {
        match self.direction {
            LinkDirection::Above => attribute_value >= self.threshold,
            LinkDirection::Below => attribute_value < self.threshold,
        }
    }
}

/// Discovers the attribute threshold best aligned with the mined opinions
/// of one combination.
///
/// Returns `None` when fewer than `min_samples` decided entities carry the
/// attribute, or when every decided entity shares one polarity (no
/// boundary to place).
pub fn link_objective(
    output: &SurveyorOutput,
    kb: &Arc<KnowledgeBase>,
    type_id: TypeId,
    property: &Property,
    attribute: &str,
    min_samples: usize,
) -> Option<ObjectiveLink> {
    // Collect (attribute, decided-positive) pairs.
    let mut points: Vec<(f64, bool)> = kb
        .entities_of_type(type_id)
        .iter()
        .filter_map(|&e| {
            let decision = output.opinion(e, property)?;
            let value = kb.entity(e).attribute(attribute)?;
            match decision.decision {
                Decision::Positive => Some((value, true)),
                Decision::Negative => Some((value, false)),
                Decision::Unsolved => None,
            }
        })
        .collect();
    if points.len() < min_samples.max(2) {
        return None;
    }
    points.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total_pos = points.iter().filter(|(_, p)| *p).count();
    let total = points.len();
    if total_pos == 0 || total_pos == total {
        return None;
    }

    // Sweep all split positions: prefix_pos[i] = positives among the first
    // i points. "Above" stump at split i classifies points[i..] positive:
    // correct = (total_pos - prefix_pos[i]) + (i - prefix_pos[i]).
    let mut best: Option<(usize, LinkDirection, usize)> = None; // (correct, dir, split)
    let mut prefix_pos = 0usize;
    for split in 0..=total {
        let above_correct = (total_pos - prefix_pos) + (split - prefix_pos);
        let below_correct = total - above_correct;
        for (correct, dir) in [
            (above_correct, LinkDirection::Above),
            (below_correct, LinkDirection::Below),
        ] {
            if best.is_none_or(|(c, _, _)| correct > c) {
                best = Some((correct, dir, split));
            }
        }
        if let Some(&(_, positive)) = points.get(split) {
            prefix_pos += usize::from(positive);
        }
    }
    let (correct, direction, split) = best?;

    // The threshold sits between the last below-point and first above-point
    // (geometric mean respects the log scale the studies use).
    let threshold = if split == 0 {
        points[0].0
    } else if split == total {
        points[total - 1].0
    } else {
        (points[split - 1].0.max(1e-12) * points[split].0.max(1e-12)).sqrt()
    };

    Some(ObjectiveLink {
        attribute: attribute.to_owned(),
        threshold,
        direction,
        agreement: correct as f64 / total as f64,
        samples: total,
    })
}

/// Uses a discovered link to adjudicate entities whose combination was not
/// modeled or whose posterior sat exactly on the fence, returning
/// `(entity_name, predicted_positive)` pairs — the paper's "improve
/// precision and coverage" suggestion.
pub fn adjudicate_with_link(
    output: &SurveyorOutput,
    kb: &Arc<KnowledgeBase>,
    type_id: TypeId,
    property: &Property,
    link: &ObjectiveLink,
) -> Vec<(String, bool)> {
    kb.entities_of_type(type_id)
        .iter()
        .filter_map(|&e| {
            let undecided = match output.opinion(e, property) {
                None => true,
                Some(d) => d.decision == Decision::Unsolved,
            };
            if !undecided {
                return None;
            }
            let value = kb.entity(e).attribute(&link.attribute)?;
            Some((kb.entity(e).name().to_owned(), link.predict(value)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Surveyor, SurveyorConfig};
    use surveyor_extract::{EvidenceTable, Polarity, Statement};
    use surveyor_kb::KnowledgeBaseBuilder;

    /// Cities with populations; those above 1000 get positive evidence.
    fn fixture(threshold: f64) -> (Arc<KnowledgeBase>, SurveyorOutput, TypeId) {
        let mut b = KnowledgeBaseBuilder::new();
        let city = b.add_type("city", &["city"], &[]);
        let populations = [
            100.0, 200.0, 400.0, 700.0, 900.0, 1_500.0, 3_000.0, 8_000.0, 20_000.0, 60_000.0,
        ];
        for (i, &pop) in populations.iter().enumerate() {
            b.add_entity(&format!("City{i}"), city)
                .attribute("population", pop)
                .finish();
        }
        let kb = Arc::new(b.build());
        let big = Property::adjective("big");
        let mut table = EvidenceTable::new();
        for (i, &pop) in populations.iter().enumerate() {
            let e = kb.entity_by_name(&format!("City{i}")).unwrap();
            let (pos, neg) = if pop >= threshold { (20, 1) } else { (1, 6) };
            for _ in 0..pos {
                table.add(&Statement::new(e, &big, Polarity::Positive));
            }
            for _ in 0..neg {
                table.add(&Statement::new(e, &big, Polarity::Negative));
            }
        }
        let surveyor = Surveyor::new(
            kb.clone(),
            SurveyorConfig {
                rho: 10,
                ..SurveyorConfig::default()
            },
        );
        let output = surveyor.run_on_evidence(table);
        (kb, output, city)
    }

    #[test]
    fn discovers_the_planted_threshold() {
        let (kb, output, city) = fixture(1_000.0);
        let link = link_objective(
            &output,
            &kb,
            city,
            &Property::adjective("big"),
            "population",
            5,
        )
        .expect("link found");
        assert_eq!(link.direction, LinkDirection::Above);
        assert!(
            link.threshold > 900.0 && link.threshold < 1_500.0,
            "threshold {}",
            link.threshold
        );
        assert!(link.agreement > 0.9, "agreement {}", link.agreement);
        assert_eq!(link.samples, 10);
        // Prediction uses the boundary.
        assert!(link.predict(5_000.0));
        assert!(!link.predict(500.0));
    }

    #[test]
    fn no_link_without_enough_samples() {
        let (kb, output, city) = fixture(1_000.0);
        assert!(link_objective(
            &output,
            &kb,
            city,
            &Property::adjective("big"),
            "population",
            50,
        )
        .is_none());
        // Unknown attribute: nothing to link.
        assert!(link_objective(
            &output,
            &kb,
            city,
            &Property::adjective("big"),
            "altitude",
            2,
        )
        .is_none());
    }

    #[test]
    fn below_direction_is_detected() {
        // "cheap" applies below a price threshold: invert the evidence.
        let mut b = KnowledgeBaseBuilder::new();
        let city = b.add_type("city", &["city"], &[]);
        let prices = [10.0, 20.0, 40.0, 80.0, 160.0, 320.0];
        for (i, &price) in prices.iter().enumerate() {
            b.add_entity(&format!("City{i}"), city)
                .attribute("price", price)
                .finish();
        }
        let kb = Arc::new(b.build());
        let cheap = Property::adjective("cheap");
        let mut table = EvidenceTable::new();
        for (i, &price) in prices.iter().enumerate() {
            let e = kb.entity_by_name(&format!("City{i}")).unwrap();
            let (pos, neg) = if price < 100.0 { (15, 1) } else { (1, 8) };
            for _ in 0..pos {
                table.add(&Statement::new(e, &cheap, Polarity::Positive));
            }
            for _ in 0..neg {
                table.add(&Statement::new(e, &cheap, Polarity::Negative));
            }
        }
        let surveyor = Surveyor::new(
            kb.clone(),
            SurveyorConfig {
                rho: 10,
                ..SurveyorConfig::default()
            },
        );
        let output = surveyor.run_on_evidence(table);
        let link = link_objective(&output, &kb, city, &cheap, "price", 3).expect("link found");
        assert_eq!(link.direction, LinkDirection::Below);
        assert!(link.predict(15.0));
        assert!(!link.predict(300.0));
    }

    #[test]
    fn adjudicates_unmodeled_entities() {
        let (kb, output, city) = fixture(1_000.0);
        let big = Property::adjective("big");
        let link = link_objective(&output, &kb, city, &big, "population", 5).unwrap();
        // Build a second KB view with an extra entity lacking decisions by
        // rebuilding output with a higher rho so nothing is modeled.
        let surveyor = Surveyor::new(
            kb.clone(),
            SurveyorConfig {
                rho: u64::MAX,
                ..SurveyorConfig::default()
            },
        );
        let empty_output = surveyor.run_on_evidence(output.evidence.clone());
        let verdicts = adjudicate_with_link(&empty_output, &kb, city, &big, &link);
        assert_eq!(
            verdicts.len(),
            10,
            "all entities undecided -> all adjudicated"
        );
        let city9 = verdicts.iter().find(|(n, _)| n == "City9").unwrap();
        assert!(city9.1, "60k population city predicted big");
        let city0 = verdicts.iter().find(|(n, _)| n == "City0").unwrap();
        assert!(!city0.1);
    }
}
