//! The subjective knowledge base: Surveyor's downstream deliverable.
//!
//! "The purpose is to build a knowledge base of subjective properties and
//! entities … Upon receipt of a subjective query, the search engine can
//! exploit high-confidence entity-property associations" (paper §1–§2).
//! This module materializes pipeline output into a queryable, persistable
//! store answering exactly those queries: *safe cities*, *cute animals*.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use surveyor_kb::{EntityId, KnowledgeBase, Property, TypeId};
use surveyor_model::Decision;

use crate::pipeline::SurveyorOutput;

/// One stored association.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredOpinion {
    /// The entity.
    pub entity: EntityId,
    /// Canonical entity name (denormalized for display).
    pub entity_name: String,
    /// `true` = the dominant opinion applies the property.
    pub positive: bool,
    /// Posterior probability that the property applies.
    pub probability: f64,
    /// Evidence counts behind the decision.
    pub positive_statements: u64,
    /// Negative statement count.
    pub negative_statements: u64,
    /// Sample of supporting document ids — the "links to supporting
    /// content on the Web" the paper's search scenario offers (§2).
    pub supporting_documents: Vec<u64>,
}

/// Per-combination block of the store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationBlock {
    /// The entity type.
    pub type_id: TypeId,
    /// Type name.
    pub type_name: String,
    /// The subjective property.
    pub property: Property,
    /// Fitted model parameters (pA, np+S, np-S).
    pub p_agree: f64,
    /// Fitted positive statement rate.
    pub rate_pos: f64,
    /// Fitted negative statement rate.
    pub rate_neg: f64,
    /// All decided entities, positives first, by descending probability.
    pub opinions: Vec<StoredOpinion>,
}

/// A queryable, serializable knowledge base of subjective properties.
///
/// ```
/// # use std::sync::Arc;
/// # use surveyor::prelude::*;
/// # use surveyor::{CorpusSource, SubjectiveKb};
/// # let mut b = KnowledgeBaseBuilder::new();
/// # let animal = b.add_type("animal", &["animal"], &[]);
/// # b.add_entity("Kitten", animal).finish();
/// # b.add_entity("Tiger", animal).finish();
/// # let kb = Arc::new(b.build());
/// # let world = WorldBuilder::new(kb.clone(), 42)
/// #     .domain("animal", Property::adjective("cute"), DomainParams::default())
/// #     .build();
/// # let generator = CorpusGenerator::new(world, CorpusConfig::default());
/// # let surveyor = Surveyor::new(kb.clone(), SurveyorConfig { rho: 5, ..Default::default() });
/// # let output = surveyor.run(&CorpusSource::new(&generator));
/// let store = SubjectiveKb::from_output(&output, &kb);
/// // The search-engine use case: answer the subjective query "cute animals".
/// for hit in store.query("animal", &Property::adjective("cute")) {
///     println!("{} ({:.2})", hit.entity_name, hit.probability);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubjectiveKb {
    blocks: Vec<CombinationBlock>,
    #[serde(skip)]
    index: FxHashMap<(String, Property), usize>,
}

impl SubjectiveKb {
    /// Materializes pipeline output into a store.
    pub fn from_output(output: &SurveyorOutput, kb: &Arc<KnowledgeBase>) -> Self {
        let mut blocks = Vec::with_capacity(output.results.len());
        for result in &output.results {
            let type_name = kb.entity_type(result.key.type_id).name().to_owned();
            let mut opinions: Vec<StoredOpinion> = result
                .decisions
                .iter()
                .filter(|(_, d)| d.decision.is_solved())
                .map(|(entity, d)| {
                    let counts = output.evidence.counts_id(*entity, result.key.property);
                    StoredOpinion {
                        entity: *entity,
                        entity_name: kb.entity(*entity).name().to_owned(),
                        positive: d.decision == Decision::Positive,
                        probability: d.probability.unwrap_or(0.5),
                        positive_statements: counts.positive,
                        negative_statements: counts.negative,
                        supporting_documents: output
                            .provenance
                            .documents_id(*entity, result.key.property)
                            .to_vec(),
                    }
                })
                .collect();
            opinions.sort_by(|a, b| {
                b.probability
                    .total_cmp(&a.probability)
                    .then_with(|| b.positive_statements.cmp(&a.positive_statements))
                    .then_with(|| a.entity.cmp(&b.entity))
            });
            blocks.push(CombinationBlock {
                type_id: result.key.type_id,
                type_name,
                property: result.key.property.resolve(),
                p_agree: result.fit.params.p_agree,
                rate_pos: result.fit.params.rate_pos,
                rate_neg: result.fit.params.rate_neg,
                opinions,
            });
        }
        Self::from_blocks(blocks)
    }

    fn from_blocks(blocks: Vec<CombinationBlock>) -> Self {
        let index = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| ((b.type_name.clone(), b.property.clone()), i))
            .collect();
        Self { blocks, index }
    }

    /// All stored combinations.
    pub fn blocks(&self) -> &[CombinationBlock] {
        &self.blocks
    }

    /// Number of stored entity-property associations.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.opinions.len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Answers a subjective query: entities of `type_name` for which the
    /// dominant opinion applies `property`, ranked by probability.
    ///
    /// This is the paper's motivating search-engine scenario ("queries
    /// such as `safe cities` would not trigger search results from
    /// structured data" — now they can).
    pub fn query(&self, type_name: &str, property: &Property) -> Vec<&StoredOpinion> {
        self.combination(type_name, property)
            .map(|b| b.opinions.iter().filter(|o| o.positive).collect())
            .unwrap_or_default()
    }

    /// The negated query: entities the dominant opinion says are *not*
    /// `property`, most confident first.
    pub fn query_negative(&self, type_name: &str, property: &Property) -> Vec<&StoredOpinion> {
        let Some(block) = self.combination(type_name, property) else {
            return Vec::new();
        };
        let mut hits: Vec<&StoredOpinion> = block.opinions.iter().filter(|o| !o.positive).collect();
        hits.reverse(); // ascending probability = descending confidence in ¬P
        hits
    }

    /// The block for one combination, if modeled.
    pub fn combination(&self, type_name: &str, property: &Property) -> Option<&CombinationBlock> {
        self.index
            .get(&(type_name.to_lowercase(), property.clone()))
            .map(|&i| &self.blocks[i])
    }

    /// All properties stored for a type.
    pub fn properties_of(&self, type_name: &str) -> Vec<&Property> {
        let lower = type_name.to_lowercase();
        self.blocks
            .iter()
            .filter(|b| b.type_name == lower)
            .map(|b| &b.property)
            .collect()
    }

    /// Every stored opinion about `entity_name` across all combinations,
    /// most confident first (largest `|p − 0.5|`). This is the query
    /// server's top-k-properties-per-entity scan.
    pub fn opinions_of_entity(
        &self,
        entity_name: &str,
    ) -> Vec<(&CombinationBlock, &StoredOpinion)> {
        let mut hits: Vec<(&CombinationBlock, &StoredOpinion)> = self
            .blocks
            .iter()
            .flat_map(|b| {
                b.opinions
                    .iter()
                    .filter(|o| o.entity_name.eq_ignore_ascii_case(entity_name))
                    .map(move |o| (b, o))
            })
            .collect();
        hits.sort_by(|(ba, a), (bb, b)| {
            let conf_a = (a.probability - 0.5).abs();
            let conf_b = (b.probability - 0.5).abs();
            conf_b
                .total_cmp(&conf_a)
                .then_with(|| ba.type_name.cmp(&bb.type_name))
                .then_with(|| ba.property.to_string().cmp(&bb.property.to_string()))
        });
        hits
    }

    /// The stored opinion for one entity-property pair, searched across
    /// every type — the query server's `/decide/{entity}/{property}`
    /// lookup, where the URL carries no type name. When the entity is
    /// stored under several types (rare), the most confident block wins.
    pub fn find_opinion(
        &self,
        entity_name: &str,
        property: &Property,
    ) -> Option<(&CombinationBlock, &StoredOpinion)> {
        self.opinions_of_entity(entity_name)
            .into_iter()
            .find(|(b, _)| &b.property == property)
    }

    /// The opinion on one entity-property pair, if stored.
    pub fn opinion(
        &self,
        type_name: &str,
        property: &Property,
        entity_name: &str,
    ) -> Option<&StoredOpinion> {
        self.combination(type_name, property)?
            .opinions
            .iter()
            .find(|o| o.entity_name.eq_ignore_ascii_case(entity_name))
    }

    /// Serializes the store to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.blocks).expect("store serializes") // lint:allow(no-panic-in-lib): the store value tree holds only serializable primitives
    }

    /// Restores a store from JSON produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let blocks: Vec<CombinationBlock> = serde_json::from_str(json)?;
        Ok(Self::from_blocks(blocks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Surveyor, SurveyorConfig};
    use surveyor_extract::{EvidenceTable, Polarity, Statement};
    use surveyor_kb::KnowledgeBaseBuilder;

    fn output_fixture() -> (Arc<KnowledgeBase>, SurveyorOutput) {
        let mut b = KnowledgeBaseBuilder::new();
        let animal = b.add_type("animal", &["animal"], &[]);
        b.add_entity("Kitten", animal).finish();
        b.add_entity("Puppy", animal).finish();
        b.add_entity("Spider", animal).finish();
        b.add_entity("Rock", animal).finish();
        let kb = Arc::new(b.build());
        let cute = Property::adjective("cute");
        let mut table = EvidenceTable::new();
        let mut add = |name: &str, pos: u64, neg: u64| {
            let e = kb.entity_by_name(name).unwrap();
            for _ in 0..pos {
                table.add(&Statement::new(e, &cute, Polarity::Positive));
            }
            for _ in 0..neg {
                table.add(&Statement::new(e, &cute, Polarity::Negative));
            }
        };
        add("Kitten", 40, 1);
        add("Puppy", 25, 1);
        add("Spider", 1, 9);
        let surveyor = Surveyor::new(
            kb.clone(),
            SurveyorConfig {
                rho: 10,
                ..SurveyorConfig::default()
            },
        );
        let output = surveyor.run_on_evidence(table);
        (kb, output)
    }

    #[test]
    fn query_returns_ranked_positives() {
        let (kb, output) = output_fixture();
        let store = SubjectiveKb::from_output(&output, &kb);
        let cute = Property::adjective("cute");
        let hits = store.query("animal", &cute);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].entity_name, "Kitten");
        assert_eq!(hits[1].entity_name, "Puppy");
        assert!(hits[0].probability >= hits[1].probability);
        // Negative query surfaces the confident non-cute entities.
        let negs = store.query_negative("animal", &cute);
        assert!(negs.iter().any(|o| o.entity_name == "Spider"));
        // The never-mentioned entity is decided too (negative here).
        assert!(negs.iter().any(|o| o.entity_name == "Rock"));
    }

    #[test]
    fn store_lookup_and_metadata() {
        let (kb, output) = output_fixture();
        let store = SubjectiveKb::from_output(&output, &kb);
        let cute = Property::adjective("cute");
        let block = store.combination("animal", &cute).unwrap();
        assert!(block.p_agree >= 0.5);
        assert_eq!(store.properties_of("animal"), vec![&cute]);
        let kitten = store.opinion("animal", &cute, "kitten").unwrap();
        assert!(kitten.positive);
        assert_eq!(kitten.positive_statements, 40);
        assert!(store.opinion("animal", &cute, "ghost").is_none());
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn json_round_trip() {
        let (kb, output) = output_fixture();
        let store = SubjectiveKb::from_output(&output, &kb);
        let json = store.to_json();
        let restored = SubjectiveKb::from_json(&json).unwrap();
        // JSON round-trips floats up to the last ULP; compare structure.
        assert_eq!(store.len(), restored.len());
        assert_eq!(store.blocks().len(), restored.blocks().len());
        let cute = Property::adjective("cute");
        let a = store.query("animal", &cute);
        let b = restored.query("animal", &cute);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.entity_name, y.entity_name);
            assert_eq!(x.positive, y.positive);
            assert!((x.probability - y.probability).abs() < 1e-9);
        }
    }

    #[test]
    fn unknown_combination_is_empty() {
        let (kb, output) = output_fixture();
        let store = SubjectiveKb::from_output(&output, &kb);
        assert!(store
            .query("animal", &Property::adjective("safe"))
            .is_empty());
        assert!(store.query("city", &Property::adjective("cute")).is_empty());
    }
}
