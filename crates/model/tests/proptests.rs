//! Property-based tests for the probabilistic model: posterior bounds and
//! monotonicity, EM invariants, baseline consistency.

use proptest::prelude::*;
use surveyor_model::{
    decide, fit, posterior_positive, Decision, EmConfig, MajorityVote, ModelParams, ObservedCounts,
    OpinionModel, ScaledMajorityVote,
};

fn params_strategy() -> impl Strategy<Value = ModelParams> {
    (0.5f64..1.0, 0.01f64..200.0, 0.01f64..200.0)
        .prop_map(|(pa, rp, rn)| ModelParams::new(pa, rp, rn))
}

fn counts_strategy() -> impl Strategy<Value = ObservedCounts> {
    (0u64..300, 0u64..300).prop_map(|(p, n)| ObservedCounts::new(p, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn posterior_is_a_probability(params in params_strategy(), counts in counts_strategy()) {
        let p = posterior_positive(counts, &params);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        prop_assert!(p.is_finite());
    }

    #[test]
    fn posterior_monotone_in_positive_count(
        params in params_strategy(),
        c_neg in 0u64..50,
        c_pos in 0u64..100,
    ) {
        // Adding a positive statement never lowers the positive posterior
        // (λ++ >= λ+- because pA >= ½).
        let p1 = posterior_positive(ObservedCounts::new(c_pos, c_neg), &params);
        let p2 = posterior_positive(ObservedCounts::new(c_pos + 1, c_neg), &params);
        prop_assert!(p2 >= p1 - 1e-9, "p1={p1} p2={p2}");
    }

    #[test]
    fn posterior_antitone_in_negative_count(
        params in params_strategy(),
        c_pos in 0u64..50,
        c_neg in 0u64..100,
    ) {
        let p1 = posterior_positive(ObservedCounts::new(c_pos, c_neg), &params);
        let p2 = posterior_positive(ObservedCounts::new(c_pos, c_neg + 1), &params);
        prop_assert!(p2 <= p1 + 1e-9);
    }

    #[test]
    fn decide_matches_threshold(p in 0.0f64..1.0) {
        let d = decide(p);
        match d.decision {
            Decision::Positive => prop_assert!(p > 0.5),
            Decision::Negative => prop_assert!(p < 0.5),
            Decision::Unsolved => prop_assert!((p - 0.5).abs() <= 1e-12),
        }
        prop_assert_eq!(d.probability, Some(p));
    }

    #[test]
    fn em_fit_stays_in_bounds(counts in prop::collection::vec(counts_strategy(), 1..64)) {
        let fit = fit(&counts, &EmConfig::default());
        prop_assert!((0.5..=1.0).contains(&fit.params.p_agree));
        prop_assert!(fit.params.rate_pos.is_finite() && fit.params.rate_pos >= 0.0);
        prop_assert!(fit.params.rate_neg.is_finite() && fit.params.rate_neg >= 0.0);
        prop_assert!(fit.iterations >= 1);
    }

    #[test]
    fn em_is_deterministic(counts in prop::collection::vec(counts_strategy(), 1..32)) {
        let a = fit(&counts, &EmConfig::default());
        let b = fit(&counts, &EmConfig::default());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn majority_vote_agrees_with_sign(counts in counts_strategy()) {
        let d = MajorityVote.decide_group(&[counts])[0].decision;
        match counts.positive.cmp(&counts.negative) {
            std::cmp::Ordering::Greater => prop_assert_eq!(d, Decision::Positive),
            std::cmp::Ordering::Less => prop_assert_eq!(d, Decision::Negative),
            std::cmp::Ordering::Equal => prop_assert_eq!(d, Decision::Unsolved),
        }
    }

    #[test]
    fn scaled_majority_with_unit_scale_equals_majority(
        group in prop::collection::vec(counts_strategy(), 1..32),
    ) {
        let smv = ScaledMajorityVote::new(1.0).decide_group(&group);
        let mv = MajorityVote.decide_group(&group);
        for (a, b) in smv.iter().zip(&mv) {
            prop_assert_eq!(a.decision, b.decision);
        }
    }

    #[test]
    fn posterior_under_fitted_params_decides_every_entity(
        group in prop::collection::vec(counts_strategy(), 2..48),
    ) {
        // The pipeline's promise: a decision (possibly Unsolved only at an
        // exact tie) for every entity of a modeled combination.
        let fitted = fit(&group, &EmConfig::default());
        for c in &group {
            let p = posterior_positive(*c, &fitted.params);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
