//! Model parameters and the four Poisson rates (paper §5.2).

use serde::{Deserialize, Serialize};

/// Parameters of the user-behavior model for one (type, property)
/// combination: `θ = ⟨pA, np+S, np-S⟩`.
///
/// The paper works with `np+S` and `np-S` (the statement probabilities
/// pre-multiplied by the unknown, enormous author count `n`) "to minimize
/// rounding errors" (§6); we follow suit — the rates are expected statement
/// counts, not probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// `pA`: probability that an author agrees with the dominant opinion.
    pub p_agree: f64,
    /// `np+S`: expected statements from an author pool holding a positive
    /// opinion.
    pub rate_pos: f64,
    /// `np-S`: expected statements from an author pool holding a negative
    /// opinion.
    pub rate_neg: f64,
}

/// The four Poisson rates `λ^{σ2}_{σ1}`; subscript = dominant opinion,
/// superscript = statement polarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lambdas {
    /// `λ++`: positive statements about positive-dominant entities.
    pub pos_pos: f64,
    /// `λ-+`: negative statements about positive-dominant entities.
    pub neg_pos: f64,
    /// `λ+-`: positive statements about negative-dominant entities.
    pub pos_neg: f64,
    /// `λ--`: negative statements about negative-dominant entities.
    pub neg_neg: f64,
}

impl ModelParams {
    /// Creates a parameter vector.
    ///
    /// # Panics
    /// Panics unless `0 <= pA <= 1` and the rates are finite and
    /// non-negative.
    pub fn new(p_agree: f64, rate_pos: f64, rate_neg: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_agree),
            "agreement probability out of range: {p_agree}"
        );
        assert!(
            rate_pos.is_finite() && rate_pos >= 0.0,
            "np+S must be finite and non-negative: {rate_pos}"
        );
        assert!(
            rate_neg.is_finite() && rate_neg >= 0.0,
            "np-S must be finite and non-negative: {rate_neg}"
        );
        Self {
            p_agree,
            rate_pos,
            rate_neg,
        }
    }

    /// The four Poisson rates:
    /// `λ++ = pA·np+S`, `λ-+ = (1-pA)·np-S`,
    /// `λ+- = (1-pA)·np+S`, `λ-- = pA·np-S`.
    pub fn lambdas(&self) -> Lambdas {
        Lambdas {
            pos_pos: self.p_agree * self.rate_pos,
            neg_pos: (1.0 - self.p_agree) * self.rate_neg,
            pos_neg: (1.0 - self.p_agree) * self.rate_pos,
            neg_neg: self.p_agree * self.rate_neg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example3_lambdas() {
        // Paper Example 3: pA = 0.9, np+S = 100, np-S = 5 gives
        // λ++ = 90, λ-+ = 0.5, λ-- = 4.5, λ+- = 10.
        let p = ModelParams::new(0.9, 100.0, 5.0);
        let l = p.lambdas();
        assert!((l.pos_pos - 90.0).abs() < 1e-12);
        assert!((l.neg_pos - 0.5).abs() < 1e-12);
        assert!((l.neg_neg - 4.5).abs() < 1e-12);
        assert!((l.pos_neg - 10.0).abs() < 1e-12);
    }

    #[test]
    fn lambdas_sum_preserves_rates() {
        let p = ModelParams::new(0.73, 42.0, 7.0);
        let l = p.lambdas();
        assert!((l.pos_pos + l.pos_neg - 42.0).abs() < 1e-12);
        assert!((l.neg_pos + l.neg_neg - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_agreement_panics() {
        let _ = ModelParams::new(1.5, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "np+S")]
    fn negative_rate_panics() {
        let _ = ModelParams::new(0.5, -1.0, 1.0);
    }
}
