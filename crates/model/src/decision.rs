//! The decision rule of Algorithm 1.
//!
//! "We currently assume a positive dominant opinion if the probability is
//! greater than 0.5, and a negative dominant opinion if it is less than
//! 0.5" (§3); at exactly 0.5 the test case counts as unsolved (§7.4).

use serde::{Deserialize, Serialize};

/// A decided polarity, or no decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Dominant opinion applies the property (`+`).
    Positive,
    /// Dominant opinion denies the property (`-`).
    Negative,
    /// No decision possible (probability exactly ½, or, for count-based
    /// baselines, tied counters).
    Unsolved,
}

impl Decision {
    /// Whether a decision was made.
    pub fn is_solved(self) -> bool {
        self != Decision::Unsolved
    }
}

/// A model's output for one entity: the decision plus the probability that
/// produced it (absent for purely count-based baselines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelDecision {
    /// The decided polarity.
    pub decision: Decision,
    /// `Pr(property applies)` when the model computes one.
    pub probability: Option<f64>,
}

impl ModelDecision {
    /// An unsolved output without a probability.
    pub fn unsolved() -> Self {
        Self {
            decision: Decision::Unsolved,
            probability: None,
        }
    }
}

/// Thresholds a probability into a decision. Probabilities within
/// `1e-12` of ½ are unsolved (exact ties arise from degenerate or
/// perfectly symmetric parameters).
pub fn decide(probability: f64) -> ModelDecision {
    debug_assert!((0.0..=1.0).contains(&probability));
    let decision = if (probability - 0.5).abs() <= 1e-12 {
        Decision::Unsolved
    } else if probability > 0.5 {
        Decision::Positive
    } else {
        Decision::Negative
    };
    ModelDecision {
        decision,
        probability: Some(probability),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholding() {
        assert_eq!(decide(0.9).decision, Decision::Positive);
        assert_eq!(decide(0.1).decision, Decision::Negative);
        assert_eq!(decide(0.5).decision, Decision::Unsolved);
        assert_eq!(decide(0.5 + 1e-13).decision, Decision::Unsolved);
        assert_eq!(decide(0.5 + 1e-9).decision, Decision::Positive);
    }

    #[test]
    fn probability_is_carried() {
        assert_eq!(decide(0.73).probability, Some(0.73));
        assert_eq!(ModelDecision::unsolved().probability, None);
    }

    #[test]
    fn solved_predicate() {
        assert!(Decision::Positive.is_solved());
        assert!(Decision::Negative.is_solved());
        assert!(!Decision::Unsolved.is_solved());
    }
}
