//! Posterior inference: `Pr(D_i = + | C+_i, C-_i, θ)` (paper §5.2).
//!
//! With the agnostic prior `Pr(D=+) = Pr(D=-) = 0.5`, the posterior is the
//! normalized pair of Poisson joint likelihoods. The `log c!` terms cancel
//! between the two hypotheses, so the log joint reduces to the
//! `c·ln λ − λ` form the paper's `Q'` uses.

use crate::counts::ObservedCounts;
use crate::params::ModelParams;

/// `c·ln λ − λ`, with the `0·ln 0 = 0` convention and `−∞` when `λ = 0`
/// but `c > 0` (an impossible observation under that hypothesis).
#[inline]
pub(crate) fn ln_poisson_kernel(c: u64, lambda: f64) -> f64 {
    if lambda == 0.0 {
        if c == 0 {
            0.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        c as f64 * lambda.ln() - lambda
    }
}

/// Log joint likelihood of the counts under a positive dominant opinion
/// (up to the `log c!` constant shared by both hypotheses).
pub(crate) fn ln_joint_positive(counts: ObservedCounts, params: &ModelParams) -> f64 {
    let l = params.lambdas();
    ln_poisson_kernel(counts.positive, l.pos_pos) + ln_poisson_kernel(counts.negative, l.neg_pos)
}

/// Log joint likelihood under a negative dominant opinion.
pub(crate) fn ln_joint_negative(counts: ObservedCounts, params: &ModelParams) -> f64 {
    let l = params.lambdas();
    ln_poisson_kernel(counts.positive, l.pos_neg) + ln_poisson_kernel(counts.negative, l.neg_neg)
}

/// The posterior probability that the dominant opinion is positive, under
/// a uniform prior.
///
/// Returns exactly `0.5` when both hypotheses are impossible (degenerate
/// parameters), mirroring the agnostic prior.
pub fn posterior_positive(counts: ObservedCounts, params: &ModelParams) -> f64 {
    let a = ln_joint_positive(counts, params);
    let b = ln_joint_negative(counts, params);
    normalize_pair(a, b)
}

/// Stable `exp(a) / (exp(a) + exp(b))`.
fn normalize_pair(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY && b == f64::NEG_INFINITY {
        return 0.5;
    }
    let d = b - a;
    if d > 0.0 {
        let e = (-d).exp();
        e / (1.0 + e)
    } else {
        1.0 / (1.0 + d.exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example3() -> ModelParams {
        ModelParams::new(0.9, 100.0, 5.0)
    }

    #[test]
    fn figure6_tuple_60_3_is_positive() {
        // Paper Figure 6 / Example 1: the tuple ⟨60, 3⟩ is more likely
        // under the positive distribution.
        let p = posterior_positive(ObservedCounts::new(60, 3), &example3());
        assert!(p > 0.999, "p = {p}");
    }

    #[test]
    fn zero_counts_lean_negative_when_positive_entities_are_chatty() {
        // λ++ = 90: a never-mentioned entity is very unlikely to be
        // positive-dominant ("a city never mentioned is not big").
        let p = posterior_positive(ObservedCounts::zero(), &example3());
        assert!(p < 1e-20, "p = {p}");
    }

    #[test]
    fn many_negative_statements_flip_to_negative() {
        let p = posterior_positive(ObservedCounts::new(2, 8), &example3());
        assert!(p < 0.5, "p = {p}");
    }

    #[test]
    fn posterior_is_probability() {
        let params = example3();
        for (a, b) in [(0, 0), (1, 0), (0, 1), (10, 10), (200, 1), (1, 200)] {
            let p = posterior_positive(ObservedCounts::new(a, b), &params);
            assert!((0.0..=1.0).contains(&p), "({a},{b}) -> {p}");
        }
    }

    #[test]
    fn posterior_monotone_in_positive_count() {
        let params = example3();
        let mut prev = 0.0;
        for c in 0..40 {
            let p = posterior_positive(ObservedCounts::new(c, 2), &params);
            assert!(p >= prev - 1e-12, "c={c}");
            prev = p;
        }
    }

    #[test]
    fn symmetric_parameters_give_half_on_symmetric_counts() {
        // pA = 0.5 makes both hypotheses identical.
        let params = ModelParams::new(0.5, 10.0, 10.0);
        for (a, b) in [(0, 0), (3, 3), (7, 7)] {
            let p = posterior_positive(ObservedCounts::new(a, b), &params);
            assert!((p - 0.5).abs() < 1e-12, "({a},{b}) -> {p}");
        }
    }

    #[test]
    fn zero_rate_handles_impossible_observation() {
        // np-S = 0: any negative statement is impossible under both
        // hypotheses -> posterior falls back to the prior.
        let params = ModelParams::new(0.9, 10.0, 0.0);
        let p = posterior_positive(ObservedCounts::new(0, 1), &params);
        assert_eq!(p, 0.5);
        // But positive counts still discriminate.
        let p = posterior_positive(ObservedCounts::new(9, 0), &params);
        assert!(p > 0.9);
    }

    #[test]
    fn kernel_conventions() {
        assert_eq!(ln_poisson_kernel(0, 0.0), 0.0);
        assert_eq!(ln_poisson_kernel(3, 0.0), f64::NEG_INFINITY);
        assert!((ln_poisson_kernel(2, 4.0) - (2.0 * 4.0_f64.ln() - 4.0)).abs() < 1e-12);
    }
}
