//! The [`OpinionModel`] trait and the Surveyor model implementation.

use crate::counts::ObservedCounts;
use crate::decision::{decide, ModelDecision};
use crate::em::{fit, fit_warm, EmConfig, EmFit};
use crate::inference::posterior_positive;
use crate::params::ModelParams;

/// A method for interpreting the statement counters of one
/// (type, property) combination — Surveyor's probabilistic model or one of
/// the §7.4 baselines.
///
/// `counts[i]` is the evidence tuple of the i-th entity of the type
/// (all-zero tuples included); the output vector is parallel to it.
pub trait OpinionModel {
    /// Human-readable method name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Decides every entity of one combination.
    fn decide_group(&self, counts: &[ObservedCounts]) -> Vec<ModelDecision>;
}

/// The Surveyor model: per-combination EM fit, then posterior-thresholded
/// decisions (Algorithm 1 lines 6–11).
#[derive(Debug, Clone, Default)]
pub struct SurveyorModel {
    config: EmConfig,
}

impl SurveyorModel {
    /// A model with the default EM configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A model with a custom EM configuration.
    pub fn with_config(config: EmConfig) -> Self {
        Self { config }
    }

    /// Fits the model to a group and exposes the learned parameters
    /// (used by the parameter-inspection experiments).
    pub fn fit_group(&self, counts: &[ObservedCounts]) -> EmFit {
        fit(counts, &self.config)
    }

    /// Fits a group with a single EM run warm-started from `initial`
    /// (typically a previous fit of the same group). Faster than
    /// [`fit_group`](Self::fit_group) on small evidence deltas but with
    /// different telemetry — see [`crate::em::fit_warm`].
    pub fn fit_group_warm(&self, counts: &[ObservedCounts], initial: &ModelParams) -> EmFit {
        fit_warm(counts, &self.config, initial)
    }
}

impl OpinionModel for SurveyorModel {
    fn name(&self) -> &'static str {
        "Surveyor"
    }

    fn decide_group(&self, counts: &[ObservedCounts]) -> Vec<ModelDecision> {
        if counts.is_empty() {
            return Vec::new();
        }
        let fit = self.fit_group(counts);
        counts
            .iter()
            .map(|&c| decide(posterior_positive(c, &fit.params)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Decision;

    #[test]
    fn surveyor_decides_every_entity() {
        // Chatty positives, quiet negatives, plus never-mentioned entities.
        let mut counts = Vec::new();
        for _ in 0..10 {
            counts.push(ObservedCounts::new(40, 1));
        }
        for _ in 0..10 {
            counts.push(ObservedCounts::new(1, 5));
        }
        for _ in 0..30 {
            counts.push(ObservedCounts::zero());
        }
        let model = SurveyorModel::new();
        let decisions = model.decide_group(&counts);
        assert_eq!(decisions.len(), counts.len());
        // High-positive entities decide positive.
        for d in &decisions[..10] {
            assert_eq!(d.decision, Decision::Positive);
        }
        // Negative-heavy entities decide negative.
        for d in &decisions[10..20] {
            assert_eq!(d.decision, Decision::Negative);
        }
        // Unmentioned entities are still decided (coverage ~1), negative
        // here because positives are chatty.
        for d in &decisions[20..] {
            assert_eq!(d.decision, Decision::Negative);
        }
        // Probabilities accompany every decision.
        assert!(decisions.iter().all(|d| d.probability.is_some()));
    }

    #[test]
    fn empty_group_is_empty() {
        assert!(SurveyorModel::new().decide_group(&[]).is_empty());
        assert_eq!(SurveyorModel::new().name(), "Surveyor");
    }
}
