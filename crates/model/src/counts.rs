//! The observed evidence tuple `⟨C+_i, C-_i⟩`.

use serde::{Deserialize, Serialize};

/// Positive / negative statement counts for one entity under one
/// (type, property) combination — the only observables of the model
/// (paper §5.1, the green nodes of Figure 7).
///
/// This mirrors the extraction crate's counter type but lives here so the
/// model layer has no dependency on the NLP pipeline; the evaluation crate
/// converts between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ObservedCounts {
    /// `C+`: number of positive statements.
    pub positive: u64,
    /// `C-`: number of negative statements.
    pub negative: u64,
}

impl ObservedCounts {
    /// An explicit pair of counts.
    pub fn new(positive: u64, negative: u64) -> Self {
        Self { positive, negative }
    }

    /// Total statements.
    pub fn total(&self) -> u64 {
        self.positive + self.negative
    }

    /// The zero tuple — an entity never mentioned with the property. The
    /// model deliberately draws conclusions from this case too (§2: "at
    /// sufficiently large scale, the lack of any evidence can be evidence
    /// as well").
    pub fn zero() -> Self {
        Self::default()
    }
}

impl From<(u64, u64)> for ObservedCounts {
    fn from((positive, negative): (u64, u64)) -> Self {
        Self { positive, negative }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_total() {
        let c = ObservedCounts::new(60, 3);
        assert_eq!(c.total(), 63);
        assert_eq!(ObservedCounts::zero().total(), 0);
        let c: ObservedCounts = (2, 5).into();
        assert_eq!(c, ObservedCounts::new(2, 5));
    }
}
