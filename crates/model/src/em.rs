//! Expectation-maximization parameter fitting (paper §6, Appendix C).
//!
//! Both steps have closed forms:
//!
//! - **E-step**: `r+_i = Pr(D_i = + | E_i, θ_{k-1})` via
//!   [`crate::inference::posterior_positive`].
//! - **M-step**: sufficient statistics
//!   `g++ = Σ c+_i r+_i`, `g-+ = Σ c-_i r+_i`, `g+- = Σ c+_i (1-r+_i)`,
//!   `g-- = Σ c-_i (1-r+_i)`, `g+ = Σ r+_i`, `g- = Σ (1-r+_i)`; then for a
//!   fixed grid of `pA` values the maximizing rates are
//!   `np+S = (g++ + g+-)/(g- + pA·g+ − pA·g-)` and
//!   `np-S = (g-+ + g--)/(g+ + pA·g- − pA·g+)`, and the grid point with
//!   the highest `Q'` wins ("we speed up computations by trying a fixed
//!   set of values for pA", §6).
//!
//! Each iteration is O(m · |grid|) in the number of entities and
//! independent of the number of extracted mentions — the property §7.1
//! credits for the 10-minute Web-scale EM run.

use crate::counts::ObservedCounts;
use crate::inference::{ln_joint_negative, ln_joint_positive, posterior_positive};
use crate::params::ModelParams;
use serde::{Deserialize, Serialize};

/// EM configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmConfig {
    /// Maximum number of iterations (`X` in Algorithm 2).
    pub max_iterations: usize,
    /// Fixed grid of agreement values tried in the M-step. Restricted to
    /// `pA >= 0.5`, which pins the labeling (swapping the roles of the two
    /// opinion classes is equivalent to `pA → 1-pA`, so the grid
    /// restriction breaks that symmetry).
    pub pa_grid: Vec<f64>,
    /// Convergence tolerance on the parameter vector; iteration stops
    /// early when no component moves more than this.
    pub tolerance: f64,
    /// Positive-share guesses used to seed independent EM starts; the
    /// start with the best final mixture likelihood wins. EM's likelihood
    /// surface has local optima when the two count classes overlap (low
    /// rates), and a share-diverse multi-start escapes them.
    pub restart_shares: Vec<f64>,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            max_iterations: 50,
            pa_grid: (50..100).step_by(2).map(|p| p as f64 / 100.0).collect(),
            tolerance: 1e-9,
            restart_shares: vec![0.5, 0.25, 0.1],
        }
    }
}

/// Why an EM run stopped — the convergence telemetry surfaced per
/// (type, property) group in run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConvergenceReason {
    /// No parameter component moved more than the configured tolerance
    /// (the early exit Algorithm 2 aims for).
    Tolerance,
    /// The iteration budget `X` ran out before the tolerance was met.
    MaxIterations,
    /// Degenerate evidence: no grid point produced a valid M-step, so
    /// the current parameters were kept and iteration stopped.
    Degenerate,
}

impl ConvergenceReason {
    /// Stable lowercase label used in serialized run reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Tolerance => "tolerance",
            Self::MaxIterations => "max_iterations",
            Self::Degenerate => "degenerate",
        }
    }

    /// Stable numeric code used by the binary snapshot format (section
    /// `MODL` of `FORMAT.md`). Codes are frozen — new reasons must take
    /// fresh numbers, never reuse these.
    pub fn code(&self) -> u8 {
        match self {
            Self::Tolerance => 0,
            Self::MaxIterations => 1,
            Self::Degenerate => 2,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Tolerance),
            1 => Some(Self::MaxIterations),
            2 => Some(Self::Degenerate),
            _ => None,
        }
    }
}

/// Result of an EM fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmFit {
    /// The fitted parameter vector `θ_X`.
    pub params: ModelParams,
    /// Iterations actually run (may stop early on convergence).
    pub iterations: usize,
    /// Expected complete-data log-likelihood `Q'` after the final M-step;
    /// useful for regression tests and the likelihood-monotonicity
    /// property test.
    pub q_trace: Vec<f64>,
    /// Largest parameter movement per iteration (parallel to `q_trace`
    /// except for the degenerate-stop case, where the final iteration
    /// records neither).
    pub delta_trace: Vec<f64>,
    /// Why the winning restart stopped iterating.
    pub converged: ConvergenceReason,
    /// Mixture log-likelihood of the returned parameters — the restart
    /// selection criterion, exposed so run reports need not recompute it.
    pub log_likelihood: f64,
}

/// Sufficient statistics of one E-step.
#[derive(Debug, Clone, Copy, Default)]
struct Stats {
    g_pos_pos: f64,
    g_neg_pos: f64,
    g_pos_neg: f64,
    g_neg_neg: f64,
    g_pos: f64,
    g_neg: f64,
}

fn e_step_stats(counts: &[ObservedCounts], params: &ModelParams) -> Stats {
    let mut s = Stats::default();
    for c in counts {
        let r = posterior_positive(*c, params);
        s.g_pos_pos += c.positive as f64 * r;
        s.g_neg_pos += c.negative as f64 * r;
        s.g_pos_neg += c.positive as f64 * (1.0 - r);
        s.g_neg_neg += c.negative as f64 * (1.0 - r);
        s.g_pos += r;
        s.g_neg += 1.0 - r;
    }
    s
}

/// `Q'(θ)` evaluated from sufficient statistics:
/// `g++·ln λ++ − g+·λ++ + g-+·ln λ-+ − g+·λ-+ + g+-·ln λ+- − g-·λ+- +
///  g--·ln λ-- − g-·λ--` (the Appendix C form, with expected counts in
/// place of per-entity terms).
fn q_prime(stats: &Stats, params: &ModelParams) -> f64 {
    let l = params.lambdas();
    let term = |g_count: f64, g_mass: f64, lambda: f64| -> f64 {
        if lambda == 0.0 {
            if g_count > 0.0 {
                f64::NEG_INFINITY
            } else {
                0.0
            }
        } else {
            g_count * lambda.ln() - g_mass * lambda
        }
    };
    term(stats.g_pos_pos, stats.g_pos, l.pos_pos)
        + term(stats.g_neg_pos, stats.g_pos, l.neg_pos)
        + term(stats.g_pos_neg, stats.g_neg, l.pos_neg)
        + term(stats.g_neg_neg, stats.g_neg, l.neg_neg)
}

/// Closed-form M-step for one grid value of `pA`; `None` when a
/// denominator is non-positive (that grid point cannot maximize).
fn m_step_rates(stats: &Stats, pa: f64) -> Option<(f64, f64)> {
    let denom_pos = stats.g_neg + pa * stats.g_pos - pa * stats.g_neg;
    let denom_neg = stats.g_pos + pa * stats.g_neg - pa * stats.g_pos;
    if denom_pos <= 0.0 || denom_neg <= 0.0 {
        return None;
    }
    let rate_pos = (stats.g_pos_pos + stats.g_pos_neg) / denom_pos;
    let rate_neg = (stats.g_neg_pos + stats.g_neg_neg) / denom_neg;
    if !rate_pos.is_finite() || !rate_neg.is_finite() {
        return None;
    }
    Some((rate_pos, rate_neg))
}

/// Moment-matched initial guess assuming a positive share of `share`:
/// `E[c+] = share·pA·np+S + (1-share)·(1-pA)·np+S` (and symmetrically for
/// negatives), solved for the rates at a provisional `pA = 0.8`.
fn initial_guess(counts: &[ObservedCounts], share: f64) -> ModelParams {
    let m = counts.len().max(1) as f64;
    let mean_pos: f64 = counts.iter().map(|c| c.positive as f64).sum::<f64>() / m;
    let mean_neg: f64 = counts.iter().map(|c| c.negative as f64).sum::<f64>() / m;
    let pa0 = 0.8;
    let pos_factor = share * pa0 + (1.0 - share) * (1.0 - pa0);
    let neg_factor = (1.0 - share) * pa0 + share * (1.0 - pa0);
    ModelParams::new(
        pa0,
        (mean_pos / pos_factor.max(1e-6)).max(1e-3),
        (mean_neg / neg_factor.max(1e-6)).max(1e-3),
    )
}

/// Fits the model to the evidence of one (type, property) combination.
///
/// `counts` must contain one tuple per entity of the type — including the
/// all-zero tuples of never-mentioned entities, which carry real signal
/// (§2). Runs one EM per configured restart share and returns the fit with
/// the best mixture likelihood.
///
/// # Panics
/// Panics if `counts` is empty or the grid is empty/out of range.
pub fn fit(counts: &[ObservedCounts], config: &EmConfig) -> EmFit {
    assert!(!counts.is_empty(), "EM needs at least one entity");
    assert!(!config.pa_grid.is_empty(), "EM needs a non-empty pA grid");
    for &pa in &config.pa_grid {
        assert!(
            (0.5..=1.0).contains(&pa),
            "pA grid values must lie in [0.5, 1], got {pa}"
        );
    }
    let shares = if config.restart_shares.is_empty() {
        &[0.5][..]
    } else {
        &config.restart_shares[..]
    };
    let mut best: Option<(f64, EmFit)> = None;
    for &share in shares {
        let mut candidate = fit_from(counts, config, share);
        let ll = mixture_log_likelihood(counts, &candidate.params);
        candidate.log_likelihood = ll;
        if best.as_ref().is_none_or(|(b, _)| ll > *b) {
            best = Some((ll, candidate));
        }
    }
    best.expect("at least one restart").1 // lint:allow(no-panic-in-lib): shares is never empty (defaulted above), so the loop always sets best
}

/// Fits the model with a single EM run warm-started from an explicit
/// parameter vector — typically the previous snapshot's fit for the same
/// (type, property) group.
///
/// Unlike [`fit`], no restarts are run: when the evidence moved only a
/// little, the previous optimum is already in the right basin and one
/// run from it converges in a handful of iterations. The telemetry
/// (iteration count, traces) therefore differs from a cold [`fit`] even
/// when both land on the same optimum — callers that need byte-identical
/// output to a cold run must use [`fit`] and reserve `fit_warm` for
/// speed-over-reproducibility paths.
///
/// # Panics
/// Panics if `counts` is empty or the grid is empty/out of range.
pub fn fit_warm(counts: &[ObservedCounts], config: &EmConfig, initial: &ModelParams) -> EmFit {
    assert!(!counts.is_empty(), "EM needs at least one entity");
    assert!(!config.pa_grid.is_empty(), "EM needs a non-empty pA grid");
    for &pa in &config.pa_grid {
        assert!(
            (0.5..=1.0).contains(&pa),
            "pA grid values must lie in [0.5, 1], got {pa}"
        );
    }
    let mut fit = run_em(counts, config, *initial);
    fit.log_likelihood = mixture_log_likelihood(counts, &fit.params);
    fit
}

/// One EM run from a share-seeded initialization.
fn fit_from(counts: &[ObservedCounts], config: &EmConfig, share: f64) -> EmFit {
    run_em(counts, config, initial_guess(counts, share))
}

/// The EM iteration loop from an explicit starting point.
fn run_em(counts: &[ObservedCounts], config: &EmConfig, start: ModelParams) -> EmFit {
    let mut params = start;
    let mut q_trace = Vec::new();
    let mut delta_trace = Vec::new();
    let mut iterations = 0;
    let mut converged = ConvergenceReason::MaxIterations;

    for _ in 0..config.max_iterations {
        iterations += 1;
        let stats = e_step_stats(counts, &params);

        let mut best: Option<(f64, ModelParams)> = None;
        for &pa in &config.pa_grid {
            let Some((rate_pos, rate_neg)) = m_step_rates(&stats, pa) else {
                continue;
            };
            let candidate = ModelParams::new(pa, rate_pos, rate_neg);
            let q = q_prime(&stats, &candidate);
            if best.as_ref().is_none_or(|(bq, _)| q > *bq) {
                best = Some((q, candidate));
            }
        }
        let Some((q, next)) = best else {
            // Degenerate evidence (e.g. no statements at all): keep the
            // current parameters and stop.
            converged = ConvergenceReason::Degenerate;
            break;
        };
        q_trace.push(q);

        let delta = (next.p_agree - params.p_agree)
            .abs()
            .max((next.rate_pos - params.rate_pos).abs())
            .max((next.rate_neg - params.rate_neg).abs());
        delta_trace.push(delta);
        params = next;
        if delta < config.tolerance {
            converged = ConvergenceReason::Tolerance;
            break;
        }
    }

    EmFit {
        params,
        iterations,
        q_trace,
        delta_trace,
        converged,
        // Overwritten by `fit` with the mixture likelihood once the
        // winning restart is known.
        log_likelihood: f64::NEG_INFINITY,
    }
}

/// Log-likelihood of the observed counts under the two-component mixture
/// with uniform prior — the quantity EM ascends (used by tests).
pub fn mixture_log_likelihood(counts: &[ObservedCounts], params: &ModelParams) -> f64 {
    counts
        .iter()
        .map(|&c| {
            let a = ln_joint_positive(c, params) - std::f64::consts::LN_2;
            let b = ln_joint_negative(c, params) - std::f64::consts::LN_2;
            // log(exp(a) + exp(b)) stably; subtract the shared log c!
            // constant, which does not affect comparisons between θ.
            let hi = a.max(b);
            if hi == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                hi + ((a - hi).exp() + (b - hi).exp()).ln()
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surveyor_prob::Poisson;

    /// Samples counts for `m` entities from the generative model.
    fn sample_counts(
        truth: &ModelParams,
        positive_fraction: f64,
        m: usize,
        seed: u64,
    ) -> (Vec<ObservedCounts>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = truth.lambdas();
        let mut counts = Vec::with_capacity(m);
        let mut labels = Vec::with_capacity(m);
        for i in 0..m {
            let positive = (i as f64) < positive_fraction * m as f64;
            let (lp, ln) = if positive {
                (l.pos_pos, l.neg_pos)
            } else {
                (l.pos_neg, l.neg_neg)
            };
            counts.push(ObservedCounts::new(
                Poisson::new(lp).sample(&mut rng),
                Poisson::new(ln).sample(&mut rng),
            ));
            labels.push(positive);
        }
        (counts, labels)
    }

    #[test]
    fn convergence_codes_round_trip() {
        for reason in [
            ConvergenceReason::Tolerance,
            ConvergenceReason::MaxIterations,
            ConvergenceReason::Degenerate,
        ] {
            assert_eq!(ConvergenceReason::from_code(reason.code()), Some(reason));
        }
        assert_eq!(ConvergenceReason::from_code(3), None);
        assert_eq!(ConvergenceReason::from_code(255), None);
    }

    #[test]
    fn recovers_parameters_of_example3_style_model() {
        let truth = ModelParams::new(0.9, 100.0, 5.0);
        let (counts, _) = sample_counts(&truth, 0.4, 600, 11);
        let fit = fit(&counts, &EmConfig::default());
        assert!(
            (fit.params.p_agree - 0.9).abs() <= 0.05,
            "pA={}",
            fit.params.p_agree
        );
        assert!(
            (fit.params.rate_pos - 100.0).abs() < 10.0,
            "np+S={}",
            fit.params.rate_pos
        );
        assert!(
            (fit.params.rate_neg - 5.0).abs() < 1.5,
            "np-S={}",
            fit.params.rate_neg
        );
    }

    #[test]
    fn posterior_classifies_planted_labels() {
        let truth = ModelParams::new(0.85, 60.0, 8.0);
        let (counts, labels) = sample_counts(&truth, 0.5, 400, 23);
        let fit = fit(&counts, &EmConfig::default());
        let mut correct = 0;
        for (c, &label) in counts.iter().zip(&labels) {
            let p = posterior_positive(*c, &fit.params);
            if (p > 0.5) == label {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / labels.len() as f64;
        assert!(accuracy > 0.95, "accuracy = {accuracy}");
    }

    #[test]
    fn q_trace_is_monotone_nondecreasing() {
        let truth = ModelParams::new(0.9, 40.0, 4.0);
        let (counts, _) = sample_counts(&truth, 0.3, 300, 7);
        let fit = fit(&counts, &EmConfig::default());
        for w in fit.q_trace.windows(2) {
            // Q' is re-evaluated under new stats each iteration, so exact
            // monotonicity holds for the mixture likelihood; Q' itself may
            // fluctuate within tolerance. Accept tiny decreases.
            assert!(
                w[1] >= w[0] - 1e-6 * w[0].abs().max(1.0),
                "trace {:?}",
                fit.q_trace
            );
        }
    }

    #[test]
    fn mixture_likelihood_improves_over_initial_guess() {
        let truth = ModelParams::new(0.9, 80.0, 6.0);
        let (counts, _) = sample_counts(&truth, 0.4, 500, 31);
        let initial = initial_guess(&counts, 0.5);
        let fit = fit(&counts, &EmConfig::default());
        let before = mixture_log_likelihood(&counts, &initial);
        let after = mixture_log_likelihood(&counts, &fit.params);
        assert!(after >= before, "before={before} after={after}");
    }

    #[test]
    fn convergence_telemetry_is_recorded() {
        let truth = ModelParams::new(0.9, 80.0, 6.0);
        let (counts, _) = sample_counts(&truth, 0.4, 500, 31);
        let fit = fit(&counts, &EmConfig::default());
        // A well-separated sample converges on tolerance well before the
        // iteration budget.
        assert_eq!(fit.converged, ConvergenceReason::Tolerance);
        assert_eq!(fit.delta_trace.len(), fit.iterations);
        assert!(*fit.delta_trace.last().unwrap() < EmConfig::default().tolerance);
        assert!(fit.log_likelihood.is_finite());
        assert_eq!(
            fit.log_likelihood,
            mixture_log_likelihood(&counts, &fit.params)
        );

        // An exhausted budget reports max_iterations.
        let strict = EmConfig {
            max_iterations: 1,
            tolerance: 0.0,
            ..EmConfig::default()
        };
        let fit = fit_from(&counts, &strict, 0.5);
        assert_eq!(fit.converged, ConvergenceReason::MaxIterations);
        assert_eq!(fit.converged.as_str(), "max_iterations");
    }

    #[test]
    fn warm_start_from_the_cold_optimum_converges_immediately() {
        let truth = ModelParams::new(0.9, 80.0, 6.0);
        let (counts, _) = sample_counts(&truth, 0.4, 500, 31);
        let cold = fit(&counts, &EmConfig::default());
        let warm = fit_warm(&counts, &EmConfig::default(), &cold.params);
        // Restarting EM at a converged optimum must stay there, fast.
        assert!(warm.iterations <= 2, "iterations = {}", warm.iterations);
        assert_eq!(warm.converged, ConvergenceReason::Tolerance);
        assert!((warm.params.p_agree - cold.params.p_agree).abs() < 1e-6);
        assert!((warm.params.rate_pos - cold.params.rate_pos).abs() < 1e-3);
        assert_eq!(
            warm.log_likelihood,
            mixture_log_likelihood(&counts, &warm.params)
        );
    }

    #[test]
    fn warm_start_reaches_the_cold_likelihood_on_perturbed_counts() {
        let truth = ModelParams::new(0.9, 60.0, 5.0);
        let (mut counts, _) = sample_counts(&truth, 0.4, 400, 17);
        let cold_before = fit(&counts, &EmConfig::default());
        // A small delta: a few entities gain a handful of statements.
        for c in counts.iter_mut().take(10) {
            *c = ObservedCounts::new(c.positive + 2, c.negative);
        }
        let cold_after = fit(&counts, &EmConfig::default());
        let warm = fit_warm(&counts, &EmConfig::default(), &cold_before.params);
        // The warm run lands within noise of the cold optimum...
        assert!(
            (warm.log_likelihood - cold_after.log_likelihood).abs()
                < 1e-6 * cold_after.log_likelihood.abs(),
            "warm ll = {}, cold ll = {}",
            warm.log_likelihood,
            cold_after.log_likelihood
        );
        // ...in fewer iterations than the cheapest cold restart spends.
        assert!(warm.iterations <= cold_after.iterations);
    }

    #[test]
    #[should_panic(expected = "at least one entity")]
    fn warm_start_with_empty_counts_panics() {
        let _ = fit_warm(&[], &EmConfig::default(), &ModelParams::new(0.9, 1.0, 1.0));
    }

    #[test]
    fn all_zero_counts_terminate_gracefully() {
        let counts = vec![ObservedCounts::zero(); 50];
        let fit = fit(&counts, &EmConfig::default());
        assert!(fit.params.rate_pos >= 0.0 && fit.params.rate_neg >= 0.0);
        assert!(fit.iterations <= EmConfig::default().max_iterations);
    }

    #[test]
    fn single_entity_does_not_crash() {
        let fit = fit(&[ObservedCounts::new(5, 1)], &EmConfig::default());
        assert!(fit.params.p_agree >= 0.5);
    }

    #[test]
    fn occurrence_bias_is_learned_from_unmentioned_entities() {
        // 10 chatty positive entities, 90 silent negative ones: the model
        // must learn λ++ large so zero-count entities classify negative.
        let truth = ModelParams::new(0.95, 50.0, 0.5);
        let (counts, _) = sample_counts(&truth, 0.1, 100, 3);
        let fit = fit(&counts, &EmConfig::default());
        let p_zero = posterior_positive(ObservedCounts::zero(), &fit.params);
        assert!(p_zero < 0.01, "p(zero)={p_zero}");
    }

    #[test]
    fn polarity_bias_is_learned() {
        // Negative statements are rare even for negative-dominant entities
        // (np-S small): a (2, 2) tie must NOT be read as 50/50.
        let truth = ModelParams::new(0.9, 30.0, 3.0);
        let (counts, _) = sample_counts(&truth, 0.5, 400, 19);
        let fit = fit(&counts, &EmConfig::default());
        // 2 negative statements are a lot when np-S ~ 3: lean negative.
        let p = posterior_positive(ObservedCounts::new(2, 2), &fit.params);
        assert!(p < 0.5, "p={p}");
    }

    #[test]
    #[should_panic(expected = "at least one entity")]
    fn empty_counts_panics() {
        let _ = fit(&[], &EmConfig::default());
    }

    #[test]
    #[should_panic(expected = "pA grid")]
    fn out_of_range_grid_panics() {
        let config = EmConfig {
            pa_grid: vec![0.3],
            ..EmConfig::default()
        };
        let _ = fit(&[ObservedCounts::zero()], &config);
    }
}
