//! The Surveyor probabilistic user-behavior model (paper §5–§6).
//!
//! This crate is the paper's primary contribution: a per-(type, property)
//! Bayesian network over author behavior —
//!
//! ```text
//! D_i  (dominant opinion)  --pA-->  O_iw (author opinion)
//! O_iw --p+S / p-S-->  S_iw (statement / no statement)
//! (C+_i, C-_i) = counts of S_iw = +/- over all documents w
//! ```
//!
//! whose count likelihood factorizes into four Poisson distributions
//! (`λ^{σ2}_{σ1} = n · f(pA) · pS`), trained unsupervised with
//! expectation-maximization where both steps have closed forms, making each
//! iteration O(m) in the number of entities and independent of the number
//! of mentions (§6).
//!
//! Modules:
//! - [`counts`]: the observed evidence tuple `⟨C+, C-⟩`.
//! - [`params`]: model parameters `(pA, np+S, np-S)` and the four Poisson
//!   rates.
//! - [`inference`]: the posterior `Pr(D_i | C+_i, C-_i)` (the E-step and
//!   the deployed decision rule).
//! - [`em`]: the EM fitting loop with the closed-form M-step.
//! - [`decision`]: Algorithm 1's thresholded output.
//! - [`baselines`]: the comparison methods of §7.4 — majority vote, scaled
//!   majority vote, and a WebChild-style occurrence baseline.
//! - [`model`]: the [`OpinionModel`] trait unifying Surveyor and the
//!   baselines for the evaluation harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod counts;
pub mod decision;
pub mod em;
pub mod inference;
pub mod model;
pub mod params;

pub use baselines::{MajorityVote, ScaledMajorityVote, WebChildBaseline};
pub use counts::ObservedCounts;
pub use decision::{decide, Decision, ModelDecision};
pub use em::{fit, fit_warm, ConvergenceReason, EmConfig, EmFit};
pub use inference::posterior_positive;
pub use model::{OpinionModel, SurveyorModel};
pub use params::ModelParams;
