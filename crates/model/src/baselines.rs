//! Baseline methods of the paper's comparison (§7.4).
//!
//! - **Majority Vote**: sign of `C+ − C-`; tie (including 0,0) ⇒ unsolved.
//! - **Scaled Majority Vote**: scales negative counts by the *global*
//!   average ratio of positive to negative statements — "a gross
//!   adjustment of the inherent bias against negative statements" that is
//!   deliberately *not* type/property specific.
//! - **WebChild baseline**: an occurrence-threshold tagger modeled on the
//!   published characteristics of WebChild \[22\]: it contains an entity only
//!   if the entity is mentioned often enough anywhere on the Web, treats
//!   absence of a property as a negative assertion, and — crucially — does
//!   not detect negations, so negative statements count as co-occurrence
//!   evidence *for* the property (the paper observed exactly this failure
//!   on `cute animals`).

use crate::counts::ObservedCounts;
use crate::decision::{Decision, ModelDecision};
use crate::model::OpinionModel;

/// Plain majority vote.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl OpinionModel for MajorityVote {
    fn name(&self) -> &'static str {
        "Majority Vote"
    }

    fn decide_group(&self, counts: &[ObservedCounts]) -> Vec<ModelDecision> {
        counts
            .iter()
            .map(|c| {
                let decision = match c.positive.cmp(&c.negative) {
                    std::cmp::Ordering::Greater => Decision::Positive,
                    std::cmp::Ordering::Less => Decision::Negative,
                    std::cmp::Ordering::Equal => Decision::Unsolved,
                };
                ModelDecision {
                    decision,
                    probability: None,
                }
            })
            .collect()
    }
}

/// Majority vote with negative counts scaled by a global polarity ratio.
#[derive(Debug, Clone, Copy)]
pub struct ScaledMajorityVote {
    scale: f64,
}

impl ScaledMajorityVote {
    /// Creates the baseline with an explicit scale factor (the global
    /// ratio of positive to negative statements).
    ///
    /// # Panics
    /// Panics if the scale is non-finite or non-positive.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be finite and positive, got {scale}"
        );
        Self { scale }
    }

    /// Computes the global scale from corpus-wide statement totals,
    /// falling back to 1.0 when either total is zero.
    pub fn from_totals(total_positive: u64, total_negative: u64) -> Self {
        if total_positive == 0 || total_negative == 0 {
            Self::new(1.0)
        } else {
            Self::new(total_positive as f64 / total_negative as f64)
        }
    }

    /// The scale factor in use.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl OpinionModel for ScaledMajorityVote {
    fn name(&self) -> &'static str {
        "Scaled Majority Vote"
    }

    fn decide_group(&self, counts: &[ObservedCounts]) -> Vec<ModelDecision> {
        counts
            .iter()
            .map(|c| {
                let scaled_neg = c.negative as f64 * self.scale;
                let pos = c.positive as f64;
                let decision = if pos > scaled_neg {
                    Decision::Positive
                } else if pos < scaled_neg {
                    Decision::Negative
                } else {
                    Decision::Unsolved
                };
                ModelDecision {
                    decision,
                    probability: None,
                }
            })
            .collect()
    }
}

/// WebChild-style occurrence baseline.
///
/// Per entity the caller supplies, besides the per-property counts, the
/// entity's *total* mention count across all properties (which determines
/// KB membership). Entities below the membership threshold are unsolved
/// ("the only reason for loss of coverage for WebChild is that an entity
/// is not contained in the knowledge base", §7.4).
#[derive(Debug, Clone)]
pub struct WebChildBaseline {
    /// Minimum total mentions for the entity to exist in WebChild's KB.
    membership_threshold: u64,
    /// Minimum co-occurrence count (positive + negative — no negation
    /// detection) to assert the property.
    association_threshold: u64,
    /// Total mentions per entity, parallel to the group's entity order.
    entity_mentions: Vec<u64>,
}

impl WebChildBaseline {
    /// Creates the baseline.
    ///
    /// `entity_mentions[i]` is the total number of statements extracted
    /// about entity `i` across *all* properties of its type.
    pub fn new(
        membership_threshold: u64,
        association_threshold: u64,
        entity_mentions: Vec<u64>,
    ) -> Self {
        assert!(
            association_threshold > 0,
            "association threshold must be positive"
        );
        Self {
            membership_threshold,
            association_threshold,
            entity_mentions,
        }
    }
}

impl OpinionModel for WebChildBaseline {
    fn name(&self) -> &'static str {
        "WebChild"
    }

    fn decide_group(&self, counts: &[ObservedCounts]) -> Vec<ModelDecision> {
        assert_eq!(
            counts.len(),
            self.entity_mentions.len(),
            "entity mention vector must be parallel to the counts"
        );
        counts
            .iter()
            .zip(&self.entity_mentions)
            .map(|(c, &mentions)| {
                if mentions < self.membership_threshold {
                    return ModelDecision::unsolved();
                }
                // No negation detection: all co-occurrences count as
                // support; absence of the property is a negative assertion.
                let decision = if c.total() >= self.association_threshold {
                    Decision::Positive
                } else {
                    Decision::Negative
                };
                ModelDecision {
                    decision,
                    probability: None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_vote_rules() {
        let counts = [
            ObservedCounts::new(3, 1),
            ObservedCounts::new(1, 3),
            ObservedCounts::new(2, 2),
            ObservedCounts::zero(),
        ];
        let d = MajorityVote.decide_group(&counts);
        assert_eq!(d[0].decision, Decision::Positive);
        assert_eq!(d[1].decision, Decision::Negative);
        assert_eq!(d[2].decision, Decision::Unsolved);
        assert_eq!(d[3].decision, Decision::Unsolved);
        assert!(d.iter().all(|x| x.probability.is_none()));
    }

    #[test]
    fn scaled_majority_vote_corrects_polarity_bias() {
        // Globally positives outnumber negatives 10:1, so one negative
        // statement outweighs five positive ones.
        let smv = ScaledMajorityVote::from_totals(1000, 100);
        assert!((smv.scale() - 10.0).abs() < 1e-12);
        let counts = [
            ObservedCounts::new(5, 1),  // 5 vs 10 -> negative
            ObservedCounts::new(15, 1), // 15 vs 10 -> positive
            ObservedCounts::new(10, 1), // exact tie -> unsolved
            ObservedCounts::zero(),     // 0 vs 0 -> unsolved
        ];
        let d = smv.decide_group(&counts);
        assert_eq!(d[0].decision, Decision::Negative);
        assert_eq!(d[1].decision, Decision::Positive);
        assert_eq!(d[2].decision, Decision::Unsolved);
        assert_eq!(d[3].decision, Decision::Unsolved);
    }

    #[test]
    fn scaled_majority_vote_degenerate_totals() {
        assert_eq!(ScaledMajorityVote::from_totals(0, 5).scale(), 1.0);
        assert_eq!(ScaledMajorityVote::from_totals(5, 0).scale(), 1.0);
    }

    #[test]
    fn webchild_membership_gates_coverage() {
        let wc = WebChildBaseline::new(5, 2, vec![10, 1, 10]);
        let counts = [
            ObservedCounts::new(3, 0),
            ObservedCounts::new(3, 0),
            ObservedCounts::new(0, 0),
        ];
        let d = wc.decide_group(&counts);
        assert_eq!(d[0].decision, Decision::Positive);
        assert_eq!(d[1].decision, Decision::Unsolved); // not in WebChild KB
        assert_eq!(d[2].decision, Decision::Negative); // absence = negative
    }

    #[test]
    fn webchild_counts_negations_as_support() {
        // The documented failure mode: "X is not cute" statements still
        // push WebChild toward asserting cute.
        let wc = WebChildBaseline::new(1, 3, vec![10]);
        let d = wc.decide_group(&[ObservedCounts::new(0, 4)]);
        assert_eq!(d[0].decision, Decision::Positive);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn webchild_mismatched_lengths_panic() {
        let wc = WebChildBaseline::new(1, 1, vec![1]);
        let _ = wc.decide_group(&[ObservedCounts::zero(), ObservedCounts::zero()]);
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(MajorityVote.name(), "Majority Vote");
        assert_eq!(ScaledMajorityVote::new(1.0).name(), "Scaled Majority Vote");
        assert_eq!(WebChildBaseline::new(1, 1, vec![]).name(), "WebChild");
    }
}
