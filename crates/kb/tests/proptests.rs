//! Property-based tests for the knowledge base: builder/lookup round
//! trips and property parsing.

use proptest::prelude::*;
use surveyor_kb::kb::normalize_surface;
use surveyor_kb::{KnowledgeBaseBuilder, Property, PropertyId};

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Z][a-z]{1,10}( [A-Z][a-z]{1,10})?"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn property_parse_display_round_trip(
        adverbs in prop::collection::vec("[a-z]{2,10}", 0..3),
        adjective in "[a-z]{2,12}",
    ) {
        let surface = adverbs
            .iter()
            .map(String::as_str)
            .chain(std::iter::once(adjective.as_str()))
            .collect::<Vec<_>>()
            .join(" ");
        let p = Property::parse(&surface).unwrap();
        prop_assert_eq!(p.to_string(), surface);
        prop_assert_eq!(p.head(), adjective.as_str());
        prop_assert_eq!(p.adverbs().len(), adverbs.len());
    }

    #[test]
    fn interning_round_trips_losslessly(
        adverbs in prop::collection::vec("[a-z]{2,10}", 0..3),
        adjective in "[a-z]{2,12}",
    ) {
        let p = Property::with_adverbs(
            &adverbs.iter().map(String::as_str).collect::<Vec<_>>(),
            &adjective,
        );
        // Property → id → Property loses nothing.
        let id = PropertyId::intern(&p);
        prop_assert_eq!(id.resolve(), p.clone());
        // Interning again (by property or by surface form) is stable.
        prop_assert_eq!(PropertyId::intern(&p), id);
        prop_assert_eq!(PropertyId::intern_surface(&p.to_string()), Some(id));
        prop_assert_eq!(PropertyId::lookup(&p), Some(id));
        // Serialization goes through the resolved property, so a
        // round-tripped id maps back to the same property.
        use serde::{Deserialize, Serialize};
        let back = PropertyId::from_value(&Serialize::to_value(&id)).unwrap();
        prop_assert_eq!(back.resolve(), p);
    }

    #[test]
    fn builder_lookup_round_trip(names in prop::collection::hash_set(name_strategy(), 1..24)) {
        let mut b = KnowledgeBaseBuilder::new();
        let t = b.add_type("thing", &["thing"], &[]);
        let names: Vec<String> = names.into_iter().collect();
        // Skip name sets that collide after normalization.
        let mut norms = std::collections::HashSet::new();
        if !names.iter().all(|n| norms.insert(normalize_surface(n))) {
            return Ok(());
        }
        let mut ids = Vec::new();
        for name in &names {
            ids.push(b.add_entity(name, t).finish());
        }
        let kb = b.build();
        prop_assert_eq!(kb.len(), names.len());
        for (name, id) in names.iter().zip(&ids) {
            prop_assert_eq!(kb.entity_by_name(name), Some(*id));
            prop_assert_eq!(kb.entity(*id).name(), name.as_str());
            // Lookup is case-insensitive.
            prop_assert_eq!(kb.entity_by_name(&name.to_uppercase()), Some(*id));
        }
    }

    #[test]
    fn entities_of_type_partitions_the_kb(
        a_count in 0usize..16,
        b_count in 0usize..16,
    ) {
        let mut b = KnowledgeBaseBuilder::new();
        let ta = b.add_type("alpha", &[], &[]);
        let tb = b.add_type("beta", &[], &[]);
        for i in 0..a_count {
            b.add_entity(&format!("A{i}"), ta).finish();
        }
        for i in 0..b_count {
            b.add_entity(&format!("B{i}"), tb).finish();
        }
        let kb = b.build();
        prop_assert_eq!(kb.entities_of_type(ta).len(), a_count);
        prop_assert_eq!(kb.entities_of_type(tb).len(), b_count);
        prop_assert_eq!(kb.len(), a_count + b_count);
    }

    #[test]
    fn normalize_surface_is_idempotent(s in "[a-zA-Z ]{0,30}") {
        let once = normalize_surface(&s);
        prop_assert_eq!(normalize_surface(&once), once);
    }

    #[test]
    fn ambiguous_aliases_are_never_silently_resolved(name in name_strategy()) {
        let mut b = KnowledgeBaseBuilder::new();
        let t1 = b.add_type("one", &[], &[]);
        let t2 = b.add_type("two", &[], &[]);
        b.add_entity(&name, t1).finish();
        b.add_entity(&format!("{name} Other"), t2).alias(&name).finish();
        let kb = b.build();
        prop_assert!(kb.is_ambiguous(&normalize_surface(&name)));
        prop_assert_eq!(kb.entity_by_name(&name), None);
    }
}
