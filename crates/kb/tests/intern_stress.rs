//! Concurrency stress for the sharded interner: many threads interning an
//! overlapping property set must agree on every id, never deadlock, and
//! leave the dense id space hole-free.

use std::collections::BTreeMap;
use surveyor_kb::{InternCache, Property, PropertyId};

/// The overlapping vocabulary every thread interns: a shared core (maximal
/// contention on the same shards) plus adverb variants that spread over
/// shards.
fn vocabulary() -> Vec<Property> {
    let mut out = Vec::new();
    for adjective in [
        "stress-big",
        "stress-cute",
        "stress-dangerous",
        "stress-calm",
        "stress-boring",
        "stress-fast",
        "stress-vital",
        "stress-rare",
    ] {
        out.push(Property::adjective(adjective));
        for adverb in ["very", "really", "quite", "extremely"] {
            out.push(Property::with_adverbs(&[adverb], adjective));
        }
    }
    out
}

#[test]
fn threads_agree_on_ids_without_deadlock() {
    let vocab = vocabulary();
    let mut handles = Vec::new();
    for worker in 0..8 {
        let vocab = vocab.clone();
        handles.push(std::thread::spawn(move || {
            let mut seen: BTreeMap<String, PropertyId> = BTreeMap::new();
            // Each worker walks the shared vocabulary many times from a
            // different offset, interleaving first-inserts and re-interns.
            for round in 0..50 {
                for i in 0..vocab.len() {
                    let p = &vocab[(i + worker * 7 + round) % vocab.len()];
                    let id = PropertyId::intern(p);
                    assert_eq!(id.resolve(), *p, "id resolves to a different property");
                    let prev = seen.insert(p.to_string(), id);
                    if let Some(prev) = prev {
                        assert_eq!(prev, id, "id changed between rounds for {p}");
                    }
                }
            }
            seen
        }));
    }
    let maps: Vec<BTreeMap<String, PropertyId>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Every thread assigned the same id to the same property.
    let reference = &maps[0];
    assert_eq!(reference.len(), vocabulary().len());
    for other in &maps[1..] {
        assert_eq!(reference, other, "threads disagree on interned ids");
    }
}

#[test]
fn surface_and_property_paths_race_to_one_id() {
    // Half the threads intern by property, half by canonical surface;
    // both paths must converge on a single id per property.
    let vocab = vocabulary();
    let mut handles = Vec::new();
    for worker in 0..8 {
        let vocab = vocab.clone();
        handles.push(std::thread::spawn(move || {
            let mut cache = InternCache::new();
            let mut ids = Vec::new();
            for p in &vocab {
                let id = if worker % 2 == 0 {
                    PropertyId::intern(p)
                } else {
                    cache
                        .intern_surface(&p.to_string())
                        .expect("vocabulary surfaces are non-blank")
                };
                ids.push(id);
            }
            // A warming pass, then a pass that must be all local hits.
            for (p, &id) in vocab.iter().zip(&ids) {
                assert_eq!(cache.intern_surface(&p.to_string()), Some(id));
            }
            let warmed = cache.stats();
            for (p, &id) in vocab.iter().zip(&ids) {
                assert_eq!(cache.intern_surface(&p.to_string()), Some(id));
            }
            assert_eq!(
                cache.stats().hits,
                warmed.hits + vocab.len() as u64,
                "warm-cache pass was not all hits"
            );
            assert_eq!(
                cache.stats().global_lookups,
                warmed.global_lookups,
                "warm-cache pass touched the global table"
            );
            ids
        }));
    }
    let all: Vec<Vec<PropertyId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for other in &all[1..] {
        assert_eq!(&all[0], other, "surface and property paths disagree");
    }
}
