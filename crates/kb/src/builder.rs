//! Fluent construction of knowledge bases.

use crate::entity::Entity;
use crate::ids::{EntityId, TypeId};
use crate::kb::{EntityType, KnowledgeBase};
use std::collections::BTreeMap;

/// Builder for a [`KnowledgeBase`].
///
/// ```
/// use surveyor_kb::KnowledgeBaseBuilder;
/// let mut b = KnowledgeBaseBuilder::new();
/// let animal = b.add_type("animal", &["animal"], &["zoo"]);
/// b.add_entity("Kitten", animal).alias("kitty").finish();
/// let kb = b.build();
/// assert_eq!(kb.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct KnowledgeBaseBuilder {
    types: Vec<EntityType>,
    entities: Vec<Entity>,
}

impl KnowledgeBaseBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entity type.
    ///
    /// `head_nouns` are generic nouns denoting the type (used by the
    /// coreference check and disambiguation); `context_cues` are further
    /// disambiguation words. All vocabulary is lowercased.
    ///
    /// # Panics
    /// Panics if a type with the same name already exists.
    pub fn add_type(&mut self, name: &str, head_nouns: &[&str], context_cues: &[&str]) -> TypeId {
        let name = name.to_lowercase();
        assert!(
            !self.types.iter().any(|t| t.name() == name),
            "duplicate type name: {name}"
        );
        let id = TypeId(u32::try_from(self.types.len()).expect("type count fits in u32")); // lint:allow(no-panic-in-lib): a KB cannot reach 2^32 types
        self.types.push(EntityType::new(
            id,
            name,
            head_nouns.iter().map(|s| s.to_lowercase()).collect(),
            context_cues.iter().map(|s| s.to_lowercase()).collect(),
        ));
        id
    }

    /// Starts an entity record; call [`EntityBuilder::finish`] to commit it.
    ///
    /// # Panics
    /// Panics if `notable_type` was not created by this builder.
    pub fn add_entity<'a>(&'a mut self, name: &str, notable_type: TypeId) -> EntityBuilder<'a> {
        assert!(
            notable_type.index() < self.types.len(),
            "unknown type id {notable_type}"
        );
        EntityBuilder {
            builder: self,
            name: name.to_owned(),
            notable_type,
            aliases: Vec::new(),
            attributes: BTreeMap::new(),
        }
    }

    /// Number of entities added so far.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Finishes construction.
    pub fn build(self) -> KnowledgeBase {
        KnowledgeBase::from_parts(self.types, self.entities)
    }
}

/// In-progress entity record; created by
/// [`KnowledgeBaseBuilder::add_entity`].
#[derive(Debug)]
pub struct EntityBuilder<'a> {
    builder: &'a mut KnowledgeBaseBuilder,
    name: String,
    notable_type: TypeId,
    aliases: Vec<String>,
    attributes: BTreeMap<String, f64>,
}

impl EntityBuilder<'_> {
    /// Adds an alternative surface form.
    pub fn alias(mut self, alias: &str) -> Self {
        self.aliases.push(alias.to_owned());
        self
    }

    /// Adds an objective numeric attribute (e.g. `"population"`).
    pub fn attribute(mut self, key: &str, value: f64) -> Self {
        self.attributes.insert(key.to_owned(), value);
        self
    }

    /// Commits the entity and returns its id.
    pub fn finish(self) -> EntityId {
        let id =
            EntityId(u32::try_from(self.builder.entities.len()).expect("entity count fits in u32")); // lint:allow(no-panic-in-lib): a KB cannot reach 2^32 entities
        self.builder.entities.push(Entity::new(
            id,
            self.name,
            self.aliases,
            self.notable_type,
            self.attributes,
        ));
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_insertion_order() {
        let mut b = KnowledgeBaseBuilder::new();
        let t = b.add_type("sport", &["sport"], &[]);
        let a = b.add_entity("Soccer", t).finish();
        let c = b.add_entity("Chess", t).finish();
        assert_eq!(a, EntityId(0));
        assert_eq!(c, EntityId(1));
        let kb = b.build();
        assert_eq!(kb.entity(a).name(), "Soccer");
        assert_eq!(kb.entities_of_type(t), [a, c]);
    }

    #[test]
    #[should_panic(expected = "duplicate type name")]
    fn duplicate_type_panics() {
        let mut b = KnowledgeBaseBuilder::new();
        b.add_type("city", &[], &[]);
        b.add_type("City", &[], &[]);
    }

    #[test]
    #[should_panic(expected = "unknown type id")]
    fn unknown_type_panics() {
        let mut b = KnowledgeBaseBuilder::new();
        let _ = b.add_entity("Ghost", TypeId(3));
    }

    #[test]
    fn attributes_and_aliases_round_trip() {
        let mut b = KnowledgeBaseBuilder::new();
        let t = b.add_type("lake", &["lake"], &[]);
        let id = b
            .add_entity("Lake Geneva", t)
            .alias("Lac Leman")
            .attribute("area_km2", 580.0)
            .finish();
        let kb = b.build();
        assert_eq!(kb.entity(id).aliases(), ["Lac Leman"]);
        assert_eq!(kb.entity(id).attribute("area_km2"), Some(580.0));
        assert_eq!(kb.entity_by_name("lac leman"), Some(id));
    }

    #[test]
    fn entity_count_tracks_commits() {
        let mut b = KnowledgeBaseBuilder::new();
        let t = b.add_type("x", &[], &[]);
        assert_eq!(b.entity_count(), 0);
        b.add_entity("A", t).finish();
        assert_eq!(b.entity_count(), 1);
    }
}
