//! Seed datasets for every experiment in the paper.
//!
//! The paper's knowledge base is a Freebase extension; we ship determinstic
//! seed builders for each domain the evaluation touches:
//!
//! - [`california_cities`]: 461 Californian cities with population counts
//!   (the §2 empirical study / Figure 3). A core of real cities anchors the
//!   population distribution; the long tail is synthesized, matching the
//!   paper's observation that most Californian cities are small.
//! - [`table2_kb`] / [`table2_matrix`]: the five evaluation domains of
//!   Table 2 (Animals, Celebrities, Cities, Professions, Sports), 20
//!   entities each, including the exact animal list of Figure 10.
//! - [`wealthy_countries`], [`swiss_lakes`], [`british_mountains`]: the
//!   Appendix A domains with their objective attributes.
//! - [`long_tail_kb`]: randomly named long-tail domains reproducing the
//!   Appendix D setting ("Hiatal hernia", "Maria Lusitano", "Ford Cougar" —
//!   obscure entities nobody writes about).

use crate::builder::KnowledgeBaseBuilder;
use crate::ids::TypeId;
use crate::kb::KnowledgeBase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attribute key: city population.
pub const ATTR_POPULATION: &str = "population";
/// Attribute key: GDP per capita in USD.
pub const ATTR_GDP_PER_CAPITA: &str = "gdp_per_capita";
/// Attribute key: lake area in square kilometers.
pub const ATTR_AREA_KM2: &str = "area_km2";
/// Attribute key: relative mountain height in meters.
pub const ATTR_RELATIVE_HEIGHT_M: &str = "relative_height_m";

/// Real Californian cities anchoring the Fig. 3 population distribution.
const CA_CITY_ANCHORS: &[(&str, f64)] = &[
    ("Los Angeles", 3_898_747.0),
    ("San Diego", 1_386_932.0),
    ("San Jose", 1_013_240.0),
    ("San Francisco", 873_965.0),
    ("Fresno", 542_107.0),
    ("Sacramento", 524_943.0),
    ("Long Beach", 466_742.0),
    ("Oakland", 440_646.0),
    ("Bakersfield", 403_455.0),
    ("Anaheim", 346_824.0),
    ("Stockton", 320_804.0),
    ("Riverside", 314_998.0),
    ("Santa Ana", 310_227.0),
    ("Irvine", 307_670.0),
    ("Chula Vista", 275_487.0),
    ("Fremont", 230_504.0),
    ("Santa Clarita", 228_673.0),
    ("San Bernardino", 222_101.0),
    ("Modesto", 218_464.0),
    ("Fontana", 208_393.0),
    ("Moreno Valley", 208_634.0),
    ("Glendale", 196_543.0),
    ("Huntington Beach", 198_711.0),
    ("Oxnard", 202_063.0),
    ("Rancho Cucamonga", 174_453.0),
    ("Santa Rosa", 178_127.0),
    ("Oceanside", 174_068.0),
    ("Elk Grove", 176_124.0),
    ("Garden Grove", 171_949.0),
    ("Corona", 157_136.0),
    ("Hayward", 162_954.0),
    ("Lancaster", 173_516.0),
    ("Palmdale", 169_450.0),
    ("Sunnyvale", 155_805.0),
    ("Pomona", 151_713.0),
    ("Escondido", 151_038.0),
    ("Torrance", 147_067.0),
    ("Roseville", 147_773.0),
    ("Pasadena", 138_699.0),
    ("Fullerton", 143_617.0),
    ("Visalia", 141_384.0),
    ("Santa Monica", 93_076.0),
    ("Berkeley", 124_321.0),
    ("Palo Alto", 68_572.0),
    ("Cupertino", 60_381.0),
    ("Mountain View", 82_376.0),
    ("Redwood City", 84_292.0),
    ("Santa Barbara", 88_665.0),
    ("Davis", 66_850.0),
    ("Monterey", 30_218.0),
    ("Sausalito", 7_269.0),
    ("Carmel", 3_220.0),
    ("Ferndale", 1_371.0),
    ("Amador City", 200.0),
    ("Vernon", 222.0),
];

const NAME_PREFIXES: &[&str] = &[
    "Oak", "Pine", "Cedar", "Maple", "Willow", "River", "Lake", "Hill", "Stone", "Clear", "Fair",
    "Glen", "Spring", "Sun", "Moon", "Gold", "Silver", "Iron", "Crystal", "Shadow", "Bright",
    "North", "South", "East", "West", "Mill", "Fox", "Eagle", "Deer", "Bear", "Elm", "Ash",
    "Birch", "Rose", "Sage", "Canyon", "Mesa", "Vista", "Sierra", "Palm",
];

const NAME_SUFFIXES: &[&str] = &[
    "ville", "dale", "field", "wood", "brook", "ton", "burg", "port", "haven", "crest", "ridge",
    "grove", "ford", "mont", "view", "side", "bury", "ham", "worth", "shire",
];

/// Deterministically generates a unique synthetic place/entity name.
fn synth_name(rng: &mut StdRng, used: &mut std::collections::HashSet<String>) -> String {
    loop {
        let prefix = NAME_PREFIXES[rng.gen_range(0..NAME_PREFIXES.len())];
        let suffix = NAME_SUFFIXES[rng.gen_range(0..NAME_SUFFIXES.len())];
        let name = if rng.gen_bool(0.15) {
            // Two-word form, e.g. "Oak Ridge Springs" style variance.
            let second = NAME_SUFFIXES[rng.gen_range(0..NAME_SUFFIXES.len())];
            format!(
                "{prefix}{suffix} {}{second}",
                NAME_PREFIXES[rng.gen_range(0..NAME_PREFIXES.len())]
            )
        } else {
            format!("{prefix}{suffix}")
        };
        if used.insert(name.clone()) {
            return name;
        }
    }
}

/// The 461-city Californian KB of the §2 empirical study.
///
/// Returns the knowledge base and the `city` type id. Deterministic for a
/// given `seed` (the anchors are fixed; only tail names/populations are
/// synthesized).
pub fn california_cities(seed: u64) -> (KnowledgeBase, TypeId) {
    let mut b = KnowledgeBaseBuilder::new();
    let city = b.add_type(
        "city",
        &["city", "town"],
        &["california", "downtown", "mayor"],
    );
    let mut used: std::collections::HashSet<String> = CA_CITY_ANCHORS
        .iter()
        .map(|(n, _)| (*n).to_owned())
        .collect();
    for (name, pop) in CA_CITY_ANCHORS {
        b.add_entity(name, city)
            .attribute(ATTR_POPULATION, *pop)
            .finish();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    while b.entity_count() < 461 {
        let name = synth_name(&mut rng, &mut used);
        // Log-uniform population between 250 and 150k: most CA cities are
        // small, matching Fig. 3's x-axis span.
        let log_pop = rng.gen_range(250.0_f64.ln()..150_000.0_f64.ln());
        b.add_entity(&name, city)
            .attribute(ATTR_POPULATION, log_pop.exp().round())
            .finish();
    }
    (b.build(), city)
}

/// The exact 20 animals of paper Figure 10.
pub const FIG10_ANIMALS: &[&str] = &[
    "Pony",
    "Spider",
    "Koala",
    "Rat",
    "Scorpion",
    "Crow",
    "Kitten",
    "Monkey",
    "Octopus",
    "Beaver",
    "Goose",
    "Tiger",
    "Moose",
    "Frog",
    "Grizzly bear",
    "Alligator",
    "Puppy",
    "Camel",
    "White shark",
    "Lion",
];

const CELEBRITIES: &[&str] = &[
    "Ava Sterling",
    "Marco Venturi",
    "Lena Okafor",
    "Dmitri Volkov",
    "Sofia Marchetti",
    "Jasper Quinn",
    "Priya Raman",
    "Hugo Lindqvist",
    "Mei Tanaka",
    "Rafael Duarte",
    "Clara Beaumont",
    "Niko Petrov",
    "Imani Diallo",
    "Felix Gruber",
    "Yara Haddad",
    "Oscar Nilsson",
    "Talia Rosen",
    "Mateo Vargas",
    "Ingrid Solberg",
    "Kenji Mori",
];

const WORLD_CITIES: &[(&str, f64)] = &[
    ("Tokyo", 13_960_000.0),
    ("Mexico City", 9_209_944.0),
    ("Mumbai", 12_442_373.0),
    ("Shanghai", 24_870_895.0),
    ("Cairo", 9_540_000.0),
    ("London", 8_982_000.0),
    ("Paris", 2_161_000.0),
    ("New York", 8_336_817.0),
    ("Reykjavik", 131_136.0),
    ("Zurich", 421_878.0),
    ("Vienna", 1_897_000.0),
    ("Lagos", 14_862_000.0),
    ("Singapore", 5_685_807.0),
    ("Amsterdam", 872_680.0),
    ("Marrakesh", 928_850.0),
    ("Wellington", 212_700.0),
    ("Quebec City", 531_902.0),
    ("Ljubljana", 295_504.0),
    ("Porto", 231_962.0),
    ("Bruges", 118_284.0),
];

const PROFESSIONS: &[&str] = &[
    "Firefighter",
    "Accountant",
    "Surgeon",
    "Teacher",
    "Astronaut",
    "Librarian",
    "Stuntman",
    "Nurse",
    "Electrician",
    "Fisherman",
    "Archivist",
    "Pilot",
    "Miner",
    "Chef",
    "Actuary",
    "Paramedic",
    "Welder",
    "Farmer",
    "Lifeguard",
    "Blacksmith",
];

const SPORTS: &[&str] = &[
    "Soccer",
    "Chess",
    "Boxing",
    "Skydiving",
    "Golf",
    "Rugby",
    "Curling",
    "Surfing",
    "Marathon",
    "Cricket",
    "Fencing",
    "Rock climbing",
    "Table tennis",
    "Hockey",
    "Snowboarding",
    "Darts",
    "Judo",
    "Rowing",
    "Badminton",
    "Motocross",
];

/// Table 2: the evaluated property-type matrix — five types, five subjective
/// properties each.
pub fn table2_matrix() -> Vec<(&'static str, [&'static str; 5])> {
    vec![
        ("animal", ["dangerous", "cute", "big", "friendly", "deadly"]),
        ("celebrity", ["cool", "crazy", "pretty", "quiet", "young"]),
        ("city", ["big", "calm", "cheap", "hectic", "multicultural"]),
        (
            "profession",
            ["dangerous", "exciting", "rare", "solid", "vital"],
        ),
        (
            "sport",
            ["addictive", "boring", "dangerous", "fast", "popular"],
        ),
    ]
}

/// The evaluation knowledge base behind Table 3 / Figures 10-12: the five
/// Table 2 types with 20 curated entities each (the Figure 10 animal list
/// verbatim).
pub fn table2_kb() -> KnowledgeBase {
    table2_kb_extended(0, 0)
}

/// The Table 2 knowledge base extended with `background_per_type`
/// synthetic long-tail entities per type.
///
/// The paper's knowledge base is vast: the ρ-threshold counts statements
/// over *all* entities of a type, while the evaluation judges only 20
/// well-known ones. Background entities recreate that separation — they
/// soak up statements so combinations clear ρ even when individual
/// evaluation entities have few or none. The curated 20 are always the
/// first entities of each type.
pub fn table2_kb_extended(background_per_type: usize, seed: u64) -> KnowledgeBase {
    let mut b = KnowledgeBaseBuilder::new();
    let animal = b.add_type(
        "animal",
        &["animal", "creature"],
        &["zoo", "wildlife", "pet"],
    );
    let celebrity = b.add_type(
        "celebrity",
        &["celebrity", "star"],
        &["movie", "famous", "stage"],
    );
    let city = b.add_type(
        "city",
        &["city", "town"],
        &["downtown", "mayor", "district"],
    );
    let profession = b.add_type("profession", &["profession", "job"], &["career", "work"]);
    let sport = b.add_type("sport", &["sport", "game"], &["match", "league", "players"]);
    for name in FIG10_ANIMALS {
        b.add_entity(name, animal).finish();
    }
    for name in CELEBRITIES {
        b.add_entity(name, celebrity).finish();
    }
    for (name, pop) in WORLD_CITIES {
        b.add_entity(name, city)
            .attribute(ATTR_POPULATION, *pop)
            .finish();
    }
    for name in PROFESSIONS {
        b.add_entity(name, profession).finish();
    }
    for name in SPORTS {
        b.add_entity(name, sport).finish();
    }
    if background_per_type > 0 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7ab2_e11e);
        let mut used: std::collections::HashSet<String> =
            b_entity_names(&[FIG10_ANIMALS, CELEBRITIES, PROFESSIONS, SPORTS])
                .chain(WORLD_CITIES.iter().map(|(n, _)| (*n).to_owned()))
                .collect();
        for t in [animal, celebrity, city, profession, sport] {
            for _ in 0..background_per_type {
                let name = synth_name(&mut rng, &mut used);
                b.add_entity(&name, t).finish();
            }
        }
    }
    b.build()
}

fn b_entity_names<'a>(lists: &'a [&'a [&'a str]]) -> impl Iterator<Item = String> + 'a {
    lists.iter().flat_map(|l| l.iter().map(|n| (*n).to_owned()))
}

const COUNTRIES: &[(&str, f64)] = &[
    ("Luxembourg", 113_196.0),
    ("Norway", 102_465.0),
    ("Qatar", 93_352.0),
    ("Switzerland", 84_669.0),
    ("Australia", 64_863.0),
    ("Denmark", 59_795.0),
    ("Singapore City", 56_284.0),
    ("United States", 53_042.0),
    ("Sweden", 60_430.0),
    ("Netherlands", 50_793.0),
    ("Austria", 50_547.0),
    ("Canada", 52_305.0),
    ("Germany", 46_268.0),
    ("France", 42_560.0),
    ("Japan", 38_634.0),
    ("Italy", 35_370.0),
    ("Spain", 29_863.0),
    ("South Korea", 25_890.0),
    ("Portugal", 21_618.0),
    ("Greece", 21_843.0),
    ("Poland", 13_648.0),
    ("Hungary", 13_404.0),
    ("Turkey", 10_721.0),
    ("Mexico", 10_307.0),
    ("Brazil", 11_208.0),
    ("China", 6_807.0),
    ("Thailand", 5_779.0),
    ("Indonesia", 3_475.0),
    ("India", 1_498.0),
    ("Vietnam", 1_911.0),
    ("Nigeria", 2_979.0),
    ("Kenya", 1_245.0),
    ("Bangladesh", 958.0),
    ("Ethiopia", 505.0),
    ("Madagascar", 463.0),
    ("Nepal", 694.0),
    ("Mali", 715.0),
    ("Chad", 1_046.0),
    ("Niger", 415.0),
    ("Malawi", 226.0),
];

/// Appendix A: countries with IMF-2013-style GDP per capita.
pub fn wealthy_countries() -> (KnowledgeBase, TypeId) {
    let mut b = KnowledgeBaseBuilder::new();
    let country = b.add_type("country", &["country", "nation"], &["economy", "capital"]);
    for (name, gdp) in COUNTRIES {
        b.add_entity(name, country)
            .attribute(ATTR_GDP_PER_CAPITA, *gdp)
            .finish();
    }
    (b.build(), country)
}

const SWISS_LAKES: &[(&str, f64)] = &[
    ("Lake Geneva", 580.0),
    ("Lake Constance", 536.0),
    ("Lake Neuchatel", 218.0),
    ("Lake Maggiore", 212.0),
    ("Lake Lucerne", 114.0),
    ("Lake Zurich", 88.0),
    ("Lake Lugano", 49.0),
    ("Lake Thun", 48.0),
    ("Lake Biel", 39.0),
    ("Lake Zug", 38.0),
    ("Lake Brienz", 30.0),
    ("Lake Walen", 24.0),
    ("Lake Murten", 23.0),
    ("Lake Sempach", 14.0),
    ("Lake Hallwil", 10.0),
    ("Lake Greifen", 8.5),
    ("Lake Sarnen", 7.4),
    ("Lake Aegeri", 7.2),
    ("Lake Baldegg", 5.2),
    ("Lake Pfaeffikon", 3.3),
    ("Lake Lauerz", 3.1),
    ("Lake Sihl", 10.8),
    ("Lake Klontal", 3.3),
    ("Lake Oeschinen", 1.1),
    ("Lake Lungern", 2.0),
    ("Lake Cauma", 0.1),
    ("Lake Blausee", 0.007),
    ("Lake Seealp", 0.13),
    ("Lake Moesa", 0.2),
    ("Lake Melch", 0.54),
];

/// Appendix A: Swiss lakes with areas in square kilometers. The named
/// lakes are padded with small synthetic alpine lakes (most Swiss lakes
/// are tiny), giving the model a realistic long tail to learn from.
pub fn swiss_lakes() -> (KnowledgeBase, TypeId) {
    let mut b = KnowledgeBaseBuilder::new();
    let lake = b.add_type("lake", &["lake"], &["shore", "water"]);
    for (name, area) in SWISS_LAKES {
        b.add_entity(name, lake)
            .attribute(ATTR_AREA_KM2, *area)
            .finish();
    }
    let mut rng = StdRng::seed_from_u64(0x1a4e);
    let mut used: std::collections::HashSet<String> =
        SWISS_LAKES.iter().map(|(n, _)| (*n).to_owned()).collect();
    while b.entity_count() < 80 {
        let base = synth_name(&mut rng, &mut used);
        let name = format!("Lake {base}");
        if !used.insert(name.clone()) {
            continue;
        }
        let area = (rng.gen_range(0.01_f64.ln()..8.0_f64.ln())).exp();
        b.add_entity(&name, lake)
            .attribute(ATTR_AREA_KM2, (area * 100.0).round() / 100.0)
            .finish();
    }
    (b.build(), lake)
}

const BRITISH_MOUNTAINS: &[(&str, f64)] = &[
    ("Ben Nevis", 1_345.0),
    ("Ben Macdui", 950.0),
    ("Snowdon", 1_038.0),
    ("Scafell Pike", 912.0),
    ("Carrauntoohil", 1_039.0),
    ("Slieve Donard", 822.0),
    ("Ben Lomond", 833.0),
    ("Helvellyn", 712.0),
    ("Tryfan", 917.0),
    ("Cadair Idris", 893.0),
    ("Pen y Fan", 886.0),
    ("Goat Fell", 874.0),
    ("The Cheviot", 815.0),
    ("Skiddaw", 931.0),
    ("Cross Fell", 893.0),
    ("Plynlimon", 752.0),
    ("Merrick", 843.0),
    ("Kinder Scout", 636.0),
    ("Black Mountain", 802.0),
    ("Mam Tor", 517.0),
    ("Worcestershire Beacon", 425.0),
    ("Leith Hill", 294.0),
    ("Cleeve Hill", 330.0),
    ("Dunkery Beacon", 519.0),
    ("Yes Tor", 619.0),
    ("Holyhead Mountain", 220.0),
    ("Arnside Knott", 159.0),
    ("Box Hill", 224.0),
    ("Bredon Hill", 299.0),
    ("Win Green", 277.0),
];

/// Appendix A: mountains on the British Isles with relative heights,
/// padded with synthetic minor hills (the British Isles have far more
/// low hills than mountains).
pub fn british_mountains() -> (KnowledgeBase, TypeId) {
    let mut b = KnowledgeBaseBuilder::new();
    let mountain = b.add_type("mountain", &["mountain", "peak"], &["summit", "climb"]);
    for (name, height) in BRITISH_MOUNTAINS {
        b.add_entity(name, mountain)
            .attribute(ATTR_RELATIVE_HEIGHT_M, *height)
            .finish();
    }
    let mut rng = StdRng::seed_from_u64(0xbeac);
    let mut used: std::collections::HashSet<String> = BRITISH_MOUNTAINS
        .iter()
        .map(|(n, _)| (*n).to_owned())
        .collect();
    while b.entity_count() < 80 {
        let base = synth_name(&mut rng, &mut used);
        let name = if rng.gen_bool(0.5) {
            format!("{base} Hill")
        } else {
            format!("{base} Fell")
        };
        if !used.insert(name.clone()) {
            continue;
        }
        let height = rng.gen_range(90.0..650.0_f64).round();
        b.add_entity(&name, mountain)
            .attribute(ATTR_RELATIVE_HEIGHT_M, height)
            .finish();
    }
    (b.build(), mountain)
}

/// Long-tail domain nouns for the Appendix D random-sample study.
const LONG_TAIL_DOMAINS: &[(&str, &str)] = &[
    ("disease", "condition"),
    ("artist", "painter"),
    ("car model", "vehicle"),
    ("novel", "book"),
    ("village", "settlement"),
    ("beetle", "insect"),
    ("asteroid", "rock"),
    ("enzyme", "protein"),
    ("orchid", "flower"),
    ("shipwreck", "wreck"),
    ("dialect", "language"),
    ("comet", "object"),
    ("fungus", "organism"),
    ("manuscript", "document"),
    ("glacier", "icefield"),
    ("synthesizer", "instrument"),
    ("moth", "insect"),
    ("fresco", "painting"),
    ("typeface", "font"),
    ("locomotive", "engine"),
];

/// Adjective pool for synthesized long-tail properties.
pub const ADJECTIVE_POOL: &[&str] = &[
    "rare",
    "major",
    "obscure",
    "famous",
    "fragile",
    "robust",
    "ancient",
    "modern",
    "beautiful",
    "dull",
    "complex",
    "simple",
    "valuable",
    "cheap",
    "dangerous",
    "harmless",
    "big",
    "small",
    "fast",
    "slow",
    "loud",
    "quiet",
    "popular",
    "weird",
    "elegant",
    "remote",
    "common",
    "brittle",
    "vivid",
    "gloomy",
];

/// Builds a long-tail knowledge base of `num_types` obscure domains with
/// `entities_per_type` synthetic entities each (Appendix D; also the bulk of
/// the Figure 9 snapshot statistics).
pub fn long_tail_kb(num_types: usize, entities_per_type: usize, seed: u64) -> KnowledgeBase {
    let mut b = KnowledgeBaseBuilder::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut used = std::collections::HashSet::new();
    for i in 0..num_types {
        let (base, head2) = LONG_TAIL_DOMAINS[i % LONG_TAIL_DOMAINS.len()];
        let name = if i < LONG_TAIL_DOMAINS.len() {
            base.to_owned()
        } else {
            format!("{base} group {}", i / LONG_TAIL_DOMAINS.len())
        };
        // Head noun is the final word of the type name ("car model" -> "model").
        let head = base.rsplit(' ').next().unwrap_or(base);
        let t = b.add_type(&name, &[head, head2], &[]);
        for _ in 0..entities_per_type {
            let entity_name = synth_name(&mut rng, &mut used);
            b.add_entity(&entity_name, t).finish();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn california_has_461_cities() {
        let (kb, city) = california_cities(7);
        assert_eq!(kb.len(), 461);
        assert_eq!(kb.entities_of_type(city).len(), 461);
        // Every city has a population.
        assert!(kb
            .entities()
            .iter()
            .all(|e| e.attribute(ATTR_POPULATION).is_some()));
    }

    #[test]
    fn california_is_deterministic_per_seed() {
        let (a, _) = california_cities(42);
        let (b, _) = california_cities(42);
        let names_a: Vec<&str> = a.entities().iter().map(|e| e.name()).collect();
        let names_b: Vec<&str> = b.entities().iter().map(|e| e.name()).collect();
        assert_eq!(names_a, names_b);
        let (c, _) = california_cities(43);
        let names_c: Vec<&str> = c.entities().iter().map(|e| e.name()).collect();
        assert_ne!(names_a, names_c);
    }

    #[test]
    fn california_population_spans_orders_of_magnitude() {
        let (kb, _) = california_cities(7);
        let pops: Vec<f64> = kb
            .entities()
            .iter()
            .map(|e| e.attribute(ATTR_POPULATION).unwrap())
            .collect();
        let max = pops.iter().cloned().fold(0.0, f64::max);
        let min = pops.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 3_000_000.0);
        assert!(min < 1_000.0);
    }

    #[test]
    fn table2_kb_has_five_types_of_twenty() {
        let kb = table2_kb();
        assert_eq!(kb.types().len(), 5);
        assert_eq!(kb.len(), 100);
        for t in kb.types() {
            assert_eq!(kb.entities_of_type(t.id()).len(), 20, "type {}", t.name());
        }
    }

    #[test]
    fn table2_matrix_matches_paper() {
        let matrix = table2_matrix();
        assert_eq!(matrix.len(), 5);
        let kb = table2_kb();
        for (type_name, props) in &matrix {
            assert!(kb.type_by_name(type_name).is_some(), "missing {type_name}");
            assert_eq!(props.len(), 5);
        }
        // Spot-check the paper's rows.
        assert_eq!(
            matrix[0].1,
            ["dangerous", "cute", "big", "friendly", "deadly"]
        );
        assert_eq!(
            matrix[4].1,
            ["addictive", "boring", "dangerous", "fast", "popular"]
        );
    }

    #[test]
    fn fig10_animals_are_present() {
        let kb = table2_kb();
        for name in FIG10_ANIMALS {
            assert!(kb.entity_by_name(name).is_some(), "missing animal {name}");
        }
        assert_eq!(FIG10_ANIMALS.len(), 20);
    }

    #[test]
    fn appendix_a_domains_have_attributes() {
        let (countries, _) = wealthy_countries();
        assert!(countries.len() >= 30);
        assert!(countries
            .entities()
            .iter()
            .all(|e| e.attribute(ATTR_GDP_PER_CAPITA).is_some()));
        let (lakes, _) = swiss_lakes();
        assert!(lakes.len() >= 25);
        assert!(lakes
            .entities()
            .iter()
            .all(|e| e.attribute(ATTR_AREA_KM2).is_some()));
        let (mountains, _) = british_mountains();
        assert!(mountains.len() >= 25);
        assert!(mountains
            .entities()
            .iter()
            .all(|e| e.attribute(ATTR_RELATIVE_HEIGHT_M).is_some()));
    }

    #[test]
    fn long_tail_kb_shape() {
        let kb = long_tail_kb(30, 50, 5);
        assert_eq!(kb.types().len(), 30);
        assert_eq!(kb.len(), 1_500);
        // Names are unique across the whole KB.
        let mut names: Vec<&str> = kb.entities().iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 1_500);
    }

    #[test]
    fn long_tail_types_wrap_domain_list() {
        let kb = long_tail_kb(25, 2, 5);
        assert!(kb.type_by_name("disease").is_some());
        assert!(kb.type_by_name("disease group 1").is_some());
    }
}
