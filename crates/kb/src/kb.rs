//! The [`KnowledgeBase`] store.

use crate::entity::Entity;
use crate::ids::{EntityId, TypeId};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// An entity type (paper: "most notable type" of a Freebase entity).
///
/// Beyond the name, a type carries two extraction-relevant vocabularies:
///
/// - `head_nouns`: generic nouns that denote the type in text (`"animal"`,
///   `"city"`). The extractor uses them for the predicate-nominal
///   coreference check ("Snakes are dangerous *animals*") and the entity
///   tagger uses them as disambiguation context.
/// - `context_cues`: further words whose presence in a sentence makes a
///   reading of an ambiguous alias as this type more plausible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityType {
    id: TypeId,
    name: String,
    head_nouns: Vec<String>,
    context_cues: Vec<String>,
}

impl EntityType {
    pub(crate) fn new(
        id: TypeId,
        name: String,
        head_nouns: Vec<String>,
        context_cues: Vec<String>,
    ) -> Self {
        Self {
            id,
            name,
            head_nouns,
            context_cues,
        }
    }

    /// The type id.
    pub fn id(&self) -> TypeId {
        self.id
    }

    /// Type name (lowercase), e.g. `"animal"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Generic nouns denoting the type.
    pub fn head_nouns(&self) -> &[String] {
        &self.head_nouns
    }

    /// Disambiguation cue words.
    pub fn context_cues(&self) -> &[String] {
        &self.context_cues
    }

    /// Whether `word` (lowercase) is a head noun of this type, allowing a
    /// trailing plural `s` ("animals" matches head noun "animal").
    pub fn matches_head_noun(&self, word: &str) -> bool {
        self.head_nouns.iter().any(|h| {
            h == word
                || (word.len() == h.len() + 1
                    && word.ends_with('s')
                    && word.starts_with(h.as_str()))
        })
    }
}

/// Normalizes a surface form for alias lookups: lowercase, collapsed
/// whitespace.
pub fn normalize_surface(s: &str) -> String {
    s.split_whitespace()
        .map(|w| w.to_lowercase())
        .collect::<Vec<_>>()
        .join(" ")
}

/// The knowledge base: typed entities with alias and type indexes.
///
/// Construction goes through [`crate::KnowledgeBaseBuilder`]; the built
/// store is immutable, cheap to share (`Arc<KnowledgeBase>` in the parallel
/// extraction runner), and all lookups are O(1) hash probes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnowledgeBase {
    types: Vec<EntityType>,
    entities: Vec<Entity>,
    by_type: Vec<Vec<EntityId>>,
    /// normalized surface form -> candidate entities (ambiguity possible).
    #[serde(skip)]
    alias_index: FxHashMap<String, Vec<EntityId>>,
    /// normalized type name -> type id.
    #[serde(skip)]
    type_index: FxHashMap<String, TypeId>,
    max_alias_tokens: usize,
}

impl KnowledgeBase {
    pub(crate) fn from_parts(types: Vec<EntityType>, entities: Vec<Entity>) -> Self {
        let mut by_type = vec![Vec::new(); types.len()];
        let mut alias_index: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
        let mut type_index = FxHashMap::default();
        let mut max_alias_tokens = 0;
        for t in &types {
            type_index.insert(t.name.clone(), t.id);
        }
        for e in &entities {
            by_type[e.notable_type().index()].push(e.id());
            for form in e.surface_forms() {
                let norm = normalize_surface(form);
                max_alias_tokens = max_alias_tokens.max(norm.split(' ').count());
                let slot = alias_index.entry(norm).or_default();
                if !slot.contains(&e.id()) {
                    slot.push(e.id());
                }
            }
        }
        Self {
            types,
            entities,
            by_type,
            alias_index,
            type_index,
            max_alias_tokens,
        }
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the knowledge base holds no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// All entity types.
    pub fn types(&self) -> &[EntityType] {
        &self.types
    }

    /// A type by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this knowledge base.
    pub fn entity_type(&self, id: TypeId) -> &EntityType {
        &self.types[id.index()]
    }

    /// Looks up a type by (lowercase) name.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        self.type_index.get(&name.to_lowercase()).copied()
    }

    /// An entity by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this knowledge base.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// All entities.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// Entity ids of a type, in insertion order.
    pub fn entities_of_type(&self, t: TypeId) -> &[EntityId] {
        &self.by_type[t.index()]
    }

    /// Looks up an entity by exact canonical name or alias (normalized).
    /// Returns `None` when the form is unknown **or ambiguous**.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        match self.candidates(&normalize_surface(name)) {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// Candidate entities for a normalized surface form (may be empty or,
    /// for ambiguous aliases, hold several entities).
    pub fn candidates(&self, normalized: &str) -> &[EntityId] {
        self.alias_index
            .get(normalized)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Longest alias length in tokens; the entity tagger's match window.
    pub fn max_alias_tokens(&self) -> usize {
        self.max_alias_tokens
    }

    /// Whether a normalized surface form maps to more than one entity.
    pub fn is_ambiguous(&self, normalized: &str) -> bool {
        self.candidates(normalized).len() > 1
    }

    /// Rebuilds the skipped indexes after deserialization.
    ///
    /// `serde` skips the hash indexes (they are derived data); call this on
    /// a deserialized value before use.
    pub fn reindex(self) -> Self {
        Self::from_parts(self.types, self.entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KnowledgeBaseBuilder;

    fn kb() -> KnowledgeBase {
        let mut b = KnowledgeBaseBuilder::new();
        let city = b.add_type("city", &["city", "town"], &["downtown", "mayor"]);
        let animal = b.add_type("animal", &["animal"], &["zoo", "wildlife"]);
        b.add_entity("San Francisco", city)
            .alias("SF")
            .attribute("population", 870_000.0)
            .finish();
        b.add_entity("Phoenix", city).finish();
        // Deliberately ambiguous alias: a mythical-bird "entity".
        b.add_entity("Phoenix Bird", animal)
            .alias("Phoenix")
            .finish();
        b.add_entity("Kitten", animal).finish();
        b.build()
    }

    #[test]
    fn basic_lookup() {
        let kb = kb();
        assert_eq!(kb.len(), 4);
        let sf = kb.entity_by_name("san francisco").unwrap();
        assert_eq!(kb.entity(sf).name(), "San Francisco");
        assert_eq!(kb.entity(sf).attribute("population"), Some(870_000.0));
    }

    #[test]
    fn alias_lookup_and_ambiguity() {
        let kb = kb();
        // "SF" resolves uniquely.
        assert!(kb.entity_by_name("sf").is_some());
        // "Phoenix" is both a city (canonical) and an animal alias.
        assert!(kb.is_ambiguous("phoenix"));
        assert_eq!(kb.candidates("phoenix").len(), 2);
        assert_eq!(kb.entity_by_name("phoenix"), None);
    }

    #[test]
    fn entities_of_type_partition() {
        let kb = kb();
        let city = kb.type_by_name("city").unwrap();
        let animal = kb.type_by_name("animal").unwrap();
        assert_eq!(kb.entities_of_type(city).len(), 2);
        assert_eq!(kb.entities_of_type(animal).len(), 2);
        let total: usize = kb
            .types()
            .iter()
            .map(|t| kb.entities_of_type(t.id()).len())
            .sum();
        assert_eq!(total, kb.len());
    }

    #[test]
    fn head_noun_matching_allows_plural() {
        let kb = kb();
        let animal = kb.type_by_name("animal").unwrap();
        assert!(kb.entity_type(animal).matches_head_noun("animal"));
        assert!(kb.entity_type(animal).matches_head_noun("animals"));
        assert!(!kb.entity_type(animal).matches_head_noun("animate"));
    }

    #[test]
    fn max_alias_tokens_reflects_longest_form() {
        let kb = kb();
        assert_eq!(kb.max_alias_tokens(), 2); // "San Francisco", "Phoenix Bird"
    }

    #[test]
    fn normalize_surface_collapses_case_and_space() {
        assert_eq!(normalize_surface("  San   FRANCISCO "), "san francisco");
    }

    #[test]
    fn unknown_forms_resolve_to_empty() {
        let kb = kb();
        assert!(kb.candidates("atlantis").is_empty());
        assert_eq!(kb.entity_by_name("Atlantis"), None);
    }
}
