//! Knowledge base substrate for the Surveyor reproduction.
//!
//! The paper runs against "an extension of Freebase": a store of entities,
//! each with a *most notable type*, surface-form aliases used by the entity
//! tagger, and objective attributes (population, GDP per capita, lake area,
//! relative mountain height) that the empirical studies correlate against.
//!
//! This crate provides:
//! - [`ids`]: compact, type-safe identifiers for entities and types.
//! - [`property`]: subjective properties (adjective + optional adverbs).
//! - [`intern`]: the process-global `Property` ↔ `PropertyId` interner
//!   that lets hot structures key on `(EntityId, PropertyId)` `u32` pairs —
//!   a sharded global table plus the worker-local [`InternCache`] that
//!   makes the steady-state extraction path lock-free.
//! - [`entity`]: the entity record.
//! - [`kb`]: the [`KnowledgeBase`] store with alias and type indexes.
//! - [`builder`]: a fluent builder for assembling knowledge bases.
//! - [`seed`]: the concrete datasets used by every experiment — Californian
//!   cities (Fig. 3), the five evaluation domains of Table 2, the Appendix A
//!   domains (countries / Swiss lakes / British mountains), and random
//!   long-tail domains for the Appendix D study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod entity;
pub mod ids;
pub mod intern;
pub mod kb;
pub mod property;
pub mod seed;

pub use builder::KnowledgeBaseBuilder;
pub use entity::Entity;
pub use ids::{EntityId, TypeId};
pub use intern::{CacheStats, InternCache, PropertyId};
pub use kb::{EntityType, KnowledgeBase};
pub use property::Property;
