//! Subjective properties.
//!
//! Paper §2: "A subjective property in our scenario is an adjective,
//! optionally associated with preceding adverbs" — e.g. `cute`, `densely
//! populated`, `very small`. Properties are compared case-insensitively on
//! their normalized form.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A subjective property: an adjective with zero or more preceding adverbs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Property {
    adverbs: Vec<String>,
    adjective: String,
}

impl Property {
    /// A bare-adjective property (`cute`, `big`, …).
    pub fn adjective(adjective: &str) -> Self {
        Self {
            adverbs: Vec::new(),
            adjective: adjective.to_lowercase(),
        }
    }

    /// An adverb-qualified property (`very big`, `densely populated`, …).
    ///
    /// Adverbs are stored in surface order (leftmost first).
    pub fn with_adverbs(adverbs: &[&str], adjective: &str) -> Self {
        Self {
            adverbs: adverbs.iter().map(|a| a.to_lowercase()).collect(),
            adjective: adjective.to_lowercase(),
        }
    }

    /// Parses a space-separated surface form; the final token is the
    /// adjective, everything before it an adverb.
    ///
    /// Returns `None` for an empty string.
    pub fn parse(surface: &str) -> Option<Self> {
        let tokens: Vec<&str> = surface.split_whitespace().collect();
        let (&adjective, adverbs) = tokens.split_last()?;
        Some(Self {
            adverbs: adverbs.iter().map(|a| a.to_lowercase()).collect(),
            adjective: adjective.to_lowercase(),
        })
    }

    /// The head adjective.
    pub fn head(&self) -> &str {
        &self.adjective
    }

    /// The adverbs, leftmost first.
    pub fn adverbs(&self) -> &[String] {
        &self.adverbs
    }

    /// Whether the property is a bare adjective.
    pub fn is_bare(&self) -> bool {
        self.adverbs.is_empty()
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for adverb in &self.adverbs {
            write!(f, "{adverb} ")?;
        }
        write!(f, "{}", self.adjective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_adjective() {
        let p = Property::adjective("Cute");
        assert_eq!(p.head(), "cute");
        assert!(p.is_bare());
        assert_eq!(p.to_string(), "cute");
    }

    #[test]
    fn adverb_qualified() {
        let p = Property::with_adverbs(&["very"], "big");
        assert_eq!(p.to_string(), "very big");
        assert!(!p.is_bare());
        assert_eq!(p.adverbs(), ["very"]);
    }

    #[test]
    fn multiple_adverbs_preserve_order() {
        let p = Property::with_adverbs(&["really", "very"], "small");
        assert_eq!(p.to_string(), "really very small");
    }

    #[test]
    fn parse_round_trips_display() {
        for s in ["cute", "very big", "densely populated", "really very small"] {
            let p = Property::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_empty_is_none() {
        assert_eq!(Property::parse(""), None);
        assert_eq!(Property::parse("   "), None);
    }

    #[test]
    fn comparison_is_case_insensitive_via_normalization() {
        assert_eq!(Property::adjective("BIG"), Property::adjective("big"));
        assert_eq!(
            Property::with_adverbs(&["Very"], "Big"),
            Property::parse("very big").unwrap()
        );
    }

    #[test]
    fn distinct_properties_differ() {
        assert_ne!(Property::adjective("big"), Property::adjective("small"));
        assert_ne!(
            Property::adjective("big"),
            Property::with_adverbs(&["very"], "big")
        );
    }
}
