//! Entity records.

use crate::ids::{EntityId, TypeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An entity stored in the knowledge base.
///
/// Mirrors the slice of Freebase the paper relies on: a canonical name,
/// alternative surface forms (aliases) used by the entity tagger, the *most
/// notable type* ("the knowledge base may actually associate multiple types
/// with an entity but we use only the most notable type", §3), and objective
/// numeric attributes such as population used by the empirical studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    id: EntityId,
    name: String,
    aliases: Vec<String>,
    notable_type: TypeId,
    /// Objective attributes keyed by attribute name (e.g. `"population"`).
    /// A `BTreeMap` keeps serialization and iteration deterministic.
    attributes: BTreeMap<String, f64>,
}

impl Entity {
    pub(crate) fn new(
        id: EntityId,
        name: String,
        aliases: Vec<String>,
        notable_type: TypeId,
        attributes: BTreeMap<String, f64>,
    ) -> Self {
        Self {
            id,
            name,
            aliases,
            notable_type,
            attributes,
        }
    }

    /// The entity id.
    pub fn id(&self) -> EntityId {
        self.id
    }

    /// Canonical (display) name, e.g. `"San Francisco"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Alternative surface forms, not including the canonical name.
    pub fn aliases(&self) -> &[String] {
        &self.aliases
    }

    /// All surface forms: canonical name first, then aliases.
    pub fn surface_forms(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.name.as_str()).chain(self.aliases.iter().map(String::as_str))
    }

    /// The most notable type.
    pub fn notable_type(&self) -> TypeId {
        self.notable_type
    }

    /// An objective attribute by name (e.g. `"population"`).
    pub fn attribute(&self, key: &str) -> Option<f64> {
        self.attributes.get(key).copied()
    }

    /// All objective attributes.
    pub fn attributes(&self) -> &BTreeMap<String, f64> {
        &self.attributes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Entity {
        let mut attrs = BTreeMap::new();
        attrs.insert("population".to_owned(), 870_000.0);
        Entity::new(
            EntityId(1),
            "San Francisco".to_owned(),
            vec!["SF".to_owned(), "Frisco".to_owned()],
            TypeId(0),
            attrs,
        )
    }

    #[test]
    fn accessors() {
        let e = sample();
        assert_eq!(e.id(), EntityId(1));
        assert_eq!(e.name(), "San Francisco");
        assert_eq!(e.aliases(), ["SF", "Frisco"]);
        assert_eq!(e.notable_type(), TypeId(0));
        assert_eq!(e.attribute("population"), Some(870_000.0));
        assert_eq!(e.attribute("area"), None);
    }

    #[test]
    fn surface_forms_lead_with_canonical_name() {
        let e = sample();
        let forms: Vec<&str> = e.surface_forms().collect();
        assert_eq!(forms, ["San Francisco", "SF", "Frisco"]);
    }
}
